#!/bin/sh
# Tier-1 gate plus optional sanitizer passes.
#
#   tools/ci_check.sh                   # configure, build, ctest (build/)
#   tools/ci_check.sh --sanitize        # also build + run tests under
#                                       # ASan/UBSan (build-san/, slower)
#   tools/ci_check.sh --sanitize thread # also build under TSan (build-tsan/)
#                                       # and run the parallel-engine tests
#   tools/ci_check.sh --sanitize all    # both sanitizer passes
#   tools/ci_check.sh --serve-smoke     # also: train a model, start the
#                                       # adiv_serve daemon on an ephemeral
#                                       # port, drive it with adiv_loadgen
#                                       # (verified), SIGTERM-drain it
#   tools/ci_check.sh --lint            # also: adiv_lint self-scan (must be
#                                       # clean) and, when clang-tidy is on
#                                       # PATH, clang-tidy over src/
#
# All ci_check builds configure with -DADIV_WERROR=ON: warnings that are
# tolerable interactively are failures at the gate.
#
# Exits non-zero on the first failure. Run from the repository root.
set -eu

jobs=$(nproc 2>/dev/null || echo 2)
asan=0
tsan=0
serve_smoke=0
lint=0
expect_mode=0
for arg in "$@"; do
    if [ "$expect_mode" -eq 1 ]; then
        expect_mode=0
        case "$arg" in
            address|address,undefined) asan=1; continue ;;
            thread) tsan=1; continue ;;
            all) asan=1; tsan=1; continue ;;
            *) echo "unknown sanitizer '$arg'" >&2
               echo "usage: tools/ci_check.sh [--sanitize [address|thread|all]]" >&2
               exit 2 ;;
        esac
    fi
    case "$arg" in
        --sanitize) expect_mode=1 ;;
        --sanitize=thread) tsan=1 ;;
        --sanitize=address|--sanitize=address,undefined) asan=1 ;;
        --sanitize=all) asan=1; tsan=1 ;;
        --serve-smoke) serve_smoke=1 ;;
        --lint) lint=1 ;;
        *) echo "usage: tools/ci_check.sh [--sanitize [address|thread|all]] [--serve-smoke] [--lint]" >&2
           exit 2 ;;
    esac
done
# Bare `--sanitize` keeps its historical meaning: address,undefined.
if [ "$expect_mode" -eq 1 ]; then asan=1; fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . -DADIV_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [ "$lint" -eq 1 ]; then
    echo "== lint: adiv_lint self-scan =="
    ./build/tools/adiv_lint .
    if command -v clang-tidy >/dev/null 2>&1; then
        echo "== lint: clang-tidy over src/ =="
        find src -name '*.cpp' -print | xargs clang-tidy -p build --quiet
    else
        echo "== lint: clang-tidy not on PATH, step skipped =="
    fi
fi

if [ "$asan" -eq 1 ]; then
    echo "== sanitizer pass: address,undefined =="
    cmake -B build-san -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=address,undefined -DADIV_WERROR=ON \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-san -j "$jobs"
    (cd build-san && ctest --output-on-failure -j "$jobs")
fi

if [ "$tsan" -eq 1 ]; then
    echo "== sanitizer pass: thread (parallel engine tests) =="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=thread -DADIV_WERROR=ON \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j "$jobs"
    # The concurrency surface: the pool itself, the scheduler's determinism
    # suite (jobs > 1 plan runs for all detectors), the engine sinks, and the
    # detection server (transports, strands, concurrent sessions).
    (cd build-tsan && ctest --output-on-failure -j "$jobs" \
        -R 'ThreadPool|TaskGroup|EngineDeterminism|RunPlanWithSink|Maps\.|AllDetectorMaps|EnsembleClaims|Framing|Requests|Responses|Loopback|FrameHelpers|Tcp\.|ServerLoopback')
fi

if [ "$serve_smoke" -eq 1 ]; then
    echo "== serve smoke: daemon + loadgen over TCP =="
    smoke_dir=$(mktemp -d)
    serve_pid=""
    trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    ./build/tools/adiv_train --demo-trace "$smoke_dir/demo.trace"
    ./build/tools/adiv_train --detector stide --window 6 \
        --input "$smoke_dir/demo.trace" --out "$smoke_dir/model.adiv"
    ./build/tools/adiv_serve --model "$smoke_dir/model.adiv" --port 0 --jobs 2 \
        > "$smoke_dir/serve.log" 2>&1 &
    serve_pid=$!
    port=""
    for _ in $(seq 1 50); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$smoke_dir/serve.log")
        [ -n "$port" ] && break
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke_dir/serve.log" >&2; exit 1; }
        sleep 0.2
    done
    [ -n "$port" ] || { echo "serve smoke: daemon never reported a port" >&2; exit 1; }
    ./build/tools/adiv_loadgen --port "$port" --model "$smoke_dir/model.adiv" \
        --sessions 8 --events 20000 --verify \
        --out "$smoke_dir/BENCH_serve_smoke.json"
    grep -q '"verified":true' "$smoke_dir/BENCH_serve_smoke.json" || {
        echo "serve smoke: loadgen did not verify" >&2; exit 1; }
    kill -TERM "$serve_pid"
    wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero" >&2; exit 1; }
    grep -q 'drained' "$smoke_dir/serve.log" || {
        echo "serve smoke: daemon did not drain cleanly" >&2; exit 1; }
    rm -rf "$smoke_dir"
    trap - EXIT
fi

echo "== ci_check: OK =="
