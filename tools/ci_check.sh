#!/bin/sh
# Tier-1 gate plus optional sanitizer passes.
#
#   tools/ci_check.sh                   # configure, build, ctest (build/)
#   tools/ci_check.sh --sanitize        # also build + run tests under
#                                       # ASan/UBSan (build-san/, slower)
#   tools/ci_check.sh --sanitize thread # also build under TSan (build-tsan/)
#                                       # and run the parallel-engine tests
#   tools/ci_check.sh --sanitize all    # both sanitizer passes
#   tools/ci_check.sh --serve-smoke     # also: train a model, start the
#                                       # adiv_serve daemon on an ephemeral
#                                       # port, drive it with adiv_loadgen
#                                       # (verified), SIGTERM-drain it
#   tools/ci_check.sh --obs-smoke       # also: run a small instrumented map
#                                       # experiment (--trace + periodic
#                                       # --metrics-interval snapshots),
#                                       # analyze the trace with
#                                       # adiv_traceview, and scrape a live
#                                       # daemon (METRICS verb + HTTP
#                                       # GET /metrics, exposition validated)
#   tools/ci_check.sh --profile-smoke   # also: profiled in-process loadgen
#                                       # sweep (stage histograms, wait
#                                       # sites, hotpath JSON, traceview
#                                       # --contention) plus a --profile
#                                       # daemon driven with --dump and
#                                       # SIGUSR1 flight-recorder dumps
#   tools/ci_check.sh --lint            # also: adiv_lint self-scan (must be
#                                       # clean) and, when clang-tidy is on
#                                       # PATH, clang-tidy over src/
#
# All ci_check builds configure with -DADIV_WERROR=ON: warnings that are
# tolerable interactively are failures at the gate.
#
# Exits non-zero on the first failure. Run from the repository root.
set -eu

jobs=$(nproc 2>/dev/null || echo 2)
asan=0
tsan=0
serve_smoke=0
obs_smoke=0
profile_smoke=0
lint=0
expect_mode=0
for arg in "$@"; do
    if [ "$expect_mode" -eq 1 ]; then
        expect_mode=0
        case "$arg" in
            address|address,undefined) asan=1; continue ;;
            thread) tsan=1; continue ;;
            all) asan=1; tsan=1; continue ;;
            *) echo "unknown sanitizer '$arg'" >&2
               echo "usage: tools/ci_check.sh [--sanitize [address|thread|all]]" >&2
               exit 2 ;;
        esac
    fi
    case "$arg" in
        --sanitize) expect_mode=1 ;;
        --sanitize=thread) tsan=1 ;;
        --sanitize=address|--sanitize=address,undefined) asan=1 ;;
        --sanitize=all) asan=1; tsan=1 ;;
        --serve-smoke) serve_smoke=1 ;;
        --obs-smoke) obs_smoke=1 ;;
        --profile-smoke) profile_smoke=1 ;;
        --lint) lint=1 ;;
        *) echo "usage: tools/ci_check.sh [--sanitize [address|thread|all]] [--serve-smoke] [--obs-smoke] [--profile-smoke] [--lint]" >&2
           exit 2 ;;
    esac
done
# Bare `--sanitize` keeps its historical meaning: address,undefined.
if [ "$expect_mode" -eq 1 ]; then asan=1; fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . -DADIV_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [ "$lint" -eq 1 ]; then
    echo "== lint: adiv_lint self-scan =="
    ./build/tools/adiv_lint .
    if command -v clang-tidy >/dev/null 2>&1; then
        echo "== lint: clang-tidy over src/ =="
        find src -name '*.cpp' -print | xargs clang-tidy -p build --quiet
    else
        echo "== lint: clang-tidy not on PATH, step skipped =="
    fi
fi

if [ "$asan" -eq 1 ]; then
    echo "== sanitizer pass: address,undefined =="
    cmake -B build-san -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=address,undefined -DADIV_WERROR=ON \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-san -j "$jobs"
    (cd build-san && ctest --output-on-failure -j "$jobs")
fi

if [ "$tsan" -eq 1 ]; then
    echo "== sanitizer pass: thread (parallel engine tests) =="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=thread -DADIV_WERROR=ON \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j "$jobs"
    # The concurrency surface: the pool itself, the scheduler's determinism
    # suite (jobs > 1 plan runs for all detectors), the engine sinks, the
    # detection server (transports, strands, concurrent sessions), the
    # live-telemetry threads (sampler ticks, HTTP scrape listener), and the
    # profiling layer (wait-site registry, flight-recorder ring, stamped
    # server pipeline).
    (cd build-tsan && ctest --output-on-failure -j "$jobs" \
        -R 'ThreadPool|TaskGroup|EngineDeterminism|RunPlanWithSink|Maps\.|AllDetectorMaps|EnsembleClaims|Framing|Requests|Responses|Loopback|FrameHelpers|Tcp\.|ServerLoopback|TelemetrySampler|HttpMetrics|WaitSite|Profiled|FlightRecorder|StageProfile|Contention')
fi

if [ "$serve_smoke" -eq 1 ]; then
    echo "== serve smoke: daemon + loadgen over TCP =="
    smoke_dir=$(mktemp -d)
    serve_pid=""
    trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    ./build/tools/adiv_train --demo-trace "$smoke_dir/demo.trace"
    ./build/tools/adiv_train --detector stide --window 6 \
        --input "$smoke_dir/demo.trace" --out "$smoke_dir/model.adiv"
    ./build/tools/adiv_serve --model "$smoke_dir/model.adiv" --port 0 --jobs 2 \
        > "$smoke_dir/serve.log" 2>&1 &
    serve_pid=$!
    port=""
    for _ in $(seq 1 50); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$smoke_dir/serve.log")
        [ -n "$port" ] && break
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke_dir/serve.log" >&2; exit 1; }
        sleep 0.2
    done
    [ -n "$port" ] || { echo "serve smoke: daemon never reported a port" >&2; exit 1; }
    ./build/tools/adiv_loadgen --port "$port" --model "$smoke_dir/model.adiv" \
        --sessions 8 --events 20000 --verify \
        --out "$smoke_dir/BENCH_serve_smoke.json"
    grep -q '"verified":true' "$smoke_dir/BENCH_serve_smoke.json" || {
        echo "serve smoke: loadgen did not verify" >&2; exit 1; }
    kill -TERM "$serve_pid"
    wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero" >&2; exit 1; }
    grep -q 'drained' "$smoke_dir/serve.log" || {
        echo "serve smoke: daemon did not drain cleanly" >&2; exit 1; }
    rm -rf "$smoke_dir"
    trap - EXIT
fi

if [ "$obs_smoke" -eq 1 ]; then
    echo "== obs smoke: instrumented map run + traceview + live scrape =="
    smoke_dir=$(mktemp -d)
    serve_pid=""
    trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT

    echo "-- obs smoke: small map experiment with live telemetry --"
    ./build/bench/fig5_stide_map --training-length 20000 --background 512 \
        --max-anomaly 3 --max-window 4 --jobs 2 \
        --metrics "$smoke_dir/metrics.json" \
        --trace "$smoke_dir/trace.jsonl" \
        --metrics-interval 50 > "$smoke_dir/map.log"
    [ -s "$smoke_dir/metrics.json" ] || {
        echo "obs smoke: no final metrics dump" >&2; exit 1; }
    grep -q '"type":"metrics_sample"' "$smoke_dir/metrics.json.samples.jsonl" || {
        echo "obs smoke: sampler wrote no snapshot lines" >&2; exit 1; }
    head -1 "$smoke_dir/trace.jsonl" | grep -q '"type":"manifest"' || {
        echo "obs smoke: trace does not start with a manifest" >&2; exit 1; }

    echo "-- obs smoke: adiv_traceview over the run's trace --"
    ./build/tools/adiv_traceview "$smoke_dir/trace.jsonl" > "$smoke_dir/traceview.txt"
    grep -q 'critical path:' "$smoke_dir/traceview.txt" || {
        echo "obs smoke: traceview found no critical path" >&2; exit 1; }
    ./build/tools/adiv_traceview --json "$smoke_dir/trace.jsonl" \
        | grep -q '"skipped":0' || {
        echo "obs smoke: traceview skipped lines of its own trace" >&2; exit 1; }

    echo "-- obs smoke: daemon scrape (METRICS verb + HTTP GET /metrics) --"
    ./build/tools/adiv_train --demo-trace "$smoke_dir/demo.trace"
    ./build/tools/adiv_train --detector stide --window 6 \
        --input "$smoke_dir/demo.trace" --out "$smoke_dir/model.adiv"
    ./build/tools/adiv_serve --model "$smoke_dir/model.adiv" --port 0 --jobs 2 \
        --metrics-port 0 > "$smoke_dir/serve.log" 2>&1 &
    serve_pid=$!
    port=""
    http_port=""
    for _ in $(seq 1 50); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$smoke_dir/serve.log")
        http_port=$(sed -n 's/.*metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$smoke_dir/serve.log")
        [ -n "$port" ] && [ -n "$http_port" ] && break
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke_dir/serve.log" >&2; exit 1; }
        sleep 0.2
    done
    [ -n "$port" ] && [ -n "$http_port" ] || {
        echo "obs smoke: daemon never reported its ports" >&2; exit 1; }
    # --scrape pulls the METRICS verb twice mid-run (exposition must parse,
    # counters must be monotone); --scrape-http validates the HTTP endpoint's
    # exposition end to end. Both run while sessions are actively scoring.
    ./build/tools/adiv_loadgen --port "$port" --model "$smoke_dir/model.adiv" \
        --sessions 4 --events 20000 --scrape --scrape-http "$http_port" \
        > "$smoke_dir/loadgen.log"
    grep -q 'valid OpenMetrics' "$smoke_dir/loadgen.log" || {
        echo "obs smoke: loadgen scrape did not validate" >&2; exit 1; }
    kill -TERM "$serve_pid"
    wait "$serve_pid" || { echo "obs smoke: daemon exited non-zero" >&2; exit 1; }
    serve_pid=""
    rm -rf "$smoke_dir"
    trap - EXIT
fi

if [ "$profile_smoke" -eq 1 ]; then
    echo "== profile smoke: contention profiling end to end =="
    smoke_dir=$(mktemp -d)
    serve_pid=""
    trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    ./build/tools/adiv_train --demo-trace "$smoke_dir/demo.trace"
    ./build/tools/adiv_train --detector stide --window 6 \
        --input "$smoke_dir/demo.trace" --out "$smoke_dir/model.adiv"

    echo "-- profile smoke: profiled in-process sweep --"
    # --profile-sample 8 keeps the event_stage stream dense enough for the
    # contention view at smoke-test sizes; --dump exercises the DUMP verb
    # against every session's flight ring.
    ./build/tools/adiv_loadgen --model "$smoke_dir/model.adiv" \
        --sweep-jobs 1,2 --sessions 4 --events 8000 \
        --profile --profile-sample 8 --dump \
        --profile-trace "$smoke_dir/profile.jsonl" \
        --hotpath-out "$smoke_dir/BENCH_serve_hotpath.json" \
        > "$smoke_dir/sweep.log"
    grep -q 'profile: stage samples=' "$smoke_dir/sweep.log" || {
        echo "profile smoke: sweep printed no profile line" >&2; exit 1; }
    if grep -q 'profile: stage samples=0,' "$smoke_dir/sweep.log"; then
        echo "profile smoke: a sweep point recorded zero stage samples" >&2
        exit 1
    fi
    grep -q 'client latency PUSH' "$smoke_dir/sweep.log" || {
        echo "profile smoke: no client-side PUSH latency summary" >&2; exit 1; }
    grep -q '"dominant_wait_site":"' "$smoke_dir/BENCH_serve_hotpath.json" || {
        echo "profile smoke: hotpath JSON names no dominant wait site" >&2
        exit 1
    }
    ./build/tools/adiv_traceview --contention "$smoke_dir/profile.jsonl" \
        > "$smoke_dir/contention.txt"
    grep -q 'stage breakdown' "$smoke_dir/contention.txt" || {
        echo "profile smoke: traceview --contention found no stages" >&2
        exit 1
    }
    grep -q 'dominant wait site:' "$smoke_dir/contention.txt" || {
        echo "profile smoke: traceview --contention named no dominant site" >&2
        exit 1
    }

    echo "-- profile smoke: profiled daemon, DUMP verb + SIGUSR1 --"
    ./build/tools/adiv_serve --model "$smoke_dir/model.adiv" --port 0 --jobs 2 \
        --profile --dump-on-signal > "$smoke_dir/serve.log" 2>&1 &
    serve_pid=$!
    port=""
    for _ in $(seq 1 50); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$smoke_dir/serve.log")
        [ -n "$port" ] && break
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke_dir/serve.log" >&2; exit 1; }
        sleep 0.2
    done
    [ -n "$port" ] || { echo "profile smoke: daemon never reported a port" >&2; exit 1; }
    ./build/tools/adiv_loadgen --port "$port" --model "$smoke_dir/model.adiv" \
        --sessions 2 --events 20000 --dump > "$smoke_dir/loadgen.log" &
    loadgen_pid=$!
    # Fire the flight-recorder dump while sessions are still live so the
    # rings have content; the daemon prints it between accept polls.
    sleep 1
    kill -USR1 "$serve_pid"
    wait "$loadgen_pid" || { cat "$smoke_dir/loadgen.log" >&2
        echo "profile smoke: loadgen --dump failed" >&2; exit 1; }
    kill -TERM "$serve_pid"
    wait "$serve_pid" || { echo "profile smoke: daemon exited non-zero" >&2; exit 1; }
    serve_pid=""
    grep -q 'flight recorder dump' "$smoke_dir/serve.log" || {
        echo "profile smoke: SIGUSR1 produced no flight recorder dump" >&2
        exit 1
    }
    rm -rf "$smoke_dir"
    trap - EXIT
fi

echo "== ci_check: OK =="
