#!/bin/sh
# Tier-1 gate plus an optional sanitizer pass.
#
#   tools/ci_check.sh              # configure, build, ctest (build/)
#   tools/ci_check.sh --sanitize   # also build + run tests under ASan/UBSan
#                                  # (build-san/, slower)
#
# Exits non-zero on the first failure. Run from the repository root.
set -eu

jobs=$(nproc 2>/dev/null || echo 2)
sanitize=0
for arg in "$@"; do
    case "$arg" in
        --sanitize) sanitize=1 ;;
        *) echo "usage: tools/ci_check.sh [--sanitize]" >&2; exit 2 ;;
    esac
done

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [ "$sanitize" -eq 1 ]; then
    echo "== sanitizer pass: address,undefined =="
    cmake -B build-san -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=address,undefined \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-san -j "$jobs"
    (cd build-san && ctest --output-on-failure -j "$jobs")
fi

echo "== ci_check: OK =="
