#!/bin/sh
# Tier-1 gate plus optional sanitizer passes.
#
#   tools/ci_check.sh                   # configure, build, ctest (build/)
#   tools/ci_check.sh --sanitize        # also build + run tests under
#                                       # ASan/UBSan (build-san/, slower)
#   tools/ci_check.sh --sanitize thread # also build under TSan (build-tsan/)
#                                       # and run the parallel-engine tests
#   tools/ci_check.sh --sanitize all    # both sanitizer passes
#
# Exits non-zero on the first failure. Run from the repository root.
set -eu

jobs=$(nproc 2>/dev/null || echo 2)
asan=0
tsan=0
expect_mode=0
for arg in "$@"; do
    if [ "$expect_mode" -eq 1 ]; then
        expect_mode=0
        case "$arg" in
            address|address,undefined) asan=1; continue ;;
            thread) tsan=1; continue ;;
            all) asan=1; tsan=1; continue ;;
            *) echo "unknown sanitizer '$arg'" >&2
               echo "usage: tools/ci_check.sh [--sanitize [address|thread|all]]" >&2
               exit 2 ;;
        esac
    fi
    case "$arg" in
        --sanitize) expect_mode=1 ;;
        --sanitize=thread) tsan=1 ;;
        --sanitize=address|--sanitize=address,undefined) asan=1 ;;
        --sanitize=all) asan=1; tsan=1 ;;
        *) echo "usage: tools/ci_check.sh [--sanitize [address|thread|all]]" >&2
           exit 2 ;;
    esac
done
# Bare `--sanitize` keeps its historical meaning: address,undefined.
if [ "$expect_mode" -eq 1 ]; then asan=1; fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [ "$asan" -eq 1 ]; then
    echo "== sanitizer pass: address,undefined =="
    cmake -B build-san -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=address,undefined \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-san -j "$jobs"
    (cd build-san && ctest --output-on-failure -j "$jobs")
fi

if [ "$tsan" -eq 1 ]; then
    echo "== sanitizer pass: thread (parallel engine tests) =="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DADIV_SANITIZE=thread \
        -DADIV_BUILD_BENCH=OFF -DADIV_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j "$jobs"
    # The concurrency surface: the pool itself, the scheduler's determinism
    # suite (jobs > 1 plan runs for all detectors), and the engine sinks.
    (cd build-tsan && ctest --output-on-failure -j "$jobs" \
        -R 'ThreadPool|TaskGroup|EngineDeterminism|RunPlanWithSink|Maps\.|AllDetectorMaps|EnsembleClaims')
fi

echo "== ci_check: OK =="
