// adiv_traceview: aggregate a --trace JSON-lines span stream into tables.
//
//   adiv_traceview run.trace.jsonl
//   adiv_traceview --json run.trace.jsonl other.trace.jsonl
//   adiv_traceview --contention profiled.trace.jsonl
//   some_tool --trace - 2>&1 | adiv_traceview -
//
// Prints one row per span name — count, total time, self time (total minus
// direct children, reconstructed from the depth column), and exact
// nearest-rank p50/p95/p99/max — sorted by total time; then one section per
// run manifest with its critical path (the longest-child chain under the
// longest root span). --json emits the same content as one JSON document,
// spans sorted by name. Malformed lines are counted and reported, never
// fatal, so a trace cut off mid-line still analyzes.
//
// --contention switches to the profiling view: the sampled per-event
// `event_stage` lines become a recv/parse/queue/score/reply/total stage
// breakdown, the `wait_site` lines become a top-wait-sites report, and the
// dominant (most total wait, contention-kind) site is named on its own
// line. Combines with --json.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("adiv_traceview",
                  "aggregate a JSON-lines span trace: per-span statistics and "
                  "per-run critical paths");
    cli.add_flag("json", "emit one JSON document instead of tables");
    cli.add_flag("contention",
                 "profiling view: stage breakdown + top wait sites from "
                 "event_stage / wait_site lines");
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::vector<std::string>& inputs = cli.positionals();
        require(!inputs.empty(),
                "usage: adiv_traceview [--json] [--contention] TRACE.jsonl ... "
                "('-' = stdin)");
        std::stringstream merged;
        for (const std::string& path : inputs) {
            if (path == "-") {
                merged << std::cin.rdbuf();
            } else {
                std::ifstream in(path);
                require_data(in.good(), "cannot open '" + path + "'");
                merged << in.rdbuf();
            }
            merged << '\n';  // keep file boundaries from gluing two lines
        }
        if (cli.get_flag("contention")) {
            const ContentionAnalysis analysis = analyze_contention(merged);
            if (cli.get_flag("json"))
                std::printf("%s\n", contention_to_json(analysis).c_str());
            else
                std::fputs(render_contention(analysis).c_str(), stdout);
            return 0;
        }
        const TraceAnalysis analysis = analyze_trace(merged);
        if (cli.get_flag("json"))
            std::printf("%s\n", traceview_to_json(analysis).c_str());
        else
            std::fputs(render_traceview(analysis).c_str(), stdout);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_traceview: %s\n", e.what());
        return 1;
    }
}
