// adiv_traceview: aggregate a --trace JSON-lines span stream into tables.
//
//   adiv_traceview run.trace.jsonl
//   adiv_traceview --json run.trace.jsonl other.trace.jsonl
//   some_tool --trace - 2>&1 | adiv_traceview -
//
// Prints one row per span name — count, total time, self time (total minus
// direct children, reconstructed from the depth column), and exact
// nearest-rank p50/p95/p99/max — sorted by total time; then one section per
// run manifest with its critical path (the longest-child chain under the
// longest root span). --json emits the same content as one JSON document,
// spans sorted by name. Malformed lines are counted and reported, never
// fatal, so a trace cut off mid-line still analyzes.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("adiv_traceview",
                  "aggregate a JSON-lines span trace: per-span statistics and "
                  "per-run critical paths");
    cli.add_flag("json", "emit one JSON document instead of tables");
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::vector<std::string>& inputs = cli.positionals();
        require(!inputs.empty(),
                "usage: adiv_traceview [--json] TRACE.jsonl ... ('-' = stdin)");
        std::stringstream merged;
        for (const std::string& path : inputs) {
            if (path == "-") {
                merged << std::cin.rdbuf();
            } else {
                std::ifstream in(path);
                require_data(in.good(), "cannot open '" + path + "'");
                merged << in.rdbuf();
            }
            merged << '\n';  // keep file boundaries from gluing two lines
        }
        const TraceAnalysis analysis = analyze_trace(merged);
        if (cli.get_flag("json"))
            std::printf("%s\n", traceview_to_json(analysis).c_str());
        else
            std::fputs(render_traceview(analysis).c_str(), stdout);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_traceview: %s\n", e.what());
        return 1;
    }
}
