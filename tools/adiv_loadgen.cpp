// adiv_loadgen: concurrent client load for an adiv_serve detection server.
//
// Two modes share the same per-session replay (OPEN, batched PUSH, DRAIN,
// CLOSE, with every response collected and counted):
//
//   * TCP mode (--port): drives a running adiv_serve daemon over real
//     sockets. The CI smoke test uses this.
//
//       adiv_loadgen --port 7007 --model monitor.adiv --sessions 8 --verify
//
//   * Sweep mode (--sweep-jobs): builds an in-process server per jobs value
//     over loopback transports — hermetic, no daemon needed — and measures
//     how throughput scales with the worker pool.
//
//       adiv_loadgen --model monitor.adiv --sweep-jobs 1,2,4,0
//                    --out BENCH_serve_throughput.json
//
// Each session replays an independently seeded stream drawn from the
// paper's cycle-plus-deviations transition matrix (falling back to uniform
// symbols for tiny alphabets). With --verify (needs --model so the same
// trained detector exists locally), the scores that came back over the wire
// are compared BIT-IDENTICALLY against a single-threaded OnlineScorer
// replay of the same events — the end-to-end determinism check. DRAINED
// counters must match the client-side tallies exactly (no lost or
// duplicated responses); any mismatch makes the exit status nonzero.
//
// --scrape drives the METRICS verb concurrently with the load: a scraper
// connection pulls the OpenMetrics exposition twice mid-run, parses both,
// and fails the run when any counter moves backwards between scrapes.
// --scrape-http PORT does the same end-to-end over the daemon's HTTP
// GET /metrics endpoint (TCP mode only, no curl needed in CI).
//
// Every client call is timed, so each run also reports client-side latency
// per verb (OPEN/PUSH/DRAIN/CLOSE, exact nearest-rank p50/p95/p99/max over
// every call made) in the summary lines and the --out JSON.
//
// --profile (sweep mode, ADIV_PROFILE builds) turns each point into a
// contention profile: the global metrics registry is reset per point, the
// server's serve.stage.* histograms and wait-site instruments are captured
// after the drain, and a `profile:` line names the dominant wait site.
// --profile-trace PATH additionally streams the sampled event_stage lines
// and per-point wait_site digests as JSONL for `adiv_traceview
// --contention`; --hotpath-out PATH writes the full per-point breakdown
// (stages, wait sites, dominant site) as BENCH_serve_hotpath.json. --dump
// pulls each session's flight recorder (DUMP verb) before CLOSE and fails
// the run if the dump does not replay as `seq=` records.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "adiv.hpp"

using namespace adiv;

namespace {

struct LoadSpec {
    std::size_t sessions = 8;
    std::size_t events_per_session = 125'000;
    std::size_t batch = 512;
    std::string target = "default";
    std::uint64_t seed = 20050628;
    bool verify = false;
    bool scrape = false;  // concurrent METRICS scrapes during the run
    bool dump = false;    // pull the flight recorder (DUMP) before CLOSE
    std::size_t scorer_buffer = 0;  // must match the server's --buffer
};

struct SessionOutcome {
    std::size_t events = 0;
    std::size_t windows = 0;
    std::uint64_t alarms = 0;
    std::vector<std::string> errors;
    /// Client-side wall time of every protocol call, microseconds, keyed by
    /// verb. PUSH gets one sample per frame, the others one per session.
    std::map<std::string, std::vector<double>> latency_us;
};

/// Exact nearest-rank percentile over an unsorted sample set (sorts a copy).
double nearest_rank_us(std::vector<double> values, double percentile) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(percentile / 100.0 *
                                static_cast<double>(values.size()))));
    return values[std::min(rank, values.size()) - 1];
}

/// Per-session replay stream: the paper's cycle matrix when the alphabet can
/// host it, uniform symbols otherwise. Seeded per session so every session
/// (and the local verification replay) regenerates the same events.
Sequence make_session_stream(std::size_t alphabet, std::size_t length,
                             std::uint64_t seed) {
    Rng rng(seed);
    CorpusSpec spec;
    spec.alphabet_size = alphabet;
    try {
        const TransitionMatrix matrix = make_cycle_matrix(spec);
        const Symbol start = static_cast<Symbol>(rng.below(alphabet));
        return matrix.generate(length, start, rng).events();
    } catch (const InvalidArgument&) {
        Sequence events(length);
        for (auto& s : events) s = static_cast<Symbol>(rng.below(alphabet));
        return events;
    }
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// One full session against the server behind `transport`. Collects every
/// score, checks DRAIN/CLOSE counters, optionally replays locally.
SessionOutcome run_session(std::unique_ptr<serve::Transport> transport,
                           const LoadSpec& spec, std::size_t index,
                           const SequenceDetector* local_model) {
    SessionOutcome outcome;
    auto fail = [&](std::string what) {
        outcome.errors.push_back("session " + std::to_string(index) + ": " +
                                 std::move(what));
    };
    try {
        serve::Client client(std::move(transport));
        Stopwatch call;
        const serve::OpenInfo info = client.open(spec.target);
        outcome.latency_us["OPEN"].push_back(call.seconds() * 1e6);
        const Sequence events = make_session_stream(
            info.alphabet, spec.events_per_session, spec.seed + index);

        std::vector<double> scores;
        if (events.size() >= info.window)
            scores.reserve(events.size() - info.window + 1);
        std::vector<double>& push_latency = outcome.latency_us["PUSH"];
        push_latency.reserve((events.size() + spec.batch - 1) / spec.batch);
        for (std::size_t pos = 0; pos < events.size(); pos += spec.batch) {
            const std::size_t n = std::min(spec.batch, events.size() - pos);
            call.restart();
            const std::vector<double> batch_scores =
                client.push(SymbolView(events).subspan(pos, n));
            push_latency.push_back(call.seconds() * 1e6);
            scores.insert(scores.end(), batch_scores.begin(), batch_scores.end());
        }

        call.restart();
        const serve::SessionCounts drained = client.drain();
        outcome.latency_us["DRAIN"].push_back(call.seconds() * 1e6);
        if (drained.events != events.size())
            fail("DRAINED events " + std::to_string(drained.events) +
                 ", pushed " + std::to_string(events.size()));
        if (drained.windows != scores.size())
            fail("DRAINED windows " + std::to_string(drained.windows) +
                 ", responses received " + std::to_string(scores.size()));
        if (spec.dump) {
            call.restart();
            const std::string dump = client.dump();
            outcome.latency_us["DUMP"].push_back(call.seconds() * 1e6);
            // The ring replays newest-K events as `seq=...` lines; after a
            // full session it must hold something and parse as records. The
            // ring only fills while the server profiles, so an empty dump
            // means the daemon is missing --profile.
            if (dump.empty() || dump.rfind("seq=", 0) != 0)
                fail("DUMP returned no flight records (server running "
                     "without --profile?): '" +
                     dump.substr(0, dump.find('\n')) + "'");
        }
        call.restart();
        const serve::SessionCounts closed = client.close_session();
        outcome.latency_us["CLOSE"].push_back(call.seconds() * 1e6);
        if (closed.windows != drained.windows || closed.events != drained.events)
            fail("CLOSED counters disagree with DRAINED");
        client.disconnect();

        if (spec.verify && local_model != nullptr) {
            OnlineScorer replay(*local_model, spec.scorer_buffer);
            std::vector<double> expected;
            expected.reserve(scores.size());
            for (const Symbol s : events)
                if (const auto r = replay.push(s)) expected.push_back(*r);
            if (!bit_identical(scores, expected))
                fail("served scores differ from local OnlineScorer replay");
        }

        outcome.events = events.size();
        outcome.windows = scores.size();
        outcome.alarms = drained.alarms;
    } catch (const std::exception& e) {
        fail(e.what());
    }
    return outcome;
}

/// Scrapes the server's METRICS verb twice while load runs: both expositions
/// must parse as OpenMetrics and every `_total` counter must be monotone
/// non-decreasing between the scrapes.
std::vector<std::string> scrape_check(
    const std::function<std::unique_ptr<serve::Transport>(std::size_t)>& connect) {
    std::vector<std::string> errors;
    try {
        serve::Client client(connect(0));
        const OpenMetricsDocument before = parse_openmetrics(client.metrics());
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        const OpenMetricsDocument after = parse_openmetrics(client.metrics());
        for (const auto& sample : before.samples) {
            constexpr std::string_view kTotal = "_total";
            if (sample.name.size() <= kTotal.size() ||
                sample.name.compare(sample.name.size() - kTotal.size(),
                                    kTotal.size(), kTotal) != 0)
                continue;
            const std::optional<double> later =
                after.value(sample.name, sample.labels);
            if (!later) {
                errors.push_back("scrape: counter " + sample.name +
                                 " vanished between scrapes");
            } else if (*later < sample.value) {
                errors.push_back("scrape: counter " + sample.name +
                                 " moved backwards (" +
                                 std::to_string(sample.value) + " -> " +
                                 std::to_string(*later) + ")");
            }
        }
        client.disconnect();
    } catch (const std::exception& e) {
        errors.push_back(std::string("scrape: ") + e.what());
    }
    return errors;
}

/// One raw HTTP GET against the daemon's --metrics-port: status must be 200
/// and the body must parse as OpenMetrics.
std::vector<std::string> scrape_http_check(const std::string& host,
                                           std::uint16_t port) {
    std::vector<std::string> errors;
    try {
        std::unique_ptr<serve::Transport> transport =
            serve::tcp_connect(host, port);
        const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
        transport->write_all(request.data(), request.size());
        std::string response;
        char buffer[4096];
        for (;;) {
            const std::size_t n = transport->read_some(buffer, sizeof buffer);
            if (n == 0) break;
            response.append(buffer, n);
        }
        transport->close();
        if (response.rfind("HTTP/1.0 200", 0) != 0) {
            errors.push_back("scrape-http: expected HTTP/1.0 200, got '" +
                             response.substr(0, response.find('\r')) + "'");
        } else {
            const std::size_t body = response.find("\r\n\r\n");
            if (body == std::string::npos)
                errors.push_back("scrape-http: response has no header/body split");
            else
                parse_openmetrics(response.substr(body + 4));  // throws if bad
        }
    } catch (const std::exception& e) {
        errors.push_back(std::string("scrape-http: ") + e.what());
    }
    return errors;
}

struct RunResult {
    double seconds = 0.0;
    std::size_t total_events = 0;
    std::uint64_t total_alarms = 0;
    std::vector<std::string> errors;
    /// Merged client-side call latencies across every session, by verb.
    std::map<std::string, std::vector<double>> latency_us;

    [[nodiscard]] double events_per_sec() const noexcept {
        return seconds > 0.0 ? static_cast<double>(total_events) / seconds : 0.0;
    }
};

/// Runs `spec.sessions` concurrent sessions; `connect` supplies one fresh
/// transport per session (a TCP connect or a loopback attach).
RunResult run_load(
    const LoadSpec& spec, const SequenceDetector* local_model,
    const std::function<std::unique_ptr<serve::Transport>(std::size_t)>& connect) {
    std::vector<SessionOutcome> outcomes(spec.sessions);
    std::vector<std::string> scrape_errors;
    Stopwatch sw;
    {
        std::vector<std::thread> threads;
        threads.reserve(spec.sessions);
        for (std::size_t i = 0; i < spec.sessions; ++i)
            threads.emplace_back([&, i] {
                outcomes[i] = run_session(connect(i), spec, i, local_model);
            });
        // The scraper rides alongside the load so the exposition is pulled
        // while counters are actually moving.
        std::thread scraper;
        if (spec.scrape)
            scraper = std::thread([&] { scrape_errors = scrape_check(connect); });
        for (auto& t : threads) t.join();
        if (scraper.joinable()) scraper.join();
    }
    RunResult result;
    result.seconds = sw.seconds();
    for (const auto& outcome : outcomes) {
        result.total_events += outcome.events;
        result.total_alarms += outcome.alarms;
        result.errors.insert(result.errors.end(), outcome.errors.begin(),
                             outcome.errors.end());
        for (const auto& [verb, samples] : outcome.latency_us) {
            std::vector<double>& merged = result.latency_us[verb];
            merged.insert(merged.end(), samples.begin(), samples.end());
        }
    }
    result.errors.insert(result.errors.end(), scrape_errors.begin(),
                         scrape_errors.end());
    return result;
}

/// One summary line per verb: exact nearest-rank client-side percentiles
/// over every call the run made.
void print_latency_summary(const RunResult& result) {
    for (const auto& [verb, samples] : result.latency_us) {
        std::printf("  client latency %-5s n=%-6zu p50=%.1fus p95=%.1fus "
                    "p99=%.1fus max=%.1fus\n",
                    verb.c_str(), samples.size(),
                    nearest_rank_us(samples, 50.0),
                    nearest_rank_us(samples, 95.0),
                    nearest_rank_us(samples, 99.0),
                    samples.empty()
                        ? 0.0
                        : *std::max_element(samples.begin(), samples.end()));
    }
}

/// The "client_latency_us" object of one result point in the --out JSON.
void write_latency_json(JsonWriter& w, const RunResult& result) {
    w.key("client_latency_us").begin_object();
    for (const auto& [verb, samples] : result.latency_us) {
        w.key(verb).begin_object();
        w.key("count").value(static_cast<std::uint64_t>(samples.size()));
        w.key("p50").value(nearest_rank_us(samples, 50.0));
        w.key("p95").value(nearest_rank_us(samples, 95.0));
        w.key("p99").value(nearest_rank_us(samples, 99.0));
        w.key("max").value(samples.empty() ? 0.0
                                           : *std::max_element(samples.begin(),
                                                               samples.end()));
        w.end_object();
    }
    w.end_object();
}

/// The pipeline stages in serve.stage.* order (also the order the hotpath
/// JSON emits them in).
constexpr const char* kStageNames[] = {"recv",  "parse", "queue",
                                       "score", "reply", "total"};

/// The registry digest of one profiled sweep point, captured after the
/// point's server drained and before the next point resets the registry:
/// serve.stage.* histogram summaries, every wait site, the dominant site.
struct ProfilePoint {
    std::map<std::string, HistogramSummary> stages;
    std::vector<WaitSiteSummary> sites;
    std::string dominant_site;   ///< empty when nothing contended
    std::uint64_t stage_samples = 0;  ///< serve.stage.total_us count
};

ProfilePoint capture_profile_point() {
    ProfilePoint point;
    const MetricsRegistry::Snapshot snap = global_metrics().snapshot();
    for (const char* stage : kStageNames) {
        const std::string name = std::string("serve.stage.") + stage + "_us";
        for (const auto& [metric, summary] : snap.histograms)
            if (metric == name) point.stages[stage] = summary;
    }
    if (const auto it = point.stages.find("total"); it != point.stages.end())
        point.stage_samples = it->second.count;
    point.sites = global_wait_sites().summaries();
    if (const WaitSiteSummary* dominant = dominant_wait_site(point.sites))
        point.dominant_site = dominant->name;
    return point;
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("adiv_loadgen",
                  "concurrent client load against an adiv_serve server");
    cli.add_option("port", "0", "TCP mode: port of a running adiv_serve");
    cli.add_option("host", "127.0.0.1", "TCP mode: server host");
    cli.add_option("sweep-jobs", "",
                   "sweep mode: comma-separated jobs values (0 = hardware), "
                   "each run against an in-process loopback server");
    cli.add_option("model", "",
                   "trained model file: serves the sweep, verifies TCP runs");
    cli.add_option("sessions", "8", "concurrent client sessions");
    cli.add_option("events", "125000", "events pushed per session");
    cli.add_option("batch", "512", "events per PUSH frame");
    cli.add_option("target", "default", "OPEN target (model name)");
    cli.add_option("seed", "20050628", "base seed; session i uses seed+i");
    cli.add_option("queue", "256", "sweep mode: server queue capacity");
    cli.add_option("buffer", "0",
                   "scorer buffer (must match the server's --buffer)");
    cli.add_option("out", "", "write results JSON here");
    cli.add_flag("verify",
                 "bit-compare served scores against a local OnlineScorer "
                 "replay (requires --model)");
    cli.add_flag("scrape",
                 "pull METRICS twice mid-run; fail on unparseable exposition "
                 "or non-monotone counters");
    cli.add_option("scrape-http", "",
                   "TCP mode: also GET /metrics from the daemon's "
                   "--metrics-port at this port");
    cli.add_flag("dump",
                 "pull each session's flight recorder (DUMP) before CLOSE; "
                 "fail unless it replays as seq= records (needs a profiling "
                 "server)");
    cli.add_flag("profile",
                 "sweep mode: profile each point — reset the registry, "
                 "capture serve.stage.* and wait sites after the drain "
                 "(ADIV_PROFILE builds)");
    cli.add_option("profile-sample", "64",
                   "sweep mode: server emits one event_stage trace line per "
                   "N PUSHes under --profile (0 = none)");
    cli.add_option("profile-trace", "",
                   "write event_stage + wait_site JSONL here for "
                   "adiv_traceview --contention (requires --profile)");
    cli.add_option("hotpath-out", "",
                   "write the per-point stage/wait-site breakdown as a "
                   "BENCH_serve_hotpath JSON document (requires --profile)");
    cli.add_option("flight", "64",
                   "sweep mode: per-session flight-recorder capacity");
    try {
        if (!cli.parse(argc, argv)) return 0;

        LoadSpec spec;
        spec.sessions = static_cast<std::size_t>(cli.get_int("sessions"));
        spec.events_per_session = static_cast<std::size_t>(cli.get_int("events"));
        spec.batch = static_cast<std::size_t>(cli.get_int("batch"));
        spec.target = cli.get("target");
        spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        spec.verify = cli.get_flag("verify");
        spec.scrape = cli.get_flag("scrape");
        spec.dump = cli.get_flag("dump");
        spec.scorer_buffer = static_cast<std::size_t>(cli.get_int("buffer"));
        require(spec.sessions > 0, "--sessions must be positive");
        require(spec.batch > 0, "--batch must be positive");

        std::shared_ptr<const SequenceDetector> model;
        if (const std::string path = cli.get("model"); !path.empty())
            model = load_detector_file(path);
        require(!spec.verify || model != nullptr, "--verify requires --model");

        const std::string sweep = cli.get("sweep-jobs");
        const int port = cli.get_int("port");
        require(!sweep.empty() || port > 0, "--port or --sweep-jobs is required");
        require(cli.get("scrape-http").empty() || sweep.empty(),
                "--scrape-http needs TCP mode (--port)");

        const bool profile = cli.get_flag("profile");
        if (profile) {
            require(profiling_compiled(),
                    "--profile needs an ADIV_PROFILE build (reconfigure with "
                    "-DADIV_PROFILE=ON)");
            require(!sweep.empty(),
                    "--profile needs sweep mode (--sweep-jobs); profile a "
                    "daemon by starting adiv_serve with --profile");
            set_profiling_enabled(true);
        }
        require(cli.get("hotpath-out").empty() || profile,
                "--hotpath-out requires --profile");
        require(!spec.dump || sweep.empty() || profile,
                "--dump in sweep mode requires --profile (the flight ring "
                "only fills while the server profiles)");
        std::shared_ptr<TraceSink> profile_sink;
        if (const std::string trace = cli.get("profile-trace"); !trace.empty()) {
            require(profile, "--profile-trace requires --profile");
            profile_sink = open_trace_sink(trace);
            set_global_trace_sink(profile_sink);
        }

        struct SweepPoint {
            std::size_t jobs_requested;
            std::size_t jobs_resolved;
            RunResult result;
            ProfilePoint profile;
        };
        std::vector<SweepPoint> points;
        bool failed = false;

        if (!sweep.empty()) {
            require(model != nullptr, "--sweep-jobs requires --model");
            std::stringstream list(sweep);
            std::string item;
            while (std::getline(list, item, ',')) {
                const std::size_t jobs =
                    static_cast<std::size_t>(std::stoul(item));
                serve::ServerConfig config;
                config.jobs = jobs;
                config.queue_capacity =
                    static_cast<std::size_t>(cli.get_int("queue"));
                config.scorer_buffer = spec.scorer_buffer;
                config.flight_capacity =
                    static_cast<std::size_t>(cli.get_int("flight"));
                config.profile_sample_every =
                    static_cast<std::uint64_t>(cli.get_int("profile-sample"));
                // Each profiled point gets a clean registry so its captured
                // digest covers exactly this jobs value; the wait-site
                // instruments live in the same registry and reset with it.
                if (profile) global_metrics().reset();
                serve::Server server(config);
                server.add_model(spec.target == "default" ? model->name()
                                                          : spec.target,
                                 model);
                const RunResult result =
                    run_load(spec, model.get(), [&](std::size_t) {
                        auto [client_end, server_end] = serve::make_loopback_pair();
                        require(server.attach(std::move(server_end)),
                                "server refused connection");
                        return std::move(client_end);
                    });
                server.shutdown();
                ProfilePoint prof;
                if (profile) {
                    prof = capture_profile_point();
                    if (profile_sink && profile_sink->enabled())
                        global_wait_sites().write_jsonl(*profile_sink);
                }
                points.push_back({jobs, resolve_jobs(jobs), result, prof});
                std::printf("jobs %zu (%zu workers): %zu events in %.2fs — "
                            "%.0f events/s, %llu alarms\n",
                            jobs, resolve_jobs(jobs), result.total_events,
                            result.seconds, result.events_per_sec(),
                            static_cast<unsigned long long>(result.total_alarms));
                print_latency_summary(result);
                if (profile)
                    std::printf("  profile: stage samples=%llu, dominant wait "
                                "site: %s\n",
                                static_cast<unsigned long long>(
                                    prof.stage_samples),
                                prof.dominant_site.empty()
                                    ? "(none contended)"
                                    : prof.dominant_site.c_str());
                for (const auto& error : result.errors) {
                    std::fprintf(stderr, "adiv_loadgen: %s\n", error.c_str());
                    failed = true;
                }
            }
        } else {
            const std::string host = cli.get("host");
            const RunResult result =
                run_load(spec, model.get(), [&](std::size_t) {
                    return serve::tcp_connect(
                        host, static_cast<std::uint16_t>(port));
                });
            points.push_back({0, 0, result, {}});
            std::printf("%zu session(s) x %zu events: %zu events in %.2fs — "
                        "%.0f events/s, %llu alarms%s\n",
                        spec.sessions, spec.events_per_session,
                        result.total_events, result.seconds,
                        result.events_per_sec(),
                        static_cast<unsigned long long>(result.total_alarms),
                        spec.verify ? " (verified bit-identical)" : "");
            print_latency_summary(result);
            for (const auto& error : result.errors) {
                std::fprintf(stderr, "adiv_loadgen: %s\n", error.c_str());
                failed = true;
            }
            if (const std::string scrape_port = cli.get("scrape-http");
                !scrape_port.empty()) {
                const std::vector<std::string> http_errors = scrape_http_check(
                    host, static_cast<std::uint16_t>(std::stoul(scrape_port)));
                for (const auto& error : http_errors) {
                    std::fprintf(stderr, "adiv_loadgen: %s\n", error.c_str());
                    failed = true;
                }
                if (http_errors.empty())
                    std::printf("GET /metrics on port %s: valid OpenMetrics\n",
                                scrape_port.c_str());
            }
        }

        if (const std::string out = cli.get("out"); !out.empty()) {
            JsonWriter w;
            w.begin_object();
            w.key("benchmark").value("serve_throughput");
            w.key("mode").value(sweep.empty() ? "tcp" : "loopback_sweep");
            w.key("sessions").value(static_cast<std::uint64_t>(spec.sessions));
            w.key("events_per_session")
                .value(static_cast<std::uint64_t>(spec.events_per_session));
            w.key("batch").value(static_cast<std::uint64_t>(spec.batch));
            w.key("verified").value(spec.verify && !failed);
            w.key("results").begin_array();
            for (const auto& point : points) {
                w.begin_object();
                if (!sweep.empty()) {
                    w.key("jobs").value(
                        static_cast<std::uint64_t>(point.jobs_requested));
                    w.key("workers").value(
                        static_cast<std::uint64_t>(point.jobs_resolved));
                }
                w.key("total_events")
                    .value(static_cast<std::uint64_t>(point.result.total_events));
                w.key("seconds").value(point.result.seconds);
                w.key("events_per_sec").value(point.result.events_per_sec());
                w.key("alarms").value(point.result.total_alarms);
                w.key("errors")
                    .value(static_cast<std::uint64_t>(point.result.errors.size()));
                write_latency_json(w, point.result);
                w.end_object();
            }
            w.end_array();
            w.end_object();
            std::ofstream file(out);
            require_data(file.good(), "cannot open '" + out + "'");
            file << w.str() << '\n';
            std::printf("results written to %s\n", out.c_str());
        }

        if (const std::string hotpath = cli.get("hotpath-out");
            !hotpath.empty()) {
            // The busiest point (most workers; ties to the later point)
            // delivers the headline verdict: where the hot path waits.
            const SweepPoint* busiest = nullptr;
            for (const auto& point : points)
                if (busiest == nullptr ||
                    point.jobs_resolved >= busiest->jobs_resolved)
                    busiest = &point;
            JsonWriter w;
            w.begin_object();
            w.key("benchmark").value("serve_hotpath");
            w.key("sessions").value(static_cast<std::uint64_t>(spec.sessions));
            w.key("events_per_session")
                .value(static_cast<std::uint64_t>(spec.events_per_session));
            w.key("batch").value(static_cast<std::uint64_t>(spec.batch));
            w.key("profile_sample_every")
                .value(static_cast<std::uint64_t>(
                    cli.get_int("profile-sample")));
            w.key("results").begin_array();
            for (const auto& point : points) {
                w.begin_object();
                w.key("jobs").value(
                    static_cast<std::uint64_t>(point.jobs_requested));
                w.key("workers").value(
                    static_cast<std::uint64_t>(point.jobs_resolved));
                w.key("events_per_sec").value(point.result.events_per_sec());
                w.key("stage_samples").value(point.profile.stage_samples);
                w.key("stages").begin_object();
                for (const char* stage : kStageNames) {
                    const auto it = point.profile.stages.find(stage);
                    if (it == point.profile.stages.end()) continue;
                    const HistogramSummary& s = it->second;
                    w.key(stage).begin_object();
                    w.key("count").value(s.count);
                    w.key("mean_us").value(s.mean);
                    w.key("p50_us").value(s.p50);
                    w.key("p95_us").value(s.p95);
                    w.key("p99_us").value(s.p99);
                    w.key("max_us").value(s.max);
                    w.end_object();
                }
                w.end_object();
                w.key("wait_sites").begin_array();
                for (const WaitSiteSummary& site : point.profile.sites) {
                    w.begin_object();
                    w.key("site").value(site.name);
                    w.key("kind").value(to_string(site.kind));
                    w.key("acquires").value(site.acquires);
                    w.key("contended").value(site.contended);
                    w.key("wait_us_total").value(site.wait_us_total);
                    w.key("wait_us_mean").value(site.wait_us_mean);
                    w.key("wait_us_p95").value(site.wait_us_p95);
                    w.key("wait_us_max").value(site.wait_us_max);
                    w.end_object();
                }
                w.end_array();
                w.key("dominant_wait_site").value(point.profile.dominant_site);
                w.end_object();
            }
            w.end_array();
            w.key("dominant_wait_site")
                .value(busiest != nullptr ? busiest->profile.dominant_site
                                          : std::string());
            w.end_object();
            std::ofstream file(hotpath);
            require_data(file.good(), "cannot open '" + hotpath + "'");
            file << w.str() << '\n';
            std::printf("hotpath profile written to %s\n", hotpath.c_str());
        }
        return failed ? 1 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_loadgen: %s\n", e.what());
        return 1;
    }
}
