// adiv_lint: the in-tree invariant linter.
//
//   tools/adiv_lint [--json] [--rules r1,r2] [--list-rules] [root]
//
// Scans src/**/*.{hpp,cpp} and tools/*.cpp under the repository root
// (default: the current directory) for violations of the project invariants
// documented in src/lint/rules.hpp. Exit status: 0 clean, 1 findings,
// 2 usage or scan error. `--json` writes a single machine-readable object;
// the default output is one `file:line: [rule] message` line per finding.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint/scan.hpp"
#include "obs/json.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--rules r1,r2] [--list-rules] [root]\n",
                 argv0);
    return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
    std::vector<std::string> out;
    std::string name;
    for (const char c : csv + ",") {
        if (c == ',') {
            if (!name.empty()) out.push_back(name);
            name.clear();
        } else {
            name += c;
        }
    }
    return out;
}

std::string findings_json(const std::vector<adiv::lint::Finding>& findings,
                          std::size_t files_scanned) {
    adiv::JsonWriter w;
    w.begin_object();
    w.key("tool").value("adiv_lint");
    w.key("files_scanned").value(static_cast<std::uint64_t>(files_scanned));
    w.key("clean").value(findings.empty());
    w.key("findings").begin_array();
    for (const adiv::lint::Finding& finding : findings) {
        w.begin_object();
        w.key("rule").value(finding.rule);
        w.key("file").value(finding.file);
        w.key("line").value(static_cast<std::uint64_t>(finding.line));
        w.key("message").value(finding.message);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    adiv::lint::LintOptions options;
    std::string root = ".";
    bool have_root = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const std::string& rule : adiv::lint::rule_names())
                std::printf("%s\n", rule.c_str());
            return 0;
        } else if (arg == "--rules") {
            if (++i >= argc) return usage(argv[0]);
            options.rules = split_csv(argv[i]);
        } else if (arg.rfind("--rules=", 0) == 0) {
            options.rules = split_csv(arg.substr(8));
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (!have_root) {
            root = arg;
            have_root = true;
        } else {
            return usage(argv[0]);
        }
    }

    try {
        const std::vector<adiv::lint::SourceFile> sources =
            adiv::lint::collect_tree_sources(root);
        const std::vector<adiv::lint::Finding> findings =
            adiv::lint::run_lint(sources, options);
        if (json) {
            std::printf("%s\n", findings_json(findings, sources.size()).c_str());
        } else {
            for (const adiv::lint::Finding& finding : findings)
                std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(),
                            finding.line, finding.rule.c_str(),
                            finding.message.c_str());
            std::printf("adiv_lint: %zu finding(s) in %zu file(s) scanned\n",
                        findings.size(), sources.size());
        }
        return findings.empty() ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "adiv_lint: %s\n", error.what());
        return 2;
    }
}
