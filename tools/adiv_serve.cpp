// adiv_serve: the long-lived detection daemon.
//
//   adiv_serve --model monitor.adiv --port 7007
//   adiv_serve --detector stide --dw 6 --input server.trace --port 0
//
// Loads (or trains) a detector once, then serves the adiv_serve wire
// protocol (src/serve/protocol.hpp) on 127.0.0.1: clients OPEN a session,
// PUSH events through a per-session OnlineScorer, and receive one response
// per completed window — plus STATS / DRAIN / CLOSE. The model is shared
// read-only across all sessions; scoring runs on a bounded worker pool
// (--jobs) with per-session response ordering.
//
// --port 0 binds an ephemeral port; the actual port is printed on the
// "listening" line (and is what scripts should parse). SIGINT/SIGTERM
// trigger a graceful drain: queued requests finish, responses flush,
// connections close, exit 0.
//
// --metrics-port N additionally serves `GET /metrics` (plain HTTP/1.0,
// OpenMetrics text) on a second port for Prometheus-style scrapers; the
// bound port is printed on its own "metrics on" line. The same exposition
// is available in-protocol via the METRICS verb on the main port.
//
// --model registers the file's detector as "default" and "<name>/<DW>".
// --detector KIND --dw N trains on --input (a trace/stream file) or, when
// --input is absent, on a freshly generated paper corpus (--training-length
// events). Several sessions can then OPEN "default" or the specific name.
//
// --profile turns on the hot-path contention instrumentation (requires an
// ADIV_PROFILE build): serve.stage.* histograms and wait-site counters flow
// through --metrics / the METRICS verb, sampled per-event `event_stage`
// lines (1-in---profile-sample PUSHes) and a final `wait_site` digest land
// in the --trace stream for `adiv_traceview --contention`. --dump-on-signal
// makes SIGUSR1 print every session's flight-recorder ring (last --flight
// events each) to stderr without disturbing the run.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>

#include "adiv.hpp"

using namespace adiv;

namespace {
std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump{false};
void handle_stop_signal(int) { g_stop.store(true); }
void handle_dump_signal(int) { g_dump.store(true); }
}  // namespace

int main(int argc, char** argv) {
    CliParser cli("adiv_serve", "serve online anomaly detection over TCP");
    cli.add_option("model", "", "trained model file (from adiv_train)");
    cli.add_option("detector", "",
                   "train this kind instead of loading --model: stide | t-stide "
                   "| markov | lane-brodley | neural-net | hmm | rule | "
                   "lookahead-pairs");
    cli.add_option("dw", "6", "detector window for --detector");
    cli.add_option("input", "",
                   "training trace/stream for --detector (default: generated "
                   "paper corpus)");
    cli.add_option("training-length", "200000",
                   "generated-corpus length for --detector without --input");
    cli.add_option("port", "0", "listen port on 127.0.0.1 (0 = ephemeral)");
    cli.add_option("metrics-port", "",
                   "also serve HTTP GET /metrics (OpenMetrics) on this "
                   "127.0.0.1 port (0 = ephemeral; empty = off)");
    cli.add_option("jobs", "0", "scoring worker threads (0 = hardware)");
    cli.add_option("queue", "256",
                   "backpressure bound: pool queue and per-connection inbox");
    cli.add_option("buffer", "0", "per-session scorer buffer (0 = 4*DW)");
    cli.add_flag("allow-paths", "let OPEN name model files on disk");
    cli.add_flag("profile",
                 "enable wait-site and per-event stage profiling "
                 "(ADIV_PROFILE builds)");
    cli.add_option("profile-sample", "64",
                   "emit one event_stage trace line per N PUSHes under "
                   "--profile (0 = none)");
    cli.add_option("flight", "64",
                   "per-session flight-recorder capacity (last K events)");
    cli.add_flag("dump-on-signal",
                 "print all flight recorders to stderr on SIGUSR1");
    add_observability_options(cli);
    try {
        if (!cli.parse(argc, argv)) return 0;

        serve::ServerConfig config;
        config.jobs = resolve_jobs(static_cast<std::size_t>(cli.get_int("jobs")));
        config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
        config.scorer_buffer = static_cast<std::size_t>(cli.get_int("buffer"));
        config.allow_model_paths = cli.get_flag("allow-paths");
        config.flight_capacity = static_cast<std::size_t>(cli.get_int("flight"));
        config.profile_sample_every =
            static_cast<std::uint64_t>(cli.get_int("profile-sample"));
        const bool profile = cli.get_flag("profile");
        if (profile) {
            require(profiling_compiled(),
                    "--profile needs an ADIV_PROFILE build (reconfigure with "
                    "-DADIV_PROFILE=ON)");
            set_profiling_enabled(true);
        }

        std::shared_ptr<const SequenceDetector> model;
        if (const std::string path = cli.get("model"); !path.empty()) {
            model = load_detector_file(path);
        } else {
            const std::string kind_name = cli.get("detector");
            require(!kind_name.empty(), "--model or --detector is required");
            const std::size_t dw = static_cast<std::size_t>(cli.get_int("dw"));
            auto detector = make_detector(detector_kind_from_string(kind_name), dw);
            if (const std::string input = cli.get("input"); !input.empty()) {
                std::ifstream probe(input);
                require_data(probe.good(), "cannot open '" + input + "'");
                std::string tag;
                probe >> tag;
                detector->train(tag == "adiv-trace" ? load_trace_file(input).second
                                                    : load_stream_file(input));
            } else {
                CorpusSpec spec;
                spec.training_length =
                    static_cast<std::size_t>(cli.get_int("training-length"));
                detector->train(TrainingCorpus::generate(spec).training());
            }
            model = std::move(detector);
        }
        const std::string model_name =
            model->name() + "/" + std::to_string(model->window_length());

        RunManifest manifest = make_manifest("adiv_serve");
        manifest.detector = model->name();
        manifest.alphabet_size = model->alphabet_size();
        manifest.min_window = manifest.max_window = model->window_length();
        ObsSession obs(cli, std::move(manifest));

        serve::Server server(config);
        server.add_model(model_name, model);

        serve::TcpListener listener(
            static_cast<std::uint16_t>(cli.get_int("port")));
        std::unique_ptr<serve::HttpMetricsListener> scrape;
        if (!cli.get("metrics-port").empty()) {
            scrape = std::make_unique<serve::HttpMetricsListener>(
                static_cast<std::uint16_t>(cli.get_int("metrics-port")));
            std::printf("adiv_serve: metrics on 127.0.0.1:%u\n",
                        static_cast<unsigned>(scrape->port()));
        }
        std::signal(SIGINT, handle_stop_signal);
        std::signal(SIGTERM, handle_stop_signal);
        const bool dump_on_signal = cli.get_flag("dump-on-signal");
        if (dump_on_signal) std::signal(SIGUSR1, handle_dump_signal);
        std::printf("adiv_serve: listening on 127.0.0.1:%u (model=%s, jobs=%zu, "
                    "queue=%zu)\n",
                    static_cast<unsigned>(listener.port()), model_name.c_str(),
                    config.jobs, config.queue_capacity);
        std::fflush(stdout);

        // The stop callback runs on the accept loop, not in the signal
        // handler, so it may safely walk the session table and write stderr.
        server.serve(listener, [&server, dump_on_signal] {
            if (dump_on_signal && g_dump.exchange(false)) {
                std::fputs(server.dump_flight_records().c_str(), stderr);
                std::fflush(stderr);
            }
            return g_stop.load();
        });
        listener.close();
        if (scrape) scrape->stop();
        server.shutdown();
        if (const auto sink = global_trace_sink(); profile && sink->enabled())
            global_wait_sites().write_jsonl(*sink);
        std::printf("adiv_serve: drained; %zu connection(s) served\n",
                    server.connections_accepted());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_serve: %s\n", e.what());
        return 1;
    }
}
