// adiv_train: fit a detector on a trace file and persist the model.
//
//   adiv_train --detector markov --window 6 --input server.trace --out m.adiv
//
// The input file is either an `adiv-trace` (named symbols) or `adiv-stream`
// (raw ids) file; see io/stream_io.hpp. Use --demo-trace to write a sample
// trace to experiment with.
//
// Observability: --trace PATH streams JSON-lines spans (manifest first line,
// then the detect.train span), --metrics PATH dumps the final metrics
// (human table to stdout, machine JSON to PATH; '-' = stdout).
#include <cstdio>
#include <fstream>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("adiv_train", "train a detector on a trace and save the model");
    cli.add_option("detector", "markov",
                   "stide | t-stide | markov | lane-brodley | neural-net | hmm "
                   "| rule | lookahead-pairs");
    cli.add_option("window", "6", "detector window (DW)");
    cli.add_option("input", "", "input adiv-trace or adiv-stream file");
    cli.add_option("out", "model.adiv", "output model path");
    cli.add_option("floor", "0.005", "probability floor (probabilistic kinds)");
    cli.add_option("demo-trace", "",
                   "write a 100k-event demo syscall trace to PATH and exit");
    add_observability_options(cli);
    try {
        if (!cli.parse(argc, argv)) return 0;

        if (const std::string demo = cli.get("demo-trace"); !demo.empty()) {
            const TraceModel model = make_syscall_model();
            save_trace_file(model.alphabet(), model.generate(100'000, 1), demo);
            std::printf("wrote demo trace to %s\n", demo.c_str());
            return 0;
        }

        const std::string input_path = cli.get("input");
        require(!input_path.empty(), "--input is required (or use --demo-trace)");

        // Accept either file format: peek the header tag.
        EventStream training;
        {
            std::ifstream probe(input_path);
            require_data(probe.good(), "cannot open '" + input_path + "'");
            std::string tag;
            probe >> tag;
            if (tag == "adiv-trace") {
                training = load_trace_file(input_path).second;
            } else {
                training = load_stream_file(input_path);
            }
        }
        std::printf("training data: %zu events, alphabet %zu\n", training.size(),
                    training.alphabet_size());

        DetectorSettings settings;
        settings.markov.probability_floor = cli.get_double("floor");
        settings.nn.probability_floor = cli.get_double("floor");
        settings.hmm.probability_floor = cli.get_double("floor");
        settings.rule.probability_floor = cli.get_double("floor");
        const std::size_t window = static_cast<std::size_t>(cli.get_int("window"));
        auto detector = instrument(make_detector(
            detector_kind_from_string(cli.get("detector")), window, settings));

        RunManifest manifest = make_manifest("adiv_train");
        manifest.detector = detector->name();
        manifest.alphabet_size = training.alphabet_size();
        manifest.training_length = training.size();
        manifest.min_window = manifest.max_window = window;
        ObsSession obs(cli, std::move(manifest));

        Stopwatch sw;
        detector->train(training);
        save_detector_file(*detector, cli.get("out"));
        std::printf("trained %s (DW=%zu) in %.2fs; model saved to %s\n",
                    detector->name().c_str(), detector->window_length(),
                    sw.seconds(), cli.get("out").c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_train: %s\n", e.what());
        return 1;
    }
}
