// adiv_score: score a trace file with a persisted model and print the alarm
// report.
//
//   adiv_score --model m.adiv --input session.trace [--threshold 1.0]
//   tail -f events | adiv_score --model m.adiv --input - --framed
//
// Scoring runs through the online scorer (core/online.hpp) in batches, the
// deployment-facing path: identical to batch score() for the window-local
// detectors, bounded-horizon for the HMM.
//
// --input - streams stdin through the scorer one event at a time: an
// adiv-stream / adiv-trace document, or bare whitespace-separated symbol ids
// (no header, unbounded — the tail -f case). Responses are emitted as they
// are produced.
//
// --framed emits responses as adiv_serve SCORES frames (serve/protocol.hpp)
// on stdout instead of the CSV/report, so scored output composes with
// anything that speaks the serve wire format; the summary moves to stderr.
//
// --jobs N scores window-local detectors in parallel: the stream is split
// into chunks overlapping by DW-1 elements, each chunk is scored on a worker
// thread, and the responses are spliced back by window position — bit-equal
// to the serial pass. Detectors that condition on the whole prefix (the HMM)
// ignore --jobs and score serially, as does --input - (the stream has no
// end to split at).
//
// Observability: --trace PATH streams JSON-lines spans — the run manifest
// first, then one score.batch span per window batch with the instrumented
// detect.score spans nested inside. --metrics PATH dumps the final metrics
// (online.events_consumed, online.push_latency_us percentiles,
// online.alarm_rate, ...) as a human table on stdout and machine JSON to
// PATH ('-' = stdout).
//
// Exit status: 0 when no alarms fire, 2 when at least one alarm event fires
// (scriptable), 1 on errors.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>

#include "adiv.hpp"
#include "util/text_serial.hpp"

using namespace adiv;

namespace {

/// One SCORES frame on stdout, the serve wire format.
void write_scores_frame(const double* data, std::size_t count) {
    serve::Response response;
    response.type = serve::ResponseType::Scores;
    response.scores.assign(data, data + count);
    const std::string frame = serve::encode_frame(serve::serialize(response));
    std::fwrite(frame.data(), 1, frame.size(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("adiv_score", "score a trace with a saved model");
    cli.add_option("model", "model.adiv", "model file from adiv_train");
    cli.add_option("input", "",
                   "input adiv-trace or adiv-stream file, or - for stdin "
                   "(also accepts bare symbol ids)");
    cli.add_option("threshold", "0.999999999",
                   "alarm when response >= threshold (1.0 = maximal only)");
    cli.add_option("batch", "1024", "events per scored window batch (trace span)");
    cli.add_option("jobs", "0",
                   "scoring worker threads (0 = hardware concurrency); "
                   "responses are identical for any value");
    cli.add_flag("csv", "emit per-window responses as CSV instead of a report");
    cli.add_flag("framed",
                 "emit responses as adiv_serve SCORES frames on stdout");
    add_observability_options(cli);
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::string input_path = cli.get("input");
        require(!input_path.empty(), "--input is required");
        const std::size_t batch_size =
            static_cast<std::size_t>(cli.get_int("batch"));
        require(batch_size >= 1, "--batch must be at least 1");
        const bool framed = cli.get_flag("framed");
        const bool csv = cli.get_flag("csv");
        const bool from_stdin = input_path == "-";

        const auto detector = instrument(load_detector_file(cli.get("model")));
        std::fprintf(framed ? stderr : stdout,
                     "# model: %s, DW=%zu, alphabet=%zu\n",
                     detector->name().c_str(), detector->window_length(),
                     detector->alphabet_size());

        RunManifest manifest = make_manifest("adiv_score");
        manifest.detector = detector->name();
        manifest.alphabet_size = detector->alphabet_size();
        manifest.min_window = manifest.max_window = detector->window_length();
        ObsSession obs(cli, std::move(manifest));

        std::vector<double> responses;
        EventStream test(detector->alphabet_size());
        std::optional<Alphabet> alphabet;
        bool streamed_output = false;  // responses already emitted on the fly

        if (from_stdin) {
            // Streaming path: one event at a time through the online scorer,
            // responses emitted as produced. Three input shapes, told apart
            // by the first token: a tagged document (header gives alphabet
            // and length) or bare symbol ids until EOF.
            std::istream& in = std::cin;
            std::string tag;
            require_data(static_cast<bool>(in >> tag), "stdin is empty");
            std::size_t alphabet_size = detector->alphabet_size();
            std::size_t remaining = std::numeric_limits<std::size_t>::max();
            bool bounded = false;
            std::optional<Symbol> first;
            if (tag == "adiv-stream" || tag == "adiv-trace") {
                const std::uint64_t version = read_u64(in, "format version");
                require_data(version == 1, "unsupported " + tag +
                                               " format version " +
                                               std::to_string(version));
                alphabet_size = read_size(in, "alphabet size");
                remaining = read_size(in, "stream length");
                bounded = true;
                if (tag == "adiv-trace") {
                    std::vector<std::string> names;
                    names.reserve(alphabet_size);
                    for (std::size_t i = 0; i < alphabet_size; ++i)
                        names.push_back(read_token(in, "alphabet name"));
                    alphabet.emplace(names);
                }
            } else {
                std::uint64_t id = 0;
                const auto [end, ec] =
                    std::from_chars(tag.data(), tag.data() + tag.size(), id);
                require_data(ec == std::errc{} && end == tag.data() + tag.size(),
                             "unrecognized stdin input: expected adiv-stream, "
                             "adiv-trace, or bare symbol ids (got '" +
                                 tag + "')");
                first = static_cast<Symbol>(id);
            }

            const bool keep_events = !framed && !csv;  // report needs them
            test = EventStream(alphabet_size);
            OnlineScorer scorer(*detector);
            std::vector<double> pending;  // frames batched per --batch
            streamed_output = framed || csv;
            if (csv) std::printf("window,response\n");
            auto consume = [&](Symbol event) {
                if (keep_events) test.push_back(event);
                if (const auto response = scorer.push(event)) {
                    responses.push_back(*response);
                    if (framed) {
                        pending.push_back(*response);
                        if (pending.size() >= batch_size) {
                            write_scores_frame(pending.data(), pending.size());
                            pending.clear();
                        }
                    } else if (csv) {
                        std::printf("%zu,%.9f\n", responses.size() - 1,
                                    *response);
                    }
                }
            };
            if (first) consume(*first);
            std::string token;
            while (remaining > 0 && (in >> token)) {
                if (alphabet) {
                    consume(alphabet->id(token));
                } else {
                    std::uint64_t id = 0;
                    const auto [end, ec] = std::from_chars(
                        token.data(), token.data() + token.size(), id);
                    require_data(
                        ec == std::errc{} && end == token.data() + token.size(),
                        "'" + token + "' is not a symbol id");
                    consume(static_cast<Symbol>(id));
                }
                if (bounded) --remaining;
            }
            require_data(!bounded || remaining == 0,
                         "stdin ended " + std::to_string(remaining) +
                             " event(s) before the declared length");
            if (framed && !pending.empty())
                write_scores_frame(pending.data(), pending.size());
        } else {
            {
                std::ifstream probe(input_path);
                require_data(probe.good(), "cannot open '" + input_path + "'");
                std::string tag;
                probe >> tag;
                if (tag == "adiv-trace") {
                    auto [names, stream] = load_trace_file(input_path);
                    alphabet.emplace(std::move(names));
                    test = std::move(stream);
                } else {
                    test = load_stream_file(input_path);
                }
            }

            const std::size_t jobs =
                resolve_jobs(static_cast<std::size_t>(cli.get_int("jobs")));
            const std::size_t dw = detector->window_length();
            const std::size_t windows = test.window_count(dw);
            if (jobs > 1 && detector->window_local() && windows >= 2 * jobs) {
                // Parallel path: overlapping chunks, responses spliced by
                // window position. window_local() guarantees chunk seams
                // change nothing.
                responses.resize(windows);
                const std::size_t chunk_windows = (windows + jobs - 1) / jobs;
                ThreadPool pool(jobs);
                TaskGroup group(pool);
                for (std::size_t w0 = 0; w0 < windows; w0 += chunk_windows) {
                    const std::size_t count = std::min(chunk_windows, windows - w0);
                    group.run([&, w0, count] {
                        TraceSpan chunk_span("score.chunk");
                        chunk_span.attr("first_window", static_cast<std::uint64_t>(w0))
                            .attr("windows", static_cast<std::uint64_t>(count));
                        const EventStream chunk = test.slice(w0, count + dw - 1);
                        const std::vector<double> scores = detector->score(chunk);
                        std::copy(scores.begin(), scores.end(),
                                  responses.begin() + static_cast<std::ptrdiff_t>(w0));
                    });
                }
                group.wait();
            } else {
                OnlineScorer scorer(*detector);
                responses.reserve(windows);
                const Sequence& events_in = test.events();
                for (std::size_t start = 0; start < events_in.size(); start += batch_size) {
                    const std::size_t end = std::min(events_in.size(), start + batch_size);
                    TraceSpan batch_span("score.batch");
                    batch_span.attr("batch", static_cast<std::uint64_t>(start / batch_size))
                        .attr("events", static_cast<std::uint64_t>(end - start));
                    for (std::size_t i = start; i < end; ++i)
                        if (const auto response = scorer.push(events_in[i]))
                            responses.push_back(*response);
                    batch_span.attr("windows_scored",
                                    static_cast<std::uint64_t>(responses.size()));
                }
            }
        }

        if (framed) {
            if (!streamed_output)
                for (std::size_t pos = 0; pos < responses.size(); pos += batch_size)
                    write_scores_frame(
                        responses.data() + pos,
                        std::min(batch_size, responses.size() - pos));
            std::fflush(stdout);
            const auto events =
                extract_alarm_events(responses, cli.get_double("threshold"));
            std::fprintf(stderr, "# %zu alarm event(s) over %zu windows\n",
                         events.size(), responses.size());
            return events.empty() ? 0 : 2;
        }
        if (csv) {
            if (!streamed_output) {
                std::printf("window,response\n");
                for (std::size_t i = 0; i < responses.size(); ++i)
                    std::printf("%zu,%.9f\n", i, responses[i]);
            }
            return 0;
        }
        const auto events =
            extract_alarm_events(responses, cli.get_double("threshold"));
        std::printf("%s", render_alarm_report(
                              events, &test, detector->window_length(),
                              alphabet ? &*alphabet : nullptr)
                              .c_str());
        std::printf("# %zu alarm event(s) over %zu windows\n", events.size(),
                    responses.size());
        return events.empty() ? 0 : 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_score: %s\n", e.what());
        return 1;
    }
}
