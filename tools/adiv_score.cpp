// adiv_score: score a trace file with a persisted model and print the alarm
// report.
//
//   adiv_score --model m.adiv --input session.trace [--threshold 1.0]
//
// Scoring runs through the online scorer (core/online.hpp) in batches, the
// deployment-facing path: identical to batch score() for the window-local
// detectors, bounded-horizon for the HMM.
//
// --jobs N scores window-local detectors in parallel: the stream is split
// into chunks overlapping by DW-1 elements, each chunk is scored on a worker
// thread, and the responses are spliced back by window position — bit-equal
// to the serial pass. Detectors that condition on the whole prefix (the HMM)
// ignore --jobs and score serially.
//
// Observability: --trace PATH streams JSON-lines spans — the run manifest
// first, then one score.batch span per window batch with the instrumented
// detect.score spans nested inside. --metrics PATH dumps the final metrics
// (online.events_consumed, online.push_latency_us percentiles,
// online.alarm_rate, ...) as a human table on stdout and machine JSON to
// PATH ('-' = stdout).
//
// Exit status: 0 when no alarms fire, 2 when at least one alarm event fires
// (scriptable), 1 on errors.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("adiv_score", "score a trace with a saved model");
    cli.add_option("model", "model.adiv", "model file from adiv_train");
    cli.add_option("input", "", "input adiv-trace or adiv-stream file");
    cli.add_option("threshold", "0.999999999",
                   "alarm when response >= threshold (1.0 = maximal only)");
    cli.add_option("batch", "1024", "events per scored window batch (trace span)");
    cli.add_option("jobs", "0",
                   "scoring worker threads (0 = hardware concurrency); "
                   "responses are identical for any value");
    cli.add_flag("csv", "emit per-window responses as CSV instead of a report");
    add_observability_options(cli);
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::string input_path = cli.get("input");
        require(!input_path.empty(), "--input is required");
        const std::size_t batch_size =
            static_cast<std::size_t>(cli.get_int("batch"));
        require(batch_size >= 1, "--batch must be at least 1");

        const auto detector = instrument(load_detector_file(cli.get("model")));
        std::printf("# model: %s, DW=%zu, alphabet=%zu\n",
                    detector->name().c_str(), detector->window_length(),
                    detector->alphabet_size());

        EventStream test;
        std::optional<Alphabet> alphabet;
        {
            std::ifstream probe(input_path);
            require_data(probe.good(), "cannot open '" + input_path + "'");
            std::string tag;
            probe >> tag;
            if (tag == "adiv-trace") {
                auto [names, stream] = load_trace_file(input_path);
                alphabet.emplace(std::move(names));
                test = std::move(stream);
            } else {
                test = load_stream_file(input_path);
            }
        }

        RunManifest manifest = make_manifest("adiv_score");
        manifest.detector = detector->name();
        manifest.alphabet_size = detector->alphabet_size();
        manifest.min_window = manifest.max_window = detector->window_length();
        ObsSession obs(cli, std::move(manifest));

        const std::size_t jobs =
            resolve_jobs(static_cast<std::size_t>(cli.get_int("jobs")));
        const std::size_t dw = detector->window_length();
        const std::size_t windows = test.window_count(dw);
        std::vector<double> responses;
        if (jobs > 1 && detector->window_local() && windows >= 2 * jobs) {
            // Parallel path: overlapping chunks, responses spliced by window
            // position. window_local() guarantees chunk seams change nothing.
            responses.resize(windows);
            const std::size_t chunk_windows = (windows + jobs - 1) / jobs;
            ThreadPool pool(jobs);
            TaskGroup group(pool);
            for (std::size_t w0 = 0; w0 < windows; w0 += chunk_windows) {
                const std::size_t count = std::min(chunk_windows, windows - w0);
                group.run([&, w0, count] {
                    TraceSpan chunk_span("score.chunk");
                    chunk_span.attr("first_window", static_cast<std::uint64_t>(w0))
                        .attr("windows", static_cast<std::uint64_t>(count));
                    const EventStream chunk = test.slice(w0, count + dw - 1);
                    const std::vector<double> scores = detector->score(chunk);
                    std::copy(scores.begin(), scores.end(),
                              responses.begin() + static_cast<std::ptrdiff_t>(w0));
                });
            }
            group.wait();
        } else {
            OnlineScorer scorer(*detector);
            responses.reserve(windows);
            const Sequence& events_in = test.events();
            for (std::size_t start = 0; start < events_in.size(); start += batch_size) {
                const std::size_t end = std::min(events_in.size(), start + batch_size);
                TraceSpan batch_span("score.batch");
                batch_span.attr("batch", static_cast<std::uint64_t>(start / batch_size))
                    .attr("events", static_cast<std::uint64_t>(end - start));
                for (std::size_t i = start; i < end; ++i)
                    if (const auto response = scorer.push(events_in[i]))
                        responses.push_back(*response);
                batch_span.attr("windows_scored",
                                static_cast<std::uint64_t>(responses.size()));
            }
        }

        if (cli.get_flag("csv")) {
            std::printf("window,response\n");
            for (std::size_t i = 0; i < responses.size(); ++i)
                std::printf("%zu,%.9f\n", i, responses[i]);
            return 0;
        }
        const auto events =
            extract_alarm_events(responses, cli.get_double("threshold"));
        std::printf("%s", render_alarm_report(
                              events, &test, detector->window_length(),
                              alphabet ? &*alphabet : nullptr)
                              .c_str());
        std::printf("# %zu alarm event(s) over %zu windows\n", events.size(),
                    responses.size());
        return events.empty() ? 0 : 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_score: %s\n", e.what());
        return 1;
    }
}
