// adiv_score: score a trace file with a persisted model and print the alarm
// report.
//
//   adiv_score --model m.adiv --trace session.trace [--threshold 1.0]
//
// Exit status: 0 when no alarms fire, 2 when at least one alarm event fires
// (scriptable), 1 on errors.
#include <cstdio>
#include <fstream>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("adiv_score", "score a trace with a saved model");
    cli.add_option("model", "model.adiv", "model file from adiv_train");
    cli.add_option("trace", "", "input adiv-trace or adiv-stream file");
    cli.add_option("threshold", "0.999999999",
                   "alarm when response >= threshold (1.0 = maximal only)");
    cli.add_flag("csv", "emit per-window responses as CSV instead of a report");
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::string trace_path = cli.get("trace");
        require(!trace_path.empty(), "--trace is required");

        const auto detector = load_detector_file(cli.get("model"));
        std::printf("# model: %s, DW=%zu, alphabet=%zu\n",
                    detector->name().c_str(), detector->window_length(),
                    detector->alphabet_size());

        EventStream test;
        std::optional<Alphabet> alphabet;
        {
            std::ifstream probe(trace_path);
            require_data(probe.good(), "cannot open '" + trace_path + "'");
            std::string tag;
            probe >> tag;
            if (tag == "adiv-trace") {
                auto [names, stream] = load_trace_file(trace_path);
                alphabet.emplace(std::move(names));
                test = std::move(stream);
            } else {
                test = load_stream_file(trace_path);
            }
        }

        const auto responses = detector->score(test);
        if (cli.get_flag("csv")) {
            std::printf("window,response\n");
            for (std::size_t i = 0; i < responses.size(); ++i)
                std::printf("%zu,%.9f\n", i, responses[i]);
            return 0;
        }
        const auto events =
            extract_alarm_events(responses, cli.get_double("threshold"));
        std::printf("%s", render_alarm_report(
                              events, &test, detector->window_length(),
                              alphabet ? &*alphabet : nullptr)
                              .c_str());
        std::printf("# %zu alarm event(s) over %zu windows\n", events.size(),
                    responses.size());
        return events.empty() ? 0 : 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adiv_score: %s\n", e.what());
        return 1;
    }
}
