// Ablation: neural-network hyper-parameter sensitivity (Section 7).
//
// "It is common knowledge that the performance of a multi-layer,
// feed-forward network relies on a balance of parameter values, e.g., the
// learning constant, the number of hidden nodes, and the momentum constant.
// Some combinations of these values may result in weakened anomaly signals."
//
// This harness sweeps those parameters and reports the NN detector's map
// coverage: well-tuned settings reproduce the Markov-like full coverage of
// Figure 6; starved or undertrained networks degrade to weak responses.
// The grid here uses a reduced window range to keep the sweep tractable.
#include <cstdio>
#include <iostream>
#include <iterator>

#include "common.hpp"
#include "detect/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    CliParser cli(argv[0], "Ablation: NN hyper-parameter sensitivity");
    bench::add_common_options(cli);
    if (!cli.parse(argc, argv)) return 0;
    auto base = bench::make_context(cli, /*build_suite=*/false);

    // Reduced grid: the sweep trains one network per (config, window).
    SuiteConfig cfg = base.suite_config;
    cfg.max_window = std::min<std::size_t>(cfg.max_window, 8);
    const EvaluationSuite suite = EvaluationSuite::build(*base.corpus, cfg);
    std::printf("# sweep grid: AS %zu..%zu x DW %zu..%zu\n",
                cfg.min_anomaly_size, cfg.max_anomaly_size, cfg.min_window,
                cfg.max_window);

    struct Variant {
        const char* label;
        std::size_t hidden;
        std::size_t epochs;
        double lr;
        double momentum;
    };
    const Variant variants[] = {
        {"tuned (hidden=16, epochs=400, lr=0.5, mom=0.9)", 16, 400, 0.5, 0.9},
        {"fewer hidden units (hidden=4)", 4, 400, 0.5, 0.9},
        {"starved capacity (hidden=1)", 1, 400, 0.5, 0.9},
        {"undertrained (epochs=20)", 16, 20, 0.5, 0.9},
        {"timid learning (lr=0.01, mom=0)", 16, 400, 0.01, 0.0},
        {"no momentum (mom=0)", 16, 400, 0.5, 0.0},
    };

    bench::banner("NN detector map coverage per hyper-parameter setting");
    // One plan, one detector per hyper-parameter variant; --jobs trains the
    // networks of different (variant, window) columns concurrently.
    ExperimentPlan plan(suite);
    for (const Variant& v : variants) {
        DetectorSettings settings;
        settings.nn.hidden_units = v.hidden;
        settings.nn.epochs = v.epochs;
        settings.nn.learning_rate = v.lr;
        settings.nn.momentum = v.momentum;
        plan.add_detector(v.label,
                          factory_for(DetectorKind::NeuralNet, settings));
    }
    EngineOptions options;
    options.jobs = base.jobs;
    const PlanRun run = run_plan(plan, options);

    TextTable table;
    table.header({"setting", "capable", "weak", "blind", "seconds"});
    const std::size_t cells = suite.entry_count();
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        const PerformanceMap& map = run.maps[i];
        const MapTiming& timing = run.timings[i];
        table.add(variants[i].label, map.count(DetectionOutcome::Capable),
                  map.count(DetectionOutcome::Weak),
                  map.count(DetectionOutcome::Blind),
                  fixed(timing.train_seconds + timing.score_seconds, 1));
    }
    std::cout << table.render();
    std::printf("\n(%zu cells per map) A tuned network mimics the Markov "
                "detector; bad parameter\nbalances weaken the anomaly signal "
                "until detections fall out of the map --\nthe 'art of setting "
                "its tuning parameters' the paper warns about.\n", cells);
    return 0;
}
