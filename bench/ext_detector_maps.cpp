// Extension experiment: MFS performance maps for the detectors the paper did
// not chart — t-Stide, the HMM, and the rule learner (all drawn from the
// study's reference [20], Warrender et al. 1999).
//
// Charted at paper scale on the same 112-stream suite as Figures 3-6, these
// maps extend the diversity picture in both directions: t-Stide, the HMM,
// and the rule learner cover the study's entire anomaly space (like the
// Markov detector) because the MFS's rare composition is visible to
// frequencies, state beliefs, and rule confidences alike, while the
// lookahead-pairs model — the original 1996 sense-of-self scheme — covers
// strictly LESS than Stide: its pair database generalizes over training
// windows, so foreign windows can pass pair-by-pair. Diversity of
// similarity metric implies nothing about coverage in either direction.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/diversity.hpp"
#include "detect/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Extension detectors' MFS performance maps", argc, argv);
    if (!ctx) return 0;

    DetectorSettings settings;
    settings.hmm.iterations = 25;

    // One plan covers the four extension detectors plus the paper's Stide
    // and Markov for reference; --jobs spreads its columns across workers.
    ExperimentPlan plan(*ctx->suite);
    for (DetectorKind kind :
         {DetectorKind::TStide, DetectorKind::Hmm, DetectorKind::Rule,
          DetectorKind::LookaheadPairs, DetectorKind::Stide,
          DetectorKind::Markov})
        plan.add_detector(kind, settings);
    const PlanRun run = bench::run_and_render(*ctx, plan);

    bench::banner("Coverage relations vs the paper's detectors");
    std::vector<const PerformanceMap*> ptrs;
    for (const auto& m : run.maps) ptrs.push_back(&m);
    TextTable table;
    table.header({"A", "B", "|A|", "|B|", "jaccard", "relation"});
    for (const PairwiseDiversity& d : analyze_all_pairs(ptrs)) {
        std::string rel = d.a_subset_of_b && d.b_subset_of_a ? "A = B"
                          : d.a_subset_of_b                  ? "A c B"
                          : d.b_subset_of_a                  ? "B c A"
                                                             : "overlap";
        table.add(d.detector_a, d.detector_b, d.coverage_a, d.coverage_b,
                  fixed(d.jaccard, 3), rel);
    }
    std::cout << table.render();
    return 0;
}
