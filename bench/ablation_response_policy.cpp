// Ablation: the response policy of the probabilistic detectors.
//
// DESIGN.md's one interpretive step is the probability floor: continuations
// at or below the floor quantize to the maximal response. This ablation
// sweeps the floor (and Laplace smoothing) for the Markov detector and shows
// where the paper's Figure 4 (full coverage) comes from:
//   * floor 0: only literally-impossible continuations are maximal — the map
//     collapses toward Stide's (coverage only where something foreign enters
//     the conditioning window);
//   * floor = the paper's rarity cutoff (0.5%): full coverage (Figure 4);
//   * larger floors keep full coverage but raise false alarms on normal data;
//   * Laplace smoothing removes zero probabilities entirely and, with floor
//     0, blinds the detector everywhere.
#include <cstdio>
#include <iostream>
#include <iterator>

#include "common.hpp"
#include "core/false_alarm.hpp"
#include "detect/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Ablation: probability floor / smoothing of the Markov detector",
        argc, argv);
    if (!ctx) return 0;

    struct Variant {
        const char* label;
        double floor;
        double alpha;
    };
    const Variant variants[] = {
        {"floor=0 (raw probabilities)", 0.0, 0.0},
        {"floor=0.1%", 0.001, 0.0},
        {"floor=0.5% (paper's rarity cutoff)", 0.005, 0.0},
        {"floor=2%", 0.02, 0.0},
        {"laplace=0.5, floor=0", 0.0, 0.5},
        {"laplace=0.5, floor=0.5%", 0.005, 0.5},
    };

    const EventStream heldout = ctx->corpus->generate_heldout(100'000, 90210);

    bench::banner("Markov detector coverage and false alarms per response policy");
    // One plan, one detector per policy variant: the engine interleaves the
    // variants' columns across --jobs workers.
    ExperimentPlan plan(*ctx->suite);
    for (const Variant& v : variants) {
        DetectorSettings settings;
        settings.markov.probability_floor = v.floor;
        settings.markov.laplace_alpha = v.alpha;
        plan.add_detector(std::string("markov ") + v.label,
                          factory_for(DetectorKind::Markov, settings));
    }
    const PlanRun run = bench::run_quiet(*ctx, plan);

    TextTable table;
    table.header({"policy", "capable", "weak", "blind", "FA rate @ DW=6"});
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        const Variant& v = variants[i];
        const PerformanceMap& map = run.maps[i];
        DetectorSettings settings;
        settings.markov.probability_floor = v.floor;
        settings.markov.laplace_alpha = v.alpha;
        auto d6 = make_detector(DetectorKind::Markov, 6, settings);
        d6->train(ctx->corpus->training());
        const FalseAlarmResult fa = measure_false_alarms(*d6, heldout);
        table.add(v.label, map.count(DetectionOutcome::Capable),
                  map.count(DetectionOutcome::Weak),
                  map.count(DetectionOutcome::Blind), percent(fa.rate(), 3));
    }
    std::cout << table.render();
    std::printf("\nThe paper's full-coverage Markov map needs the detector to "
                "treat below-cutoff\nconditional probabilities as maximally "
                "anomalous; with raw probabilities the MFS's\nrare-but-seen "
                "junctions never reach response 1, and with smoothing alone "
                "nothing does.\n");
    return 0;
}
