// Section 5.3: the evaluation corpus and its claimed properties.
//
// Verifies and reports, at paper scale: the 1,000,000-element training
// stream over an alphabet of 8; ~98% of the stream being repetitions of the
// base cycle; the ~2% nondeterministic remainder supplying rare sequences
// (relative frequency < 0.5%) at every length used to compose anomalies; and
// the zero-probability transitions that make foreign pairs possible.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "seq/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Corpus census (Section 5.3 properties)", argc, argv,
        /*build_suite=*/false);
    if (!ctx) return 0;
    const TrainingCorpus& corpus = *ctx->corpus;
    const EventStream& train = corpus.training();

    bench::banner("Stream-level properties");
    std::printf("training elements      : %zu  (paper: 1,000,000)\n", train.size());
    std::printf("alphabet size          : %zu  (paper: 8)\n", train.alphabet_size());
    std::printf("base-cycle coverage    : %s  (paper: ~98%% of the stream is the "
                "repeated cycle)\n",
                percent(cycle_coverage(train, corpus.cycle()), 2).c_str());
    std::printf("cycle continuation rate: %s  (per-transition determinism)\n",
                percent(deterministic_continuation_rate(train, corpus.cycle()), 2)
                    .c_str());

    bench::banner("Per-length census (rare = relative frequency < 0.5%)");
    TextTable table;
    table.header({"n", "windows", "distinct n-grams", "common", "rare",
                  "rare mass"});
    for (std::size_t n = 2; n <= 9; ++n) {
        const LengthCensus c = census(train, n, corpus.spec().rare_threshold);
        table.add(n, c.windows, c.distinct, c.common, c.rare,
                  percent(c.rare_mass, 3));
    }
    std::cout << table.render();

    bench::banner("Rarest 2-grams (deviation transitions)");
    {
        const NgramTable pairs = NgramTable::from_stream(train, 2);
        TextTable rare_table;
        rare_table.header({"gram", "count", "rel freq"});
        std::size_t shown = 0;
        for (const RareGram& rg :
             rare_grams(pairs, corpus.spec().rare_threshold)) {
            if (++shown > 10) break;
            rare_table.add(std::to_string(rg.gram[0]) + " " +
                               std::to_string(rg.gram[1]),
                           rg.count, percent(rg.relative_frequency, 4));
        }
        std::cout << rare_table.render();
    }

    bench::banner("Zero-probability transitions (sources of foreign pairs)");
    std::size_t forbidden_total = 0;
    for (Symbol s = 0; s < train.alphabet_size(); ++s)
        forbidden_total += corpus.forbidden_successors(s).size();
    std::printf("forbidden (from, to) pairs in the generator: %zu of %zu\n",
                forbidden_total,
                train.alphabet_size() * train.alphabet_size());
    std::printf("example: from 0 ->");
    for (Symbol t : corpus.forbidden_successors(0)) std::printf(" %u", t);
    std::printf("   (never generated; any such pair is a minimal foreign "
                "sequence of size 2)\n");
    return 0;
}
