// Shared setup for the figure-regeneration harnesses.
//
// Every bench binary reproduces one table/figure of the paper at paper scale
// by default (1M-element corpus, AS 2..9, DW 2..15) and accepts a few
// overrides for quick runs. Output goes to stdout: the rendered chart first,
// then a CSV block for replotting.
#pragma once

#include <memory>
#include <string>

#include "anomaly/suite.hpp"
#include "datagen/corpus.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "engine/sink.hpp"
#include "obs/session.hpp"
#include "util/cli.hpp"

namespace adiv::bench {

struct Context {
    CorpusSpec spec;
    SuiteConfig suite_config;
    /// Resolved --jobs value (never 0): worker threads for plan runs.
    std::size_t jobs = 1;
    /// Installed before corpus generation when --metrics/--trace are given;
    /// --metrics-interval additionally samples the registry into a JSON-lines
    /// series while the experiment runs. Dumps the final metrics (stopping
    /// the sampler first) when the context is destroyed.
    std::unique_ptr<ObsSession> obs;
    std::unique_ptr<TrainingCorpus> corpus;
    std::unique_ptr<EvaluationSuite> suite;

    /// Engine options carrying the context's --jobs value.
    [[nodiscard]] EngineOptions engine_options() const {
        EngineOptions options;
        options.jobs = jobs;
        return options;
    }
};

/// Registers the common options on a parser (including --metrics/--trace).
void add_common_options(CliParser& cli);

/// Builds corpus (always) and suite (when build_suite) from parsed options.
/// `program` labels the run manifest.
Context make_context(const CliParser& cli, bool build_suite = true,
                     const std::string& program = "bench");

/// Convenience: parse argv with the common options; returns nullptr if
/// --help was requested.
std::unique_ptr<Context> context_from_args(const std::string& program,
                                           const std::string& summary, int argc,
                                           char** argv, bool build_suite = true);

/// Prints a section header to stdout.
void banner(const std::string& title);

/// Runs the plan with the context's --jobs setting and renders every map to
/// stdout through a ChartSink (chart, outcome counts, CSV block, summary).
PlanRun run_and_render(const Context& ctx, const ExperimentPlan& plan);

/// Runs the plan with the context's --jobs setting, no rendering.
PlanRun run_quiet(const Context& ctx, const ExperimentPlan& plan);

}  // namespace adiv::bench
