#include "common.hpp"

#include <cstdio>
#include <iostream>

#include "util/stopwatch.hpp"

namespace adiv::bench {

void add_common_options(CliParser& cli) {
    cli.add_option("training-length", "1000000",
                   "training stream length (paper: 1,000,000)");
    cli.add_option("background", "4096", "test-stream background length");
    cli.add_option("min-anomaly", "2", "smallest anomaly size (paper: 2)");
    cli.add_option("max-anomaly", "9", "largest anomaly size (paper: 9)");
    cli.add_option("min-window", "2", "smallest detector window (paper: 2)");
    cli.add_option("max-window", "15", "largest detector window (paper: 15)");
    cli.add_option("seed", "20050628", "corpus generation seed");
    cli.add_option("jobs", "0",
                   "experiment worker threads (0 = hardware concurrency); "
                   "maps are identical for any value");
    add_observability_options(cli);
}

Context make_context(const CliParser& cli, bool build_suite,
                     const std::string& program) {
    Context ctx;
    ctx.spec.training_length =
        static_cast<std::size_t>(cli.get_int("training-length"));
    ctx.spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    ctx.suite_config.background_length =
        static_cast<std::size_t>(cli.get_int("background"));
    ctx.suite_config.min_anomaly_size =
        static_cast<std::size_t>(cli.get_int("min-anomaly"));
    ctx.suite_config.max_anomaly_size =
        static_cast<std::size_t>(cli.get_int("max-anomaly"));
    ctx.suite_config.min_window = static_cast<std::size_t>(cli.get_int("min-window"));
    ctx.suite_config.max_window = static_cast<std::size_t>(cli.get_int("max-window"));
    ctx.jobs = resolve_jobs(static_cast<std::size_t>(cli.get_int("jobs")));

    RunManifest manifest = make_manifest(program);
    manifest.seed = ctx.spec.seed;
    manifest.alphabet_size = ctx.spec.alphabet_size;
    manifest.training_length = ctx.spec.training_length;
    manifest.deviation_rate = ctx.spec.deviation_rate;
    manifest.deviation_targets = ctx.spec.deviation_targets;
    manifest.rare_threshold = ctx.spec.rare_threshold;
    manifest.min_anomaly_size = ctx.suite_config.min_anomaly_size;
    manifest.max_anomaly_size = ctx.suite_config.max_anomaly_size;
    manifest.min_window = ctx.suite_config.min_window;
    manifest.max_window = ctx.suite_config.max_window;
    ctx.obs = std::make_unique<ObsSession>(cli, std::move(manifest));

    std::printf("# engine: jobs=%zu\n", ctx.jobs);
    Stopwatch sw;
    ctx.corpus = std::make_unique<TrainingCorpus>(TrainingCorpus::generate(ctx.spec));
    std::printf("# corpus: %zu elements, alphabet %zu (%.2fs)\n",
                ctx.corpus->training().size(), ctx.spec.alphabet_size, sw.lap());
    if (build_suite) {
        ctx.suite = std::make_unique<EvaluationSuite>(
            EvaluationSuite::build(*ctx.corpus, ctx.suite_config));
        std::printf("# suite: %zu test streams (AS %zu..%zu x DW %zu..%zu) (%.2fs)\n",
                    ctx.suite->entry_count(), ctx.suite_config.min_anomaly_size,
                    ctx.suite_config.max_anomaly_size, ctx.suite_config.min_window,
                    ctx.suite_config.max_window, sw.lap());
    }
    return ctx;
}

std::unique_ptr<Context> context_from_args(const std::string& program,
                                           const std::string& summary, int argc,
                                           char** argv, bool build_suite) {
    CliParser cli(program, summary);
    add_common_options(cli);
    if (!cli.parse(argc, argv)) return nullptr;
    return std::make_unique<Context>(make_context(cli, build_suite, program));
}

void banner(const std::string& title) {
    std::printf("\n==== %s ====\n\n", title.c_str());
}

PlanRun run_and_render(const Context& ctx, const ExperimentPlan& plan) {
    ChartSink sink(std::cout);
    return run_plan(plan, ctx.engine_options(), sink);
}

PlanRun run_quiet(const Context& ctx, const ExperimentPlan& plan) {
    return run_plan(plan, ctx.engine_options());
}

}  // namespace adiv::bench
