// Ablation: t-Stide and the locality frame count — extensions beyond the
// paper's four detectors.
//
// t-Stide (Warrender et al. 1999) treats rare-as-well-as-foreign windows as
// anomalous; its coverage should land between Stide's (foreign only) and the
// Markov detector's, at a false-alarm cost. The LFC post-filter shows the
// noise-suppression stage the paper deliberately excluded from its
// evaluation: it suppresses isolated false alarms but also suppresses the
// (isolated) MFS hit, illustrating why the study scored intrinsic responses.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/ensemble.hpp"
#include "core/false_alarm.hpp"
#include "detect/lfc.hpp"
#include "detect/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Ablation: t-Stide coverage and the LFC post-filter", argc, argv);
    if (!ctx) return 0;

    bench::banner("Coverage: stide vs t-stide vs markov");
    ExperimentPlan plan(*ctx->suite);
    plan.add_detector(DetectorKind::Stide);
    plan.add_detector(DetectorKind::TStide);
    plan.add_detector(DetectorKind::Markov);
    const PlanRun run = bench::run_quiet(*ctx, plan);
    const PerformanceMap& stide_map = run.maps[0];
    const PerformanceMap& tstide_map = run.maps[1];
    const PerformanceMap& markov_map = run.maps[2];

    std::cout << tstide_map.render() << '\n';
    const CoverageSet cs = CoverageSet::capable_cells(stide_map);
    const CoverageSet ct = CoverageSet::capable_cells(tstide_map);
    const CoverageSet cm = CoverageSet::capable_cells(markov_map);
    TextTable table;
    table.header({"detector", "capable cells"});
    table.add("stide", cs.size());
    table.add("t-stide", ct.size());
    table.add("markov", cm.size());
    std::cout << table.render();
    std::printf("\nsubset relations: stide c t-stide: %s | t-stide c markov: %s\n",
                cs.subset_of(ct) ? "yes" : "NO", ct.subset_of(cm) ? "yes" : "NO");

    bench::banner("False-alarm cost of flagging rare windows (DW = 6)");
    const EventStream heldout = ctx->corpus->generate_heldout(150'000, 777);
    TextTable fa;
    fa.header({"detector", "alarms", "windows", "FA rate"});
    for (DetectorKind kind :
         {DetectorKind::Stide, DetectorKind::TStide, DetectorKind::Markov}) {
        auto d = make_detector(kind, 6);
        d->train(ctx->corpus->training());
        const FalseAlarmResult r = measure_false_alarms(*d, heldout);
        fa.add(to_string(kind), r.alarms, r.windows, percent(r.rate(), 3));
    }
    std::cout << fa.render();

    bench::banner("LFC post-filter on t-stide responses");
    {
        // Count alarm BURSTS (0 -> 1 transitions): the operator-facing unit.
        auto bursts = [](std::span<const double> alarms, double cutoff) {
            std::size_t n = 0;
            bool prev = false;
            for (double a : alarms) {
                const bool now = a >= cutoff;
                if (now && !prev) ++n;
                prev = now;
            }
            return n;
        };

        auto d = make_detector(DetectorKind::TStide, 6);
        d->train(ctx->corpus->training());
        LocalityFrameConfig tight;   // demands a dense burst
        tight.frame_size = 20;
        tight.threshold = 8;
        const auto raw = d->score(heldout);
        const auto filtered = locality_frame_filter(raw, tight);
        std::printf("held-out normal data (DW=6): alarm bursts raw %zu -> "
                    "LFC(frame=20, thr=8) %zu\n",
                    bursts(raw, kMaximalResponse), bursts(filtered, 1.0));

        // A dense anomaly survives: the size-6 MFS at DW 6 lights up ~11
        // span windows, enough to satisfy the frame.
        const auto& dense = ctx->suite->entry(6, 6);
        const auto dense_filtered =
            locality_frame_filter(d->score(dense.stream.stream), tight);
        bool dense_hit = false;
        for (std::size_t p = dense.stream.span.first; p <= dense.stream.span.last;
             ++p)
            dense_hit = dense_hit || dense_filtered[p] >= 1.0;
        std::printf("dense anomaly (AS=6, DW=6): filtered hit %s\n",
                    dense_hit ? "KEPT" : "suppressed");

        // An isolated anomaly is suppressed: Stide at AS=2, DW=2 produces a
        // single foreign window, which the same frame filters out — exactly
        // why the study scores intrinsic responses (Section 5.5) instead.
        auto stide2 = make_detector(DetectorKind::Stide, 2);
        stide2->train(ctx->corpus->training());
        const auto& isolated = ctx->suite->entry(2, 2);
        const auto iso_raw = stide2->score(isolated.stream.stream);
        const auto iso_filtered = locality_frame_filter(iso_raw, tight);
        bool iso_raw_hit = false, iso_hit = false;
        for (std::size_t p = isolated.stream.span.first;
             p <= isolated.stream.span.last; ++p) {
            iso_raw_hit = iso_raw_hit || iso_raw[p] >= kMaximalResponse;
            iso_hit = iso_hit || iso_filtered[p] >= 1.0;
        }
        std::printf("isolated anomaly (stide, AS=2, DW=2): raw hit %s -> "
                    "filtered hit %s\n",
                    iso_raw_hit ? "yes" : "no", iso_hit ? "KEPT" : "SUPPRESSED");
        std::printf("\nThe LFC buys noise suppression at the price of isolated "
                    "detections; scoring\nintrinsic responses (the paper's "
                    "choice, Section 5.5) keeps the evaluation\nabout the "
                    "similarity metric itself.\n");
    }
    return 0;
}
