// Figure 2: boundary sequences and the incident span.
//
// Reproduces the paper's illustration (detector window 5, foreign sequence of
// size 8) and then validates, over the whole AS x DW grid, that injection
// kept the boundaries clean: every incident-span window that does not contain
// the entire anomaly occurs in training, every window containing the whole
// anomaly is foreign, and every window outside the span is a common training
// sequence.
#include <cstdio>
#include <iostream>

#include "anomaly/foreign.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Figure 2: boundary sequences and incident span", argc, argv);
    if (!ctx) return 0;

    const SubsequenceOracle oracle(ctx->corpus->training());

    bench::banner("Figure 2 illustration: DW = 5, foreign sequence of size 8");
    {
        const auto& entry = ctx->suite->entry(8, 5);
        const auto& stream = entry.stream;
        std::printf("anomaly (size 8) injected at element %zu:\n  ",
                    stream.anomaly_pos);
        for (std::size_t i = 0; i < 8; ++i)
            std::printf("%u ", stream.stream[stream.anomaly_pos + i]);
        std::printf("\nincident span: windows %zu..%zu (%zu windows = AS + DW - 1)\n",
                    stream.span.first, stream.span.last, stream.span.count());
        std::printf("\nwindow  contents         kind            in training?\n");
        for (std::size_t pos = stream.span.first; pos <= stream.span.last; ++pos) {
            const SymbolView w = stream.stream.window(pos, 5);
            std::string contents;
            for (Symbol s : w) contents += std::to_string(s) + " ";
            const bool covers =
                window_covers_anomaly(pos, 5, stream.anomaly_pos, 8);
            const std::size_t overlap_start =
                pos > stream.anomaly_pos ? pos : stream.anomaly_pos;
            const std::size_t overlap_end =
                std::min(pos + 5, stream.anomaly_pos + 8);
            const bool pure_inside =
                pos >= stream.anomaly_pos && pos + 5 <= stream.anomaly_pos + 8;
            const char* kind = covers          ? "covers anomaly"
                               : pure_inside   ? "inside anomaly"
                                               : "boundary";
            (void)overlap_start;
            (void)overlap_end;
            std::printf("%5zu   %-16s %-15s %s\n", pos, contents.c_str(), kind,
                        oracle.present(w) ? "yes" : "NO (foreign)");
        }
    }

    bench::banner("Boundary-safety validation over the full grid");
    TextTable table;
    table.header({"AS", "DW", "span windows", "boundary+interior present",
                  "covering foreign", "outside common"});
    bool all_ok = true;
    for (std::size_t as : ctx->suite->anomaly_sizes()) {
        for (std::size_t dw : ctx->suite->window_lengths()) {
            const auto& stream = ctx->suite->entry(as, dw).stream;
            std::size_t present = 0, foreign = 0, needed_present = 0,
                        needed_foreign = 0, outside_common = 0, outside = 0;
            const double rare = ctx->corpus->spec().rare_threshold;
            for (std::size_t pos = 0; pos < stream.stream.window_count(dw); ++pos) {
                const SymbolView w = stream.stream.window(pos, dw);
                if (stream.span.contains(pos)) {
                    if (window_covers_anomaly(pos, dw, stream.anomaly_pos, as)) {
                        ++needed_foreign;
                        if (!oracle.present(w)) ++foreign;
                    } else {
                        ++needed_present;
                        if (oracle.present(w)) ++present;
                    }
                } else {
                    ++outside;
                    if (oracle.common(w, rare)) ++outside_common;
                }
            }
            const bool ok = present == needed_present &&
                            foreign == needed_foreign && outside_common == outside;
            all_ok = all_ok && ok;
            table.add(as, dw, stream.span.count(),
                      std::to_string(present) + "/" + std::to_string(needed_present),
                      std::to_string(foreign) + "/" + std::to_string(needed_foreign),
                      std::to_string(outside_common) + "/" + std::to_string(outside));
        }
    }
    std::cout << table.render();
    std::printf("\nall streams boundary-clean: %s\n", all_ok ? "YES" : "NO");
    return all_ok ? 0 : 1;
}
