// Sections 7-8: what combining diverse detectors buys.
//
// Regenerates the coverage algebra behind the paper's ensemble discussion:
//   * the four performance maps' coverage sets and their pairwise relations
//     (Stide c Markov; Stide u L&B = Stide; NN ~ Markov);
//   * false-alarm suppression: Markov as the primary detector with Stide as
//     the suppressor (AND), measured on held-out normal data;
//   * hit retention: the suppressed ensemble still detects the MFS wherever
//     Stide covers (DW >= AS).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/diversity.hpp"
#include "core/ensemble.hpp"
#include "core/false_alarm.hpp"
#include "detect/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Ensemble analysis: combining diverse detectors", argc, argv);
    if (!ctx) return 0;

    // One four-detector plan: all 56 (detector, DW) training columns feed
    // the same worker pool under --jobs.
    ExperimentPlan plan(*ctx->suite);
    for (DetectorKind kind : paper_detectors()) plan.add_detector(kind);
    PlanRun run = bench::run_quiet(*ctx, plan);
    const std::vector<PerformanceMap>& maps = run.maps;

    bench::banner("Coverage sets (capable cells per detector)");
    TextTable coverage;
    coverage.header({"detector", "capable", "weak", "blind", "of"});
    for (const auto& map : maps)
        coverage.add(map.detector_name(), map.count(DetectionOutcome::Capable),
                     map.count(DetectionOutcome::Weak),
                     map.count(DetectionOutcome::Blind), map.cell_count());
    std::cout << coverage.render();

    bench::banner("Pairwise diversity");
    std::vector<const PerformanceMap*> map_ptrs;
    for (const auto& m : maps) map_ptrs.push_back(&m);
    TextTable pairs;
    pairs.header({"A", "B", "|A|", "|B|", "overlap", "union", "B adds to A",
                  "jaccard", "subset"});
    for (const PairwiseDiversity& d : analyze_all_pairs(map_ptrs)) {
        std::string subset = d.a_subset_of_b && d.b_subset_of_a ? "A = B"
                             : d.a_subset_of_b                  ? "A c B"
                             : d.b_subset_of_a                  ? "B c A"
                                                                : "-";
        pairs.add(d.detector_a, d.detector_b, d.coverage_a, d.coverage_b,
                  d.overlap, d.union_size, d.gain_b_adds_to_a, fixed(d.jaccard, 3),
                  subset);
    }
    std::cout << pairs.render();
    for (const PairwiseDiversity& d : analyze_all_pairs(map_ptrs))
        std::printf("  %s\n", describe_pair(d).c_str());

    bench::banner("Combined coverage charts");
    const CoverageSet stide = CoverageSet::capable_cells(maps[2]);
    const CoverageSet markov = CoverageSet::capable_cells(maps[1]);
    const CoverageSet lb = CoverageSet::capable_cells(maps[0]);
    std::cout << render_coverage(stide.unite(lb),
                                 "stide u lane-brodley (no gain over stide)",
                                 ctx->suite->anomaly_sizes(),
                                 ctx->suite->window_lengths())
              << '\n';
    std::cout << render_coverage(stide.unite(markov),
                                 "stide u markov (= markov: stide is a subset)",
                                 ctx->suite->anomaly_sizes(),
                                 ctx->suite->window_lengths())
              << '\n';

    bench::banner("False-alarm suppression: Markov primary, Stide suppressor");
    const EventStream heldout = ctx->corpus->generate_heldout(200'000, 31337);
    std::printf("(held-out normal data: %zu elements)\n\n", heldout.size());
    TextTable fa;
    fa.header({"DW", "markov alarms", "stide alarms", "AND alarms", "markov FA",
               "AND FA", "suppressed"});
    for (std::size_t dw : ctx->suite->window_lengths()) {
        auto m = make_detector(DetectorKind::Markov, dw);
        auto s = make_detector(DetectorKind::Stide, dw);
        m->train(ctx->corpus->training());
        s->train(ctx->corpus->training());
        const CombinedAlarmResult c = measure_combined_alarms(*m, *s, heldout);
        const double fa_m =
            static_cast<double>(c.alarms_a) / static_cast<double>(c.windows);
        const double fa_and =
            static_cast<double>(c.alarms_and) / static_cast<double>(c.windows);
        const double suppressed =
            c.alarms_a == 0 ? 0.0
                            : 1.0 - static_cast<double>(c.alarms_and) /
                                        static_cast<double>(c.alarms_a);
        fa.add(dw, c.alarms_a, c.alarms_b, c.alarms_and, percent(fa_m, 3),
               percent(fa_and, 3), percent(suppressed, 1));
    }
    std::cout << fa.render();

    bench::banner("Hit retention of the suppressed ensemble (AND) on MFS streams");
    TextTable hits;
    std::vector<std::string> header{"AS\\DW"};
    for (std::size_t dw : ctx->suite->window_lengths())
        header.push_back(std::to_string(dw));
    hits.header(header);
    // Train once per DW, then score all anomaly sizes for that window.
    std::map<std::pair<std::size_t, std::size_t>, std::string> glyphs;
    for (std::size_t dw : ctx->suite->window_lengths()) {
        auto m = make_detector(DetectorKind::Markov, dw);
        auto s = make_detector(DetectorKind::Stide, dw);
        m->train(ctx->corpus->training());
        s->train(ctx->corpus->training());
        for (std::size_t as : ctx->suite->anomaly_sizes()) {
            const auto& entry = ctx->suite->entry(as, dw);
            const bool hit_m = hits_anomaly(*m, entry.stream);
            const bool hit_s = hits_anomaly(*s, entry.stream);
            glyphs[{as, dw}] = hit_m && hit_s ? "*" : hit_m ? "m" : ".";
        }
    }
    for (std::size_t as : ctx->suite->anomaly_sizes()) {
        std::vector<std::string> row{std::to_string(as)};
        for (std::size_t dw : ctx->suite->window_lengths())
            row.push_back(glyphs.at({as, dw}));
        hits.add_row(std::move(row));
    }
    std::cout << hits.render();
    std::printf("\n  * = ensemble hit (both alarm)   m = markov only (suppressed "
                "by stide)   . = no hit\n");
    std::printf("  The ensemble keeps every hit in Stide's coverage (DW >= AS) "
                "and trades the rest\n  for the false-alarm suppression above "
                "-- the paper's recommended division of labour.\n");
    return 0;
}
