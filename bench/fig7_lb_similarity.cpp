// Figure 7: the Lane & Brodley similarity calculation, and what happens to
// the false-alarm rate when the detection threshold is lowered far enough to
// catch an edge-element mismatch.
//
// Left panel:  two identical size-5 sequences score DW(DW+1)/2 = 15.
// Right panel: a foreign sequence differing only in its last element scores
//              DW(DW-1)/2 = 10 — a "slight dip" that the threshold-1 rule
//              never flags. To detect it, the threshold must be lowered to
//              10, at which point everything that differs from a normal
//              sequence by one element alarms; the table shows the resulting
//              false-alarm rate on held-out normal data growing with the
//              window length, as Section 7 predicts.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "detect/lane_brodley.hpp"
#include "seq/alphabet.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    auto ctx = bench::context_from_args(
        argv[0], "Figure 7: L&B similarity and threshold-lowering false alarms",
        argc, argv, /*build_suite=*/false);
    if (!ctx) return 0;

    bench::banner("Worked example (paper's command sequences, DW = 5)");
    {
        const Alphabet commands({"cd", "<1>", "ls", "laf", "tar"});
        const Sequence normal1{0, 1, 2, 3, 4};  // cd <1> ls laf tar
        const Sequence normal2 = normal1;
        const Sequence foreign{0, 1, 2, 3, 0};  // cd <1> ls laf cd
        std::printf("normal  : %s\n", commands.format(normal1).c_str());
        std::printf("normal  : %s\n", commands.format(normal2).c_str());
        std::printf("  similarity(normal, normal)  = %llu  (Sim_max = DW(DW+1)/2 = %llu)\n",
                    static_cast<unsigned long long>(
                        lane_brodley_similarity(normal1, normal2)),
                    static_cast<unsigned long long>(lane_brodley_max_similarity(5)));
        std::printf("foreign : %s\n", commands.format(foreign).c_str());
        std::printf("  similarity(normal, foreign) = %llu  (Sim_weak = DW(DW-1)/2 = %llu)\n",
                    static_cast<unsigned long long>(
                        lane_brodley_similarity(normal1, foreign)),
                    static_cast<unsigned long long>(5ull * 4 / 2));
        std::printf("\nThe dip from 15 to 10 is all that marks the foreign "
                    "sequence; the maximal\nresponse (similarity 0) is never "
                    "produced, so at detection threshold 1 the\nL&B detector is "
                    "blind to it.\n");
    }

    bench::banner("Threshold lowered to DW(DW-1)/2: false alarms vs window size");
    const EventStream heldout = ctx->corpus->generate_heldout(200'000, 424242);
    TextTable table;
    table.header({"DW", "Sim_max", "threshold", "response cutoff", "false alarms",
                  "windows", "FA rate"});
    std::printf("(held-out normal data: %zu elements from the training model)\n\n",
                heldout.size());
    for (std::size_t dw = ctx->suite_config.min_window;
         dw <= ctx->suite_config.max_window; ++dw) {
        LaneBrodleyDetector lb(dw);
        lb.train(ctx->corpus->training());
        const auto responses = lb.score(heldout);
        // Similarity <= DW(DW-1)/2 <=> response >= 1 - (DW-1)/(DW+1).
        const double sim_threshold =
            static_cast<double>(dw * (dw - 1) / 2);
        const double sim_max = static_cast<double>(lane_brodley_max_similarity(dw));
        const double response_cutoff = 1.0 - sim_threshold / sim_max;
        std::size_t alarms = 0;
        for (double r : responses)
            if (r >= response_cutoff - 1e-12) ++alarms;
        table.add(dw, static_cast<std::uint64_t>(sim_max),
                  static_cast<std::uint64_t>(sim_threshold),
                  fixed(response_cutoff, 4), alarms, responses.size(),
                  percent(static_cast<double>(alarms) /
                          static_cast<double>(responses.size()), 3));
    }
    std::cout << table.render();
    std::printf("\nLowering the threshold makes every one-element difference "
                "alarm; the rate grows\nwith sequence length, 'which will get "
                "increasingly worse as the sequence length grows'.\n");
    return 0;
}
