// Extension experiment: rare-sequence anomalies across all seven detectors.
//
// The paper restricts its charts to the minimal foreign sequence but states
// the dichotomy that motivates them (Section 5.1): rare sequences are
// detectable by probabilistic detectors and invisible to pure
// sequence-matching ones. This harness charts it: a present-but-rare
// sequence of each size is injected into clean background (no foreign window
// anywhere) and every detector's incident-span outcome is recorded over the
// AS x DW grid.
//
// Expected shapes: stide and lane-brodley blind on the entire grid; markov,
// neural-net, hmm, t-stide and rule capable across it.
#include <cstdio>
#include <iostream>
#include <map>

#include "anomaly/rare_anomaly.hpp"
#include "common.hpp"
#include "core/perf_map.hpp"
#include "detect/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace adiv;
    CliParser cli(argv[0], "Rare-sequence anomaly coverage, all detectors");
    bench::add_common_options(cli);
    if (!cli.parse(argc, argv)) return 0;
    auto ctx = bench::make_context(cli, /*build_suite=*/false);

    const std::size_t min_as = 2, max_as = 8;
    const std::size_t min_dw = 2,
                      max_dw = std::min<std::size_t>(ctx.suite_config.max_window, 8);
    std::vector<std::size_t> as_values, dw_values;
    for (std::size_t as = min_as; as <= max_as; ++as) as_values.push_back(as);
    for (std::size_t dw = min_dw; dw <= max_dw; ++dw) dw_values.push_back(dw);

    const SubsequenceOracle oracle(ctx.corpus->training());
    const RareAnomalyBuilder builder(oracle, ctx.corpus->spec().rare_threshold);
    const RareInjector injector(*ctx.corpus, oracle);

    // One rare anomaly per size, injected per window length; a candidate must
    // inject cleanly for every window or the next candidate is tried.
    std::map<std::pair<std::size_t, std::size_t>, InjectedStream> streams;
    for (std::size_t as : as_values) {
        bool placed = false;
        for (const Sequence& anomaly : builder.candidates(as, 64)) {
            std::map<std::pair<std::size_t, std::size_t>, InjectedStream> cells;
            bool ok = true;
            for (std::size_t dw : dw_values) {
                auto injected = injector.try_inject(
                    anomaly, dw, ctx.suite_config.background_length);
                if (!injected) {
                    ok = false;
                    break;
                }
                cells[{as, dw}] = std::move(*injected);
            }
            if (!ok) continue;
            for (auto& [key, stream] : cells) streams[key] = std::move(stream);
            std::printf("# AS=%zu rare anomaly:", as);
            for (Symbol s : anomaly) std::printf(" %u", s);
            std::printf("  (training frequency %s)\n",
                        percent(oracle.relative_frequency(anomaly), 4).c_str());
            placed = true;
            break;
        }
        if (!placed) {
            std::printf("# AS=%zu: no injectable rare anomaly found; skipping\n",
                        as);
        }
    }

    DetectorSettings settings;
    settings.nn.epochs = 300;
    settings.hmm.iterations = 20;

    bench::banner("Rare-anomaly performance maps");
    TextTable summary;
    summary.header({"detector", "capable", "weak", "blind", "of"});
    for (DetectorKind kind : all_detectors()) {
        PerformanceMap map(to_string(kind) + " (rare anomaly)", as_values,
                           dw_values);
        for (std::size_t dw : dw_values) {
            auto detector = make_detector(kind, dw, settings);
            detector->train(ctx.corpus->training());
            for (std::size_t as : as_values) {
                const auto it = streams.find({as, dw});
                if (it == streams.end()) continue;
                const auto responses = detector->score(it->second.stream);
                map.set(as, dw, classify_span(responses, it->second.span));
            }
        }
        std::cout << map.render() << '\n';
        summary.add(to_string(kind), map.count(DetectionOutcome::Capable),
                    map.count(DetectionOutcome::Weak),
                    map.count(DetectionOutcome::Blind), map.cell_count());
    }
    std::cout << summary.render();
    std::printf("\nPure sequence-matching (stide, lane-brodley) cannot respond "
                "to an event that is\nmerely rare; frequency- and "
                "probability-based detectors can — the asymmetry that\nmakes "
                "the Markov detector a superset of Stide and a false-alarm "
                "machine at once.\n");
    return 0;
}
