// Engineering microbenchmarks (google-benchmark): training and scoring
// throughput of the four detectors plus the substrate operations they lean
// on. Not a figure from the paper — operational data for users sizing
// deployments.
#include <benchmark/benchmark.h>

#include "anomaly/mfs_builder.hpp"
#include "anomaly/subsequence_oracle.hpp"
#include "datagen/corpus.hpp"
#include "detect/registry.hpp"
#include "seq/conditional_model.hpp"
#include "seq/ngram_table.hpp"

namespace {

using namespace adiv;

const TrainingCorpus& corpus() {
    static const TrainingCorpus c = [] {
        CorpusSpec spec;
        spec.training_length = 200'000;
        return TrainingCorpus::generate(spec);
    }();
    return c;
}

const EventStream& heldout() {
    static const EventStream h = corpus().generate_heldout(50'000, 1234);
    return h;
}

void BM_NgramTableBuild(benchmark::State& state) {
    const auto length = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        NgramTable t = NgramTable::from_stream(corpus().training(), length);
        benchmark::DoNotOptimize(t.total());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(corpus().training().size()));
}
BENCHMARK(BM_NgramTableBuild)->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_ConditionalModelBuild(benchmark::State& state) {
    const auto context = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ConditionalModel m(corpus().training(), context);
        benchmark::DoNotOptimize(m.distinct_contexts());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(corpus().training().size()));
}
BENCHMARK(BM_ConditionalModelBuild)->Arg(1)->Arg(5)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_DetectorTrain(benchmark::State& state, DetectorKind kind) {
    const auto dw = static_cast<std::size_t>(state.range(0));
    DetectorSettings settings;
    settings.nn.epochs = 100;  // keep the NN benchmark bounded
    for (auto _ : state) {
        auto d = make_detector(kind, dw, settings);
        d->train(corpus().training());
        benchmark::DoNotOptimize(d.get());
    }
}
BENCHMARK_CAPTURE(BM_DetectorTrain, stide, DetectorKind::Stide)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorTrain, markov, DetectorKind::Markov)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorTrain, lane_brodley, DetectorKind::LaneBrodley)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorTrain, neural_net, DetectorKind::NeuralNet)
    ->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_DetectorScore(benchmark::State& state, DetectorKind kind) {
    const auto dw = static_cast<std::size_t>(state.range(0));
    DetectorSettings settings;
    settings.nn.epochs = 100;
    auto d = make_detector(kind, dw, settings);
    d->train(corpus().training());
    for (auto _ : state) {
        auto responses = d->score(heldout());
        benchmark::DoNotOptimize(responses.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(heldout().size()));
}
BENCHMARK_CAPTURE(BM_DetectorScore, stide, DetectorKind::Stide)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, markov, DetectorKind::Markov)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, lane_brodley, DetectorKind::LaneBrodley)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, t_stide, DetectorKind::TStide)
    ->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, neural_net, DetectorKind::NeuralNet)
    ->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_MfsSynthesis(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    const SubsequenceOracle oracle(corpus().training());
    const MfsBuilder builder(oracle);
    (void)builder.build(size);  // warm the oracle tables outside the loop
    for (auto _ : state) {
        auto mfs = builder.build(size);
        benchmark::DoNotOptimize(mfs.data());
    }
}
BENCHMARK(BM_MfsSynthesis)->Arg(2)->Arg(5)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
