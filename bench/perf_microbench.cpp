// Engineering microbenchmarks (google-benchmark): training and scoring
// throughput of the four detectors plus the substrate operations they lean
// on. Not a figure from the paper — operational data for users sizing
// deployments.
//
// After the google-benchmark suite, the binary writes two snapshots:
//   * BENCH_observability.json — batch-scoring events/sec per detector (raw
//     vs observability-instrumented, so the instrumentation overhead is
//     pinned by a number), and per-cell latency percentiles from a reduced
//     map experiment;
//   * BENCH_engine_scaling.json — wall time and cells/sec of one four-
//     detector plan at jobs = 1, 2, 4, and hardware_concurrency, with the
//     speedup over the serial run. On a single-core host the jobs > 1 rows
//     measure scheduling overhead, not speedup.
// Use --benchmark_filter=NONE to skip straight to the snapshots.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "anomaly/mfs_builder.hpp"
#include "anomaly/subsequence_oracle.hpp"
#include "anomaly/suite.hpp"
#include "core/experiment.hpp"
#include "datagen/corpus.hpp"
#include "detect/instrumented.hpp"
#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "util/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "seq/conditional_model.hpp"
#include "seq/ngram_table.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace adiv;

const TrainingCorpus& corpus() {
    static const TrainingCorpus c = [] {
        CorpusSpec spec;
        spec.training_length = 200'000;
        return TrainingCorpus::generate(spec);
    }();
    return c;
}

const EventStream& heldout() {
    static const EventStream h = corpus().generate_heldout(50'000, 1234);
    return h;
}

void BM_NgramTableBuild(benchmark::State& state) {
    const auto length = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        NgramTable t = NgramTable::from_stream(corpus().training(), length);
        benchmark::DoNotOptimize(t.total());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(corpus().training().size()));
}
BENCHMARK(BM_NgramTableBuild)->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_ConditionalModelBuild(benchmark::State& state) {
    const auto context = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ConditionalModel m(corpus().training(), context);
        benchmark::DoNotOptimize(m.distinct_contexts());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(corpus().training().size()));
}
BENCHMARK(BM_ConditionalModelBuild)->Arg(1)->Arg(5)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_DetectorTrain(benchmark::State& state, DetectorKind kind) {
    const auto dw = static_cast<std::size_t>(state.range(0));
    DetectorSettings settings;
    settings.nn.epochs = 100;  // keep the NN benchmark bounded
    for (auto _ : state) {
        auto d = make_detector(kind, dw, settings);
        d->train(corpus().training());
        benchmark::DoNotOptimize(d.get());
    }
}
BENCHMARK_CAPTURE(BM_DetectorTrain, stide, DetectorKind::Stide)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorTrain, markov, DetectorKind::Markov)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorTrain, lane_brodley, DetectorKind::LaneBrodley)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorTrain, neural_net, DetectorKind::NeuralNet)
    ->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_DetectorScore(benchmark::State& state, DetectorKind kind) {
    const auto dw = static_cast<std::size_t>(state.range(0));
    DetectorSettings settings;
    settings.nn.epochs = 100;
    auto d = make_detector(kind, dw, settings);
    d->train(corpus().training());
    for (auto _ : state) {
        auto responses = d->score(heldout());
        benchmark::DoNotOptimize(responses.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(heldout().size()));
}
BENCHMARK_CAPTURE(BM_DetectorScore, stide, DetectorKind::Stide)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, markov, DetectorKind::Markov)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, lane_brodley, DetectorKind::LaneBrodley)
    ->Arg(2)->Arg(6)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, t_stide, DetectorKind::TStide)
    ->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorScore, neural_net, DetectorKind::NeuralNet)
    ->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_MfsSynthesis(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    const SubsequenceOracle oracle(corpus().training());
    const MfsBuilder builder(oracle);
    (void)builder.build(size);  // warm the oracle tables outside the loop
    for (auto _ : state) {
        auto mfs = builder.build(size);
        benchmark::DoNotOptimize(mfs.data());
    }
}
BENCHMARK(BM_MfsSynthesis)->Arg(2)->Arg(5)->Arg(9)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_observability.json snapshot

struct ScoreRates {
    double raw_events_per_sec = 0.0;
    double instrumented_events_per_sec = 0.0;
};

/// Measures batch score() throughput of the raw and instrumented detectors
/// with interleaved repetitions, so clock-frequency and cache drift hit both
/// sides equally — the overhead ratio is what matters, not the absolute rate.
ScoreRates measure_score_pair(const SequenceDetector& raw,
                              const SequenceDetector& instrumented,
                              const EventStream& stream) {
    for (const SequenceDetector* d : {&raw, &instrumented}) {
        auto warmup = d->score(stream);  // touch caches outside the timing
        benchmark::DoNotOptimize(warmup.data());
    }
    Stopwatch sw;
    std::size_t reps = 0;
    double raw_elapsed = 0.0;
    double instrumented_elapsed = 0.0;
    do {
        // Alternate which side runs first so any cost of occupying a rep's
        // second slot (cache refill, allocator state) cancels out.
        const bool raw_first = reps % 2 == 0;
        for (int side = 0; side < 2; ++side) {
            const bool timing_raw = (side == 0) == raw_first;
            const SequenceDetector& detector = timing_raw ? raw : instrumented;
            sw.restart();
            auto responses = detector.score(stream);
            benchmark::DoNotOptimize(responses.data());
            (timing_raw ? raw_elapsed : instrumented_elapsed) += sw.lap();
        }
        ++reps;
    } while (raw_elapsed + instrumented_elapsed < 2.0 || reps < 6);
    const double events = static_cast<double>(reps) * static_cast<double>(stream.size());
    return {events / raw_elapsed, events / instrumented_elapsed};
}

void write_observability_snapshot(const std::string& path) {
    const std::vector<DetectorKind> kinds = {
        DetectorKind::Stide, DetectorKind::Markov, DetectorKind::LaneBrodley};

    // Reduced grid: per-cell latency, not coverage, is the object here.
    SuiteConfig suite_config;
    suite_config.min_anomaly_size = 2;
    suite_config.max_anomaly_size = 4;
    suite_config.min_window = 2;
    suite_config.max_window = 6;
    suite_config.background_length = 1024;
    const EvaluationSuite suite = EvaluationSuite::build(corpus(), suite_config);

    std::printf("\n==== observability snapshot (%s) ====\n\n", path.c_str());
    TextTable table;
    table.header({"detector", "events/s raw", "events/s instr", "overhead",
                  "cell p50 us", "cell p95 us", "cell p99 us"});

    JsonWriter json;
    json.begin_object();
    json.key("schema").value("adiv-bench-observability/1");
    json.key("timestamp").value(now_iso8601());
    json.key("build_type").value(build_type_string());
    json.key("corpus_events").value(static_cast<std::uint64_t>(corpus().training().size()));
    json.key("score_stream_events").value(static_cast<std::uint64_t>(heldout().size()));
    json.key("detectors").begin_object();

    for (const DetectorKind kind : kinds) {
        // One trained model, scored both directly (wrapped->inner()) and
        // through the decorator: identical memory, so the delta is pure
        // instrumentation cost. The global trace sink is the null sink here,
        // the hot-path configuration.
        auto wrapped = std::make_unique<InstrumentedDetector>(make_detector(kind, 6));
        wrapped->train(corpus().training());
        const auto [raw_eps, instr_eps] =
            measure_score_pair(wrapped->inner(), *wrapped, heldout());
        const double overhead_pct = (raw_eps / instr_eps - 1.0) * 100.0;

        global_metrics().reset();
        (void)run_map_experiment(suite, to_string(kind), factory_for(kind));
        const Histogram* cell_us = global_metrics().find_histogram("experiment.cell_us");
        ADIV_ASSERT(cell_us != nullptr);
        const HistogramSummary cells = cell_us->summary();

        table.add(to_string(kind), fixed(raw_eps, 0), fixed(instr_eps, 0),
                  fixed(overhead_pct, 2) + "%", fixed(cells.p50, 1),
                  fixed(cells.p95, 1), fixed(cells.p99, 1));

        json.key(to_string(kind)).begin_object();
        json.key("window").value(std::uint64_t{6});
        json.key("events_per_sec_raw").value(raw_eps);
        json.key("events_per_sec_instrumented").value(instr_eps);
        json.key("instrumentation_overhead_pct").value(overhead_pct);
        json.key("cell_latency_us").begin_object();
        json.key("cells").value(cells.count);
        json.key("p50").value(cells.p50);
        json.key("p95").value(cells.p95);
        json.key("p99").value(cells.p99);
        json.key("max").value(cells.max);
        json.end_object();
        json.end_object();
    }
    json.end_object();
    json.end_object();

    std::printf("%s", table.render().c_str());
    std::ofstream out(path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << json.str() << '\n';
    std::printf("\nsnapshot written to %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// BENCH_engine_scaling.json snapshot

void write_engine_scaling_snapshot(const std::string& path) {
    // The paper's four detectors on a reduced grid: large enough that the
    // training columns dominate, small enough to sweep four job counts.
    SuiteConfig suite_config;
    suite_config.min_anomaly_size = 2;
    suite_config.max_anomaly_size = 9;
    suite_config.min_window = 2;
    suite_config.max_window = 8;
    suite_config.background_length = 1024;
    const EvaluationSuite suite = EvaluationSuite::build(corpus(), suite_config);

    DetectorSettings settings;
    settings.nn.epochs = 100;
    ExperimentPlan plan(suite);
    for (DetectorKind kind : paper_detectors()) plan.add_detector(kind, settings);

    std::vector<std::size_t> job_counts = {1, 2, 4, ThreadPool::default_jobs()};
    std::sort(job_counts.begin(), job_counts.end());
    job_counts.erase(std::unique(job_counts.begin(), job_counts.end()),
                     job_counts.end());

    std::printf("\n==== engine scaling snapshot (%s) ====\n\n", path.c_str());
    std::printf("# plan: %zu detectors x DW %zu..%zu x AS %zu..%zu = %zu cells\n",
                plan.detectors().size(), suite_config.min_window,
                suite_config.max_window, suite_config.min_anomaly_size,
                suite_config.max_anomaly_size, plan.cell_count());

    TextTable table;
    table.header({"jobs", "wall s", "cells/s", "speedup vs jobs=1"});

    JsonWriter json;
    json.begin_object();
    json.key("schema").value("adiv-bench-engine-scaling/1");
    json.key("timestamp").value(now_iso8601());
    json.key("build_type").value(build_type_string());
    json.key("hardware_concurrency")
        .value(static_cast<std::uint64_t>(ThreadPool::default_jobs()));
    json.key("corpus_events")
        .value(static_cast<std::uint64_t>(corpus().training().size()));
    json.key("detectors").begin_array();
    for (const auto& detector : plan.detectors()) json.value(detector.name);
    json.end_array();
    json.key("cells").value(static_cast<std::uint64_t>(plan.cell_count()));
    json.key("runs").begin_array();

    double serial_wall = 0.0;
    for (const std::size_t jobs : job_counts) {
        EngineOptions options;
        options.jobs = jobs;
        const PlanRun run = run_plan(plan, options);
        if (jobs == 1) serial_wall = run.summary.wall_seconds;
        const double speedup = run.summary.wall_seconds > 0.0 && serial_wall > 0.0
                                   ? serial_wall / run.summary.wall_seconds
                                   : 0.0;
        table.add(jobs, fixed(run.summary.wall_seconds, 2),
                  fixed(run.summary.cells_per_second, 1), fixed(speedup, 2));
        json.begin_object();
        json.key("jobs").value(static_cast<std::uint64_t>(jobs));
        json.key("wall_seconds").value(run.summary.wall_seconds);
        json.key("cells_per_second").value(run.summary.cells_per_second);
        json.key("speedup_vs_1").value(speedup);
        json.end_object();
    }
    json.end_array();
    json.end_object();

    std::printf("%s", table.render().c_str());
    std::ofstream out(path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << json.str() << '\n';
    std::printf("\nsnapshot written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    write_observability_snapshot("BENCH_observability.json");
    write_engine_scaling_snapshot("BENCH_engine_scaling.json");
    return 0;
}
