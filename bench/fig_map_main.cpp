// Shared main for the four performance-map figures (Figures 3-6).
//
// Each fig{3,4,5,6}_* binary compiles this file with ADIV_FIG_KIND set to the
// detector under study; the harness regenerates the paper's chart at paper
// scale and emits a CSV block for replotting.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "detect/registry.hpp"
#include "util/stopwatch.hpp"

#ifndef ADIV_FIG_KIND
#error "compile with -DADIV_FIG_KIND=<DetectorKind enumerator>"
#endif
#ifndef ADIV_FIG_TITLE
#error "compile with -DADIV_FIG_TITLE=\"...\""
#endif

int main(int argc, char** argv) {
    using namespace adiv;
    const DetectorKind kind = DetectorKind::ADIV_FIG_KIND;
    auto ctx = bench::context_from_args(argv[0], ADIV_FIG_TITLE, argc, argv);
    if (!ctx) return 0;

    bench::banner(ADIV_FIG_TITLE);
    Stopwatch sw;
    const PerformanceMap map = run_map_experiment(
        *ctx->suite, to_string(kind), factory_for(kind));
    std::printf("# experiment: %.2fs\n\n", sw.seconds());
    std::cout << map.render() << '\n';
    std::printf("summary: capable=%zu weak=%zu blind=%zu of %zu cells\n\n",
                map.count(DetectionOutcome::Capable),
                map.count(DetectionOutcome::Weak),
                map.count(DetectionOutcome::Blind), map.cell_count());
    std::printf("-- csv --\n");
    map.write_csv(std::cout);
    return 0;
}
