// Shared main for the four performance-map figures (Figures 3-6).
//
// Each fig{3,4,5,6}_* binary compiles this file with ADIV_FIG_KIND set to the
// detector under study; the harness regenerates the paper's chart at paper
// scale through a one-detector experiment plan and emits a CSV block for
// replotting. --jobs parallelizes the map without changing a single cell.
#include "common.hpp"
#include "detect/registry.hpp"

#ifndef ADIV_FIG_KIND
#error "compile with -DADIV_FIG_KIND=<DetectorKind enumerator>"
#endif
#ifndef ADIV_FIG_TITLE
#error "compile with -DADIV_FIG_TITLE=\"...\""
#endif

int main(int argc, char** argv) {
    using namespace adiv;
    const DetectorKind kind = DetectorKind::ADIV_FIG_KIND;
    auto ctx = bench::context_from_args(argv[0], ADIV_FIG_TITLE, argc, argv);
    if (!ctx) return 0;

    bench::banner(ADIV_FIG_TITLE);
    ExperimentPlan plan(*ctx->suite);
    plan.add_detector(kind);
    bench::run_and_render(*ctx, plan);
    return 0;
}
