// ensemble_ids: a host-based intrusion detector for system-call traces,
// built the way Section 7 recommends — the Markov detector as the primary
// (it sees foreign AND rare manifestations at any window size) with Stide as
// a false-alarm suppressor (its alarms are a subset of the Markov alarms,
// so anything Markov raises alone may be dismissed).
//
// The scenario: a server process is monitored; its normal behaviour comes
// from a routine-structured trace model (accept/recv/send loops, logging,
// housekeeping). An attack manifests as a minimal foreign sequence of
// UNKNOWN size in the syscall stream — precisely the case where Stide alone
// is unreliable (the window might be too small) but valuable as a suppressor.
//
// Usage: ./examples/ensemble_ids [--window 6] [--trace-length 200000]
#include <cstdio>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("ensemble_ids",
                  "Markov primary + Stide suppressor on a syscall trace");
    cli.add_option("window", "6", "detector window (DW)");
    cli.add_option("trace-length", "200000", "training trace length");
    cli.add_option("test-length", "20000", "monitored (test) trace length");
    if (!cli.parse(argc, argv)) return 0;
    const auto dw = static_cast<std::size_t>(cli.get_int("window"));

    // Normal behaviour: the server's syscall trace.
    const TraceModel model = make_syscall_model();
    const EventStream training = model.generate(
        static_cast<std::size_t>(cli.get_int("trace-length")), /*seed=*/11);
    std::printf("training trace: %zu syscalls over %zu distinct calls\n",
                training.size(), model.alphabet().size());

    // The attack manifestation: a minimal foreign sequence in THIS trace's
    // terms, synthesized the same way the study synthesizes anomalies.
    const SubsequenceOracle oracle(training);
    MfsConfig mfs_config;
    mfs_config.require_rare_composition = false;  // natural-like data is noisier
    const MfsBuilder builder(oracle, mfs_config);
    const Sequence attack = builder.build(5);
    std::printf("attack manifestation (foreign, minimal, size %zu): %s\n",
                attack.size(), model.alphabet().format(attack).c_str());

    // The monitored stream: fresh normal activity with the attack spliced in.
    EventStream monitored = model.generate(
        static_cast<std::size_t>(cli.get_int("test-length")), /*seed=*/77);
    const std::size_t attack_pos = monitored.size() / 2;
    {
        Sequence events = monitored.events();
        events.insert(events.begin() + static_cast<std::ptrdiff_t>(attack_pos),
                      attack.begin(), attack.end());
        monitored = EventStream(model.alphabet().size(), std::move(events));
    }

    // Train the ensemble. The Markov floor is raised above the default so
    // that rare-but-normal routine boundaries (housekeeping tasks the server
    // runs a handful of times per day) register as maximally anomalous — the
    // false-alarm-prone primary the paper describes.
    MarkovConfig markov_config;
    markov_config.probability_floor = 0.02;
    MarkovDetector markov(dw, markov_config);
    StideDetector stide(dw);
    markov.train(training);
    stide.train(training);

    const auto rm = markov.score(monitored);
    const auto rs = stide.score(monitored);
    const auto suppressed = combine_alarms(rm, rs, CombineMode::And,
                                           kMaximalResponse);

    const IncidentSpan span =
        incident_span(attack_pos, attack.size(), dw, monitored.size());
    std::size_t markov_alarms = 0, ensemble_alarms = 0;
    std::size_t markov_hits = 0, ensemble_hits = 0;
    for (std::size_t i = 0; i < rm.size(); ++i) {
        const bool m = rm[i] >= kMaximalResponse;
        const bool both = suppressed[i] >= 1.0;
        if (span.contains(i)) {
            markov_hits += m ? 1 : 0;
            ensemble_hits += both ? 1 : 0;
        } else {
            markov_alarms += m ? 1 : 0;
            ensemble_alarms += both ? 1 : 0;
        }
    }

    std::printf("\nmonitored stream: %zu syscalls, attack at %zu (span windows "
                "%zu..%zu)\n",
                monitored.size(), attack_pos, span.first, span.last);
    std::printf("%-22s %-18s %s\n", "", "alarms off-attack", "alarms on-attack");
    std::printf("%-22s %-18zu %zu\n", "markov alone", markov_alarms, markov_hits);
    std::printf("%-22s %-18zu %zu\n", "markov AND stide", ensemble_alarms,
                ensemble_hits);
    if (markov_hits > 0 && ensemble_hits > 0 && ensemble_alarms < markov_alarms) {
        std::printf("\nThe suppressor dismissed %zu off-attack alarms and kept "
                    "the attack visible.\n",
                    markov_alarms - ensemble_alarms);
    } else if (markov_hits > 0 && ensemble_hits > 0) {
        std::printf("\nStide corroborated every off-attack alarm: those windows "
                    "are genuinely foreign\nto the training trace, so the paper's "
                    "rule treats them as possible hits too.\n");
    } else if (ensemble_hits == 0 && markov_hits > 0) {
        std::printf("\nStide (DW=%zu) could not corroborate this manifestation "
                    "— enlarge the window\nor trust the primary here: exactly "
                    "the trade-off the paper maps out.\n",
                    dw);
    }
    return 0;
}
