// deploy_persisted: the production loop — train once, persist, reload in a
// monitor process, score events as they arrive, and report alarm bursts.
//
// Demonstrates the persistence (io/model_io), online scoring (core/online),
// and alarm-event reporting (core/alarms) layers working together on a
// simulated server's system-call stream.
//
// Usage: ./examples/deploy_persisted [--window 6] [--model /tmp/monitor.adiv]
#include <cstdio>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("deploy_persisted",
                  "train, persist, reload, and monitor a live event stream");
    cli.add_option("window", "6", "detector window (DW)");
    cli.add_option("model", "/tmp/adiv_monitor.adiv", "model file path");
    if (!cli.parse(argc, argv)) return 0;
    const auto dw = static_cast<std::size_t>(cli.get_int("window"));
    const std::string model_path = cli.get("model");

    const TraceModel model = make_syscall_model();
    const Alphabet& names = model.alphabet();

    // ---- Training box: fit and persist -------------------------------
    {
        const EventStream training = model.generate(200'000, 31);
        MarkovDetector detector(dw);
        detector.train(training);
        save_detector_file(detector, model_path);
        std::printf("trained markov detector (DW=%zu) on %zu events and saved "
                    "to %s\n",
                    dw, training.size(), model_path.c_str());
    }

    // ---- Monitor box: reload and score a live stream ------------------
    const auto detector = load_detector_file(model_path);
    std::printf("monitor process loaded '%s' model, window %zu, alphabet %zu\n\n",
                detector->name().c_str(), detector->window_length(),
                detector->alphabet_size());

    // The live stream: fresh normal activity with one foreign incident.
    EventStream live = model.generate(12'288, 99);
    {
        const EventStream training = model.generate(200'000, 31);
        const SubsequenceOracle oracle(training);
        MfsConfig cfg;
        cfg.require_rare_composition = false;
        const Sequence attack = MfsBuilder(oracle, cfg).build(5);
        Sequence events = live.events();
        events.insert(events.begin() + 6'000, attack.begin(), attack.end());
        live = EventStream(names.size(), std::move(events));
        std::printf("live stream: %zu events; injected incident at 6000: %s\n\n",
                    live.size(), names.format(attack).c_str());
    }

    // Event-at-a-time scoring, as a tap on the audit stream would deliver it.
    OnlineScorer scorer(*detector);
    std::vector<double> responses;
    responses.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        if (const auto r = scorer.push(live[i])) responses.push_back(*r);

    const auto events = extract_alarm_events(responses);
    std::printf("%s\n", render_alarm_report(events, &live,
                                            detector->window_length(), &names)
                            .c_str());
    std::printf("(%zu alarm burst(s) over %zu scored windows)\n", events.size(),
                responses.size());
    std::remove(model_path.c_str());
    return 0;
}
