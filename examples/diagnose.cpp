// diagnose: Figure 1 of the paper as a command-line tool.
//
// Given an attack manifestation (a symbol sequence over the study corpus's
// alphabet) and a detector, walk the paper's decision tree: is it anomalous?
// is that kind of anomaly within the detector's coverage? is the deployed
// window tuned to catch it? The tool answers with evidence, not intuition —
// which is the paper's whole argument for measuring coverage.
//
// Usage:
//   ./examples/diagnose --detector stide --window 4 --manifestation "4 0 1 2 0"
//   ./examples/diagnose --detector markov --manifestation "0 0"
//   ./examples/diagnose                       # demo across several cases
#include <cstdio>
#include <sstream>

#include "adiv.hpp"

using namespace adiv;

namespace {

Sequence parse_manifestation(const std::string& text) {
    Sequence out;
    std::istringstream in(text);
    std::uint32_t v = 0;
    while (in >> v) out.push_back(v);
    return out;
}

void run_one(const TrainingCorpus& corpus, DetectorKind kind,
             const Sequence& manifestation, std::size_t deployed) {
    CapabilityQuery query;
    query.deployed_window = deployed;
    query.background_length = 2048;
    const CapabilityDiagnosis d = diagnose_capability(
        corpus, factory_for(kind), manifestation, query);
    std::printf("detector=%s deployed DW=%zu manifestation=[",
                to_string(kind).c_str(), deployed);
    for (std::size_t i = 0; i < manifestation.size(); ++i)
        std::printf("%s%u", i ? " " : "", manifestation[i]);
    std::printf("]\n  class   : %s\n  verdict : %s\n  %s\n\n",
                to_string(d.manifestation).c_str(), to_string(d.verdict).c_str(),
                d.explanation.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("diagnose", "Figure 1: can this detector catch this anomaly?");
    cli.add_option("detector", "stide",
                   "stide | t-stide | markov | lane-brodley | neural-net | hmm | "
                   "rule | lookahead-pairs");
    cli.add_option("window", "6", "deployed detector window");
    cli.add_option("manifestation", "",
                   "space-separated symbol ids; empty runs the demo cases");
    cli.add_option("training-length", "200000", "corpus training length");
    if (!cli.parse(argc, argv)) return 0;

    CorpusSpec spec;
    spec.training_length = static_cast<std::size_t>(cli.get_int("training-length"));
    const TrainingCorpus corpus = TrainingCorpus::generate(spec);

    const std::string text = cli.get("manifestation");
    if (!text.empty()) {
        run_one(corpus, detector_kind_from_string(cli.get("detector")),
                parse_manifestation(text),
                static_cast<std::size_t>(cli.get_int("window")));
        return 0;
    }

    // Demo: one manifestation of each class, two detectors, two tunings.
    const SubsequenceOracle oracle(corpus.training());
    const Sequence mfs = MfsBuilder(oracle).build(5);
    const Sequence rare = RareAnomalyBuilder(oracle).build(4);
    const Sequence common{0, 1, 2, 3};

    std::printf("== A common sequence is not anomalous at all ==\n");
    run_one(corpus, DetectorKind::Stide, common, 4);
    std::printf("== Stide vs a size-5 MFS: tuning decides ==\n");
    run_one(corpus, DetectorKind::Stide, mfs, 3);
    run_one(corpus, DetectorKind::Stide, mfs, 6);
    std::printf("== The Markov detector needs no tuning for the same MFS ==\n");
    run_one(corpus, DetectorKind::Markov, mfs, 3);
    std::printf("== A rare sequence is outside Stide's coverage entirely ==\n");
    run_one(corpus, DetectorKind::Stide, rare, 6);
    run_one(corpus, DetectorKind::Markov, rare, 6);
    return 0;
}
