// coverage_explorer: chart any detector's performance map over the
// (anomaly size x detector window) plane — the tool a defender would use to
// answer "under what conditions does my detector actually see this
// anomaly?" before deploying it.
//
// Usage:
//   ./examples/coverage_explorer --detector markov
//   ./examples/coverage_explorer --detector t-stide --max-window 10
//   ./examples/coverage_explorer --detector neural-net --nn-epochs 200
#include <cstdio>
#include <iostream>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("coverage_explorer",
                  "performance map of one detector over the AS x DW plane");
    cli.add_option("detector", "stide",
                   "stide | t-stide | markov | lane-brodley | neural-net");
    cli.add_option("training-length", "300000", "training stream length");
    cli.add_option("max-anomaly", "9", "largest anomaly size");
    cli.add_option("max-window", "15", "largest detector window");
    cli.add_option("background", "2048", "test-stream background length");
    cli.add_option("floor", "0.005",
                   "probability floor for markov/neural-net responses");
    cli.add_option("nn-epochs", "400", "neural-net training epochs");
    cli.add_flag("csv", "emit CSV instead of the chart");
    if (!cli.parse(argc, argv)) return 0;

    const DetectorKind kind = detector_kind_from_string(cli.get("detector"));

    CorpusSpec spec;
    spec.training_length = static_cast<std::size_t>(cli.get_int("training-length"));
    const TrainingCorpus corpus = TrainingCorpus::generate(spec);

    SuiteConfig cfg;
    cfg.max_anomaly_size = static_cast<std::size_t>(cli.get_int("max-anomaly"));
    cfg.max_window = static_cast<std::size_t>(cli.get_int("max-window"));
    cfg.background_length = static_cast<std::size_t>(cli.get_int("background"));
    const EvaluationSuite suite = EvaluationSuite::build(corpus, cfg);

    DetectorSettings settings;
    settings.markov.probability_floor = cli.get_double("floor");
    settings.nn.probability_floor = cli.get_double("floor");
    settings.nn.epochs = static_cast<std::size_t>(cli.get_int("nn-epochs"));

    const PerformanceMap map = run_map_experiment(
        suite, to_string(kind), factory_for(kind, settings));

    if (cli.get_flag("csv")) {
        map.write_csv(std::cout);
    } else {
        std::cout << map.render();
        std::printf("\ncapable %zu | weak %zu | blind %zu of %zu cells\n",
                    map.count(DetectionOutcome::Capable),
                    map.count(DetectionOutcome::Weak),
                    map.count(DetectionOutcome::Blind), map.cell_count());
    }
    return 0;
}
