// Quickstart: the adiv library in ~60 lines.
//
// 1. Generate the study's synthetic corpus (mostly a repeated cycle, a
//    little nondeterminism).
// 2. Synthesize a minimal foreign sequence (MFS) — an anomaly every
//    sequence-based detector should, in principle, be able to see.
// 3. Inject it into clean background data with validated boundaries.
// 4. Train two diverse detectors (Stide and Markov) and compare what each
//    actually sees.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "adiv.hpp"

using namespace adiv;

int main() {
    // 1. The corpus: 100k elements over an alphabet of 8 (the paper uses 1M;
    //    smaller here so the quickstart runs instantly).
    CorpusSpec spec;
    spec.training_length = 100'000;
    const TrainingCorpus corpus = TrainingCorpus::generate(spec);
    std::printf("corpus: %zu training elements, alphabet %zu\n",
                corpus.training().size(), spec.alphabet_size);

    // 2. A minimal foreign sequence of size 6, composed of rare training
    //    sub-sequences: foreign as a whole, every proper part present.
    const SubsequenceOracle oracle(corpus.training());
    const MfsBuilder builder(oracle);
    const Sequence anomaly = builder.build(6);
    std::printf("anomaly (MFS, size 6):");
    for (Symbol s : anomaly) std::printf(" %u", s);
    std::printf("\n  foreign: %s, minimal: %s\n",
                is_foreign(oracle, anomaly) ? "yes" : "no",
                is_minimal_foreign(oracle, anomaly) ? "yes" : "no");

    // 3. Inject it into clean background data, validated for detector
    //    window 4 (smaller than the anomaly — the interesting case).
    const std::size_t dw = 4;
    const Injector injector(corpus, oracle);
    const auto injected = injector.try_inject(anomaly, dw, 1024);
    if (!injected) {
        std::printf("injection failed; try another anomaly\n");
        return 1;
    }
    std::printf("injected at element %zu; incident span: windows %zu..%zu\n",
                injected->anomaly_pos, injected->span.first, injected->span.last);

    // 4. Train two diverse detectors at the same window and compare.
    StideDetector stide(dw);
    MarkovDetector markov(dw);
    stide.train(corpus.training());
    markov.train(corpus.training());

    const SpanScore s_stide =
        classify_span(stide.score(injected->stream), injected->span);
    const SpanScore s_markov =
        classify_span(markov.score(injected->stream), injected->span);
    std::printf("\nwith DW=%zu (< anomaly size %zu):\n", dw, anomaly.size());
    std::printf("  stide : %-7s (max response %.3f) — every in-span window "
                "exists in training\n",
                to_string(s_stide.outcome).c_str(), s_stide.max_response);
    std::printf("  markov: %-7s (max response %.3f) — the rare junction gives "
                "it away\n",
                to_string(s_markov.outcome).c_str(), s_markov.max_response);

    // With DW >= anomaly size, Stide sees the foreign window too.
    const std::size_t wide = anomaly.size();
    const auto injected_wide = injector.try_inject(anomaly, wide, 1024);
    StideDetector stide_wide(wide);
    stide_wide.train(corpus.training());
    const SpanScore s_wide =
        classify_span(stide_wide.score(injected_wide->stream), injected_wide->span);
    std::printf("\nwith DW=%zu (= anomaly size): stide is %s\n", wide,
                to_string(s_wide.outcome).c_str());
    std::printf("\nThat asymmetry — and what it means for combining detectors — "
                "is the paper's subject.\n");
    return 0;
}
