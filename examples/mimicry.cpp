// mimicry: what NO anomaly detector in this library can see.
//
// Wagner & Soto (reference [19] of the paper) showed that attacks can be
// re-encoded to manifest as normal behaviour; the paper's Figure 1 places
// such attacks outside the scope of any anomaly detector ("Is the
// manifestation anomalous? No -> attack not detectable"). This example makes
// that boundary concrete:
//
//   * a CRUDE attack inserts a foreign sequence -> every probabilistic
//     detector (and Stide, at a wide enough window) fires;
//   * the MIMICRY version performs its effect using only common training
//     sequences (a replayed normal routine) -> all seven detectors stay
//     silent, by construction.
//
// Usage: ./examples/mimicry [--window 6]
#include <algorithm>
#include <cstdio>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("mimicry", "a mimicry attack evades every detector");
    cli.add_option("window", "6", "detector window (DW)");
    if (!cli.parse(argc, argv)) return 0;
    const auto dw = static_cast<std::size_t>(cli.get_int("window"));

    const TraceModel model = make_syscall_model();
    const Alphabet& names = model.alphabet();
    const EventStream training = model.generate(200'000, 21);
    const SubsequenceOracle oracle(training);

    // The crude attack: a foreign syscall sequence (synthesized like the
    // study's anomalies).
    MfsConfig mfs_config;
    mfs_config.require_rare_composition = false;
    const Sequence crude = MfsBuilder(oracle, mfs_config).build(dw);

    // The mimicry attack: the same "slot" in the stream is filled with a
    // verbatim replay of the most common normal routine — the attacker
    // achieves the effect through behaviour the monitor has always seen.
    const Sequence& mimic = model.routine("serve_request");

    // Splice point: a mimicry attacker weaves into the victim's behaviour at
    // a routine boundary, not mid-routine (a cut inside a routine would
    // itself be an anomalous seam). Find where a serve_request routine begins
    // past the middle of the session and insert there.
    const EventStream base_session = model.generate(8'192, 77);
    const Sequence& marker = model.routine("serve_request");
    std::size_t splice = 4'096;
    {
        const auto& events = base_session.events();
        const auto it = std::search(events.begin() + 4'096, events.end(),
                                    marker.begin(), marker.end());
        if (it != events.end())
            splice = static_cast<std::size_t>(it - events.begin());
    }
    auto build_session = [&](const Sequence& payload) {
        Sequence events = base_session.events();
        events.insert(events.begin() + static_cast<std::ptrdiff_t>(splice),
                      payload.begin(), payload.end());
        return EventStream(names.size(), std::move(events));
    };
    const EventStream crude_session = build_session(crude);
    const EventStream mimic_session = build_session(mimic);

    std::printf("crude attack payload  : %s\n", names.format(crude).c_str());
    std::printf("mimicry attack payload: %s  (a verbatim normal routine)\n\n",
                names.format(mimic).c_str());

    DetectorSettings settings;
    settings.nn.epochs = 200;
    settings.hmm.iterations = 15;
    std::printf("%-14s %-28s %s\n", "detector",
                "alarms in crude-attack span", "alarms in mimicry span");
    for (DetectorKind kind : all_detectors()) {
        auto detector = make_detector(kind, dw, settings);
        detector->train(training);
        auto alarms_in_span = [&](const EventStream& session,
                                  std::size_t payload_size) {
            const IncidentSpan span =
                incident_span(splice, payload_size, dw, session.size());
            const auto responses = detector->score(session);
            std::size_t alarms = 0;
            for (std::size_t p = span.first; p <= span.last; ++p)
                alarms += responses[p] >= kMaximalResponse ? 1 : 0;
            return alarms;
        };
        std::printf("%-14s %-28zu %zu\n", detector->name().c_str(),
                    alarms_in_span(crude_session, crude.size()),
                    alarms_in_span(mimic_session, mimic.size()));
    }
    std::printf("\nEvery detector that can see the crude attack loses the "
                "mimicry version: when the\nmanifestation is normal behaviour, "
                "detection is out of scope for anomaly detection\n(Figure 1 of "
                "the paper) — diversity among anomaly detectors cannot buy it "
                "back.\n");
    return 0;
}
