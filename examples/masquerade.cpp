// masquerade: the Lane & Brodley detector in its home domain — user command
// streams — and why its similarity metric still under-reports foreign
// behaviour.
//
// A legitimate user's shell sessions train the detectors; a masquerader then
// types a command sequence that is FOREIGN to the user's history but shares
// most of its commands. The L&B similarity to the nearest normal window
// stays high (the masquerade looks "close to normal"), while the Markov
// detector flags the improbable transitions outright — the paper's Figure 7
// phenomenon on natural-looking data.
//
// Usage: ./examples/masquerade [--window 5]
#include <cstdio>

#include "adiv.hpp"

using namespace adiv;

int main(int argc, char** argv) {
    CliParser cli("masquerade",
                  "L&B vs Markov on a masquerading user's command stream");
    cli.add_option("window", "5", "detector window (DW)");
    cli.add_option("trace-length", "150000", "training trace length");
    if (!cli.parse(argc, argv)) return 0;
    const auto dw = static_cast<std::size_t>(cli.get_int("window"));

    const TraceModel user = make_command_model();
    const Alphabet& commands = user.alphabet();
    const EventStream training = user.generate(
        static_cast<std::size_t>(cli.get_int("trace-length")), /*seed=*/5);
    std::printf("user history: %zu commands over %zu distinct commands\n",
                training.size(), commands.size());

    // The masquerader's session: synthesized as a minimal foreign sequence of
    // the user's own commands — familiar vocabulary, unfamiliar order.
    const SubsequenceOracle oracle(training);
    MfsConfig cfg;
    cfg.require_rare_composition = false;
    const MfsBuilder builder(oracle, cfg);
    const Sequence masquerade = builder.build(dw);
    std::printf("masquerade sequence (size %zu, foreign to the history):\n  %s\n",
                masquerade.size(), commands.format(masquerade).c_str());

    LaneBrodleyDetector lb(dw);
    MarkovDetector markov(dw);
    lb.train(training);
    markov.train(training);

    // Score the masquerade window itself.
    const EventStream session(commands.size(), masquerade);
    const double lb_response = lb.score(session).front();
    const double markov_response = markov.score(session).front();
    const std::uint64_t sim = lb.max_similarity_to_normal(masquerade);
    const std::uint64_t sim_max = lane_brodley_max_similarity(dw);

    std::printf("\nlane-brodley: similarity to nearest normal window = %llu of "
                "%llu -> response %.3f\n",
                static_cast<unsigned long long>(sim),
                static_cast<unsigned long long>(sim_max), lb_response);
    std::printf("markov      : response %.3f%s\n", markov_response,
                markov_response >= kMaximalResponse ? "  (maximal -> alarm)" : "");

    std::printf("\nAt the study's detection threshold (maximal responses only):\n");
    std::printf("  lane-brodley %s the masquerade; markov %s it.\n",
                lb_response >= kMaximalResponse ? "flags" : "MISSES",
                markov_response >= kMaximalResponse ? "flags" : "misses");

    // What threshold would L&B need? And what does that cost on normal data?
    const EventStream fresh = user.generate(30'000, /*seed=*/99);
    const auto lb_normal = lb.score(fresh);
    std::size_t would_alarm = 0;
    for (double r : lb_normal)
        if (r >= lb_response - 1e-12) ++would_alarm;
    std::printf("\nTo catch it, L&B's threshold must drop to response >= %.3f; "
                "on a fresh normal\nsession of %zu commands that threshold "
                "also fires %zu times (%s of windows) --\nthe false-alarm cost "
                "Section 7 derives.\n",
                lb_response, fresh.size(), would_alarm,
                percent(static_cast<double>(would_alarm) /
                            static_cast<double>(lb_normal.size()), 2)
                    .c_str());
    return 0;
}
