# Empty compiler generated dependencies file for adiv_train.
# This may be replaced when dependencies are built.
