file(REMOVE_RECURSE
  "CMakeFiles/adiv_train.dir/adiv_train.cpp.o"
  "CMakeFiles/adiv_train.dir/adiv_train.cpp.o.d"
  "adiv_train"
  "adiv_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
