file(REMOVE_RECURSE
  "CMakeFiles/adiv_score.dir/adiv_score.cpp.o"
  "CMakeFiles/adiv_score.dir/adiv_score.cpp.o.d"
  "adiv_score"
  "adiv_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
