# Empty compiler generated dependencies file for adiv_score.
# This may be replaced when dependencies are built.
