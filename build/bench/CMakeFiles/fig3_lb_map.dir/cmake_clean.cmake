file(REMOVE_RECURSE
  "CMakeFiles/fig3_lb_map.dir/fig_map_main.cpp.o"
  "CMakeFiles/fig3_lb_map.dir/fig_map_main.cpp.o.d"
  "fig3_lb_map"
  "fig3_lb_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lb_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
