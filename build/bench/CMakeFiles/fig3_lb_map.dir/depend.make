# Empty dependencies file for fig3_lb_map.
# This may be replaced when dependencies are built.
