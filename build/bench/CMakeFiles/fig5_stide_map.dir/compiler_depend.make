# Empty compiler generated dependencies file for fig5_stide_map.
# This may be replaced when dependencies are built.
