
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_map_main.cpp" "bench/CMakeFiles/fig5_stide_map.dir/fig_map_main.cpp.o" "gcc" "bench/CMakeFiles/fig5_stide_map.dir/fig_map_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/adiv_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/adiv_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adiv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/anomaly/CMakeFiles/adiv_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/adiv_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
