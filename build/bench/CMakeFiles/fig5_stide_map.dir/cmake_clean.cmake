file(REMOVE_RECURSE
  "CMakeFiles/fig5_stide_map.dir/fig_map_main.cpp.o"
  "CMakeFiles/fig5_stide_map.dir/fig_map_main.cpp.o.d"
  "fig5_stide_map"
  "fig5_stide_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stide_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
