file(REMOVE_RECURSE
  "CMakeFiles/fig4_markov_map.dir/fig_map_main.cpp.o"
  "CMakeFiles/fig4_markov_map.dir/fig_map_main.cpp.o.d"
  "fig4_markov_map"
  "fig4_markov_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_markov_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
