# Empty compiler generated dependencies file for fig4_markov_map.
# This may be replaced when dependencies are built.
