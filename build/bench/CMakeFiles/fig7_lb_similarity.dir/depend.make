# Empty dependencies file for fig7_lb_similarity.
# This may be replaced when dependencies are built.
