file(REMOVE_RECURSE
  "CMakeFiles/fig7_lb_similarity.dir/fig7_lb_similarity.cpp.o"
  "CMakeFiles/fig7_lb_similarity.dir/fig7_lb_similarity.cpp.o.d"
  "fig7_lb_similarity"
  "fig7_lb_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lb_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
