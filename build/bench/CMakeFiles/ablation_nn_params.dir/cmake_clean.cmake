file(REMOVE_RECURSE
  "CMakeFiles/ablation_nn_params.dir/ablation_nn_params.cpp.o"
  "CMakeFiles/ablation_nn_params.dir/ablation_nn_params.cpp.o.d"
  "ablation_nn_params"
  "ablation_nn_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nn_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
