# Empty dependencies file for ablation_nn_params.
# This may be replaced when dependencies are built.
