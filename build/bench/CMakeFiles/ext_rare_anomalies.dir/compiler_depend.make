# Empty compiler generated dependencies file for ext_rare_anomalies.
# This may be replaced when dependencies are built.
