file(REMOVE_RECURSE
  "CMakeFiles/ext_rare_anomalies.dir/ext_rare_anomalies.cpp.o"
  "CMakeFiles/ext_rare_anomalies.dir/ext_rare_anomalies.cpp.o.d"
  "ext_rare_anomalies"
  "ext_rare_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rare_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
