file(REMOVE_RECURSE
  "CMakeFiles/ext_detector_maps.dir/ext_detector_maps.cpp.o"
  "CMakeFiles/ext_detector_maps.dir/ext_detector_maps.cpp.o.d"
  "ext_detector_maps"
  "ext_detector_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_detector_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
