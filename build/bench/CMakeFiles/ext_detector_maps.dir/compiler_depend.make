# Empty compiler generated dependencies file for ext_detector_maps.
# This may be replaced when dependencies are built.
