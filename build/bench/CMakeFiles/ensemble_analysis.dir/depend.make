# Empty dependencies file for ensemble_analysis.
# This may be replaced when dependencies are built.
