file(REMOVE_RECURSE
  "CMakeFiles/ensemble_analysis.dir/ensemble_analysis.cpp.o"
  "CMakeFiles/ensemble_analysis.dir/ensemble_analysis.cpp.o.d"
  "ensemble_analysis"
  "ensemble_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
