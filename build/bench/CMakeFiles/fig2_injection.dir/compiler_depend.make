# Empty compiler generated dependencies file for fig2_injection.
# This may be replaced when dependencies are built.
