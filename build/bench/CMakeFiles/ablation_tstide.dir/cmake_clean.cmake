file(REMOVE_RECURSE
  "CMakeFiles/ablation_tstide.dir/ablation_tstide.cpp.o"
  "CMakeFiles/ablation_tstide.dir/ablation_tstide.cpp.o.d"
  "ablation_tstide"
  "ablation_tstide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tstide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
