# Empty dependencies file for ablation_tstide.
# This may be replaced when dependencies are built.
