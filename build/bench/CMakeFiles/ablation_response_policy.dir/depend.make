# Empty dependencies file for ablation_response_policy.
# This may be replaced when dependencies are built.
