file(REMOVE_RECURSE
  "CMakeFiles/ablation_response_policy.dir/ablation_response_policy.cpp.o"
  "CMakeFiles/ablation_response_policy.dir/ablation_response_policy.cpp.o.d"
  "ablation_response_policy"
  "ablation_response_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_response_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
