file(REMOVE_RECURSE
  "CMakeFiles/adiv_bench_common.dir/common.cpp.o"
  "CMakeFiles/adiv_bench_common.dir/common.cpp.o.d"
  "libadiv_bench_common.a"
  "libadiv_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
