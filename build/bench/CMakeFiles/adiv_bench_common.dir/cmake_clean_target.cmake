file(REMOVE_RECURSE
  "libadiv_bench_common.a"
)
