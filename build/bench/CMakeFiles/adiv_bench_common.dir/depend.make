# Empty dependencies file for adiv_bench_common.
# This may be replaced when dependencies are built.
