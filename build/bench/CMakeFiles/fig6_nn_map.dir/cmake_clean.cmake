file(REMOVE_RECURSE
  "CMakeFiles/fig6_nn_map.dir/fig_map_main.cpp.o"
  "CMakeFiles/fig6_nn_map.dir/fig_map_main.cpp.o.d"
  "fig6_nn_map"
  "fig6_nn_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_nn_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
