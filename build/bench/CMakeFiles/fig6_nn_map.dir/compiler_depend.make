# Empty compiler generated dependencies file for fig6_nn_map.
# This may be replaced when dependencies are built.
