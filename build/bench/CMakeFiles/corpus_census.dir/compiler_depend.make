# Empty compiler generated dependencies file for corpus_census.
# This may be replaced when dependencies are built.
