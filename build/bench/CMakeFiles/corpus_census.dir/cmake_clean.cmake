file(REMOVE_RECURSE
  "CMakeFiles/corpus_census.dir/corpus_census.cpp.o"
  "CMakeFiles/corpus_census.dir/corpus_census.cpp.o.d"
  "corpus_census"
  "corpus_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
