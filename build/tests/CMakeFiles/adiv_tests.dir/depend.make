# Empty dependencies file for adiv_tests.
# This may be replaced when dependencies are built.
