
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anomaly/foreign_test.cpp" "tests/CMakeFiles/adiv_tests.dir/anomaly/foreign_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/anomaly/foreign_test.cpp.o.d"
  "/root/repo/tests/anomaly/injection_test.cpp" "tests/CMakeFiles/adiv_tests.dir/anomaly/injection_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/anomaly/injection_test.cpp.o.d"
  "/root/repo/tests/anomaly/mfs_builder_test.cpp" "tests/CMakeFiles/adiv_tests.dir/anomaly/mfs_builder_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/anomaly/mfs_builder_test.cpp.o.d"
  "/root/repo/tests/anomaly/oracle_test.cpp" "tests/CMakeFiles/adiv_tests.dir/anomaly/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/anomaly/oracle_test.cpp.o.d"
  "/root/repo/tests/anomaly/rare_anomaly_test.cpp" "tests/CMakeFiles/adiv_tests.dir/anomaly/rare_anomaly_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/anomaly/rare_anomaly_test.cpp.o.d"
  "/root/repo/tests/anomaly/suite_test.cpp" "tests/CMakeFiles/adiv_tests.dir/anomaly/suite_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/anomaly/suite_test.cpp.o.d"
  "/root/repo/tests/core/alarms_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/alarms_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/alarms_test.cpp.o.d"
  "/root/repo/tests/core/capability_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/capability_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/capability_test.cpp.o.d"
  "/root/repo/tests/core/diversity_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/diversity_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/diversity_test.cpp.o.d"
  "/root/repo/tests/core/ensemble_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/ensemble_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/ensemble_test.cpp.o.d"
  "/root/repo/tests/core/false_alarm_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/false_alarm_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/false_alarm_test.cpp.o.d"
  "/root/repo/tests/core/online_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/online_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/online_test.cpp.o.d"
  "/root/repo/tests/core/perf_map_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/perf_map_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/perf_map_test.cpp.o.d"
  "/root/repo/tests/core/response_test.cpp" "tests/CMakeFiles/adiv_tests.dir/core/response_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/core/response_test.cpp.o.d"
  "/root/repo/tests/datagen/corpus_test.cpp" "tests/CMakeFiles/adiv_tests.dir/datagen/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/datagen/corpus_test.cpp.o.d"
  "/root/repo/tests/datagen/markov_chain_test.cpp" "tests/CMakeFiles/adiv_tests.dir/datagen/markov_chain_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/datagen/markov_chain_test.cpp.o.d"
  "/root/repo/tests/datagen/trace_model_test.cpp" "tests/CMakeFiles/adiv_tests.dir/datagen/trace_model_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/datagen/trace_model_test.cpp.o.d"
  "/root/repo/tests/detect/hmm_detector_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/hmm_detector_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/hmm_detector_test.cpp.o.d"
  "/root/repo/tests/detect/lane_brodley_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/lane_brodley_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/lane_brodley_test.cpp.o.d"
  "/root/repo/tests/detect/lfc_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/lfc_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/lfc_test.cpp.o.d"
  "/root/repo/tests/detect/lookahead_pairs_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/lookahead_pairs_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/lookahead_pairs_test.cpp.o.d"
  "/root/repo/tests/detect/markov_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/markov_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/markov_test.cpp.o.d"
  "/root/repo/tests/detect/nn_detector_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/nn_detector_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/nn_detector_test.cpp.o.d"
  "/root/repo/tests/detect/registry_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/registry_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/registry_test.cpp.o.d"
  "/root/repo/tests/detect/rule_detector_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/rule_detector_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/rule_detector_test.cpp.o.d"
  "/root/repo/tests/detect/stide_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/stide_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/stide_test.cpp.o.d"
  "/root/repo/tests/detect/tstide_test.cpp" "tests/CMakeFiles/adiv_tests.dir/detect/tstide_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/detect/tstide_test.cpp.o.d"
  "/root/repo/tests/integration/all_detector_maps_test.cpp" "tests/CMakeFiles/adiv_tests.dir/integration/all_detector_maps_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/integration/all_detector_maps_test.cpp.o.d"
  "/root/repo/tests/integration/ensemble_claims_test.cpp" "tests/CMakeFiles/adiv_tests.dir/integration/ensemble_claims_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/integration/ensemble_claims_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/adiv_tests.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/maps_test.cpp" "tests/CMakeFiles/adiv_tests.dir/integration/maps_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/integration/maps_test.cpp.o.d"
  "/root/repo/tests/integration/rare_anomaly_maps_test.cpp" "tests/CMakeFiles/adiv_tests.dir/integration/rare_anomaly_maps_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/integration/rare_anomaly_maps_test.cpp.o.d"
  "/root/repo/tests/io/model_io_test.cpp" "tests/CMakeFiles/adiv_tests.dir/io/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/io/model_io_test.cpp.o.d"
  "/root/repo/tests/io/stream_io_test.cpp" "tests/CMakeFiles/adiv_tests.dir/io/stream_io_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/io/stream_io_test.cpp.o.d"
  "/root/repo/tests/nn/encoding_test.cpp" "tests/CMakeFiles/adiv_tests.dir/nn/encoding_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/nn/encoding_test.cpp.o.d"
  "/root/repo/tests/nn/hmm_test.cpp" "tests/CMakeFiles/adiv_tests.dir/nn/hmm_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/nn/hmm_test.cpp.o.d"
  "/root/repo/tests/nn/matrix_test.cpp" "tests/CMakeFiles/adiv_tests.dir/nn/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/nn/matrix_test.cpp.o.d"
  "/root/repo/tests/nn/mlp_test.cpp" "tests/CMakeFiles/adiv_tests.dir/nn/mlp_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/nn/mlp_test.cpp.o.d"
  "/root/repo/tests/seq/alphabet_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/alphabet_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/alphabet_test.cpp.o.d"
  "/root/repo/tests/seq/conditional_model_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/conditional_model_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/conditional_model_test.cpp.o.d"
  "/root/repo/tests/seq/ngram_table_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/ngram_table_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/ngram_table_test.cpp.o.d"
  "/root/repo/tests/seq/ngram_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/ngram_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/ngram_test.cpp.o.d"
  "/root/repo/tests/seq/stats_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/stats_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/stats_test.cpp.o.d"
  "/root/repo/tests/seq/stream_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/stream_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/stream_test.cpp.o.d"
  "/root/repo/tests/seq/types_test.cpp" "tests/CMakeFiles/adiv_tests.dir/seq/types_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/seq/types_test.cpp.o.d"
  "/root/repo/tests/support/corpus_fixture.cpp" "tests/CMakeFiles/adiv_tests.dir/support/corpus_fixture.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/support/corpus_fixture.cpp.o.d"
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/adiv_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/adiv_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/adiv_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/adiv_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/text_serial_test.cpp" "tests/CMakeFiles/adiv_tests.dir/util/text_serial_test.cpp.o" "gcc" "tests/CMakeFiles/adiv_tests.dir/util/text_serial_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/adiv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/adiv_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adiv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/anomaly/CMakeFiles/adiv_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/adiv_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
