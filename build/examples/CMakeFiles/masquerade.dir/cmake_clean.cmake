file(REMOVE_RECURSE
  "CMakeFiles/masquerade.dir/masquerade.cpp.o"
  "CMakeFiles/masquerade.dir/masquerade.cpp.o.d"
  "masquerade"
  "masquerade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masquerade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
