# Empty dependencies file for masquerade.
# This may be replaced when dependencies are built.
