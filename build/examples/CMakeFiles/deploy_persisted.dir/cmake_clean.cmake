file(REMOVE_RECURSE
  "CMakeFiles/deploy_persisted.dir/deploy_persisted.cpp.o"
  "CMakeFiles/deploy_persisted.dir/deploy_persisted.cpp.o.d"
  "deploy_persisted"
  "deploy_persisted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_persisted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
