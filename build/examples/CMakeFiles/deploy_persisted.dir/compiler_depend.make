# Empty compiler generated dependencies file for deploy_persisted.
# This may be replaced when dependencies are built.
