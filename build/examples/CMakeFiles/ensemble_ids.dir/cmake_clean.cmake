file(REMOVE_RECURSE
  "CMakeFiles/ensemble_ids.dir/ensemble_ids.cpp.o"
  "CMakeFiles/ensemble_ids.dir/ensemble_ids.cpp.o.d"
  "ensemble_ids"
  "ensemble_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
