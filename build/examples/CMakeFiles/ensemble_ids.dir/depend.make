# Empty dependencies file for ensemble_ids.
# This may be replaced when dependencies are built.
