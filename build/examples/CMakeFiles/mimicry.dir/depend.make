# Empty dependencies file for mimicry.
# This may be replaced when dependencies are built.
