file(REMOVE_RECURSE
  "CMakeFiles/mimicry.dir/mimicry.cpp.o"
  "CMakeFiles/mimicry.dir/mimicry.cpp.o.d"
  "mimicry"
  "mimicry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimicry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
