file(REMOVE_RECURSE
  "CMakeFiles/adiv_io.dir/model_io.cpp.o"
  "CMakeFiles/adiv_io.dir/model_io.cpp.o.d"
  "CMakeFiles/adiv_io.dir/stream_io.cpp.o"
  "CMakeFiles/adiv_io.dir/stream_io.cpp.o.d"
  "libadiv_io.a"
  "libadiv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
