file(REMOVE_RECURSE
  "libadiv_io.a"
)
