# Empty compiler generated dependencies file for adiv_io.
# This may be replaced when dependencies are built.
