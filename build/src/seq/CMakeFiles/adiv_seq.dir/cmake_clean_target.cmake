file(REMOVE_RECURSE
  "libadiv_seq.a"
)
