# Empty compiler generated dependencies file for adiv_seq.
# This may be replaced when dependencies are built.
