
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/alphabet.cpp" "src/seq/CMakeFiles/adiv_seq.dir/alphabet.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/alphabet.cpp.o.d"
  "/root/repo/src/seq/conditional_model.cpp" "src/seq/CMakeFiles/adiv_seq.dir/conditional_model.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/conditional_model.cpp.o.d"
  "/root/repo/src/seq/ngram.cpp" "src/seq/CMakeFiles/adiv_seq.dir/ngram.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/ngram.cpp.o.d"
  "/root/repo/src/seq/ngram_table.cpp" "src/seq/CMakeFiles/adiv_seq.dir/ngram_table.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/ngram_table.cpp.o.d"
  "/root/repo/src/seq/stats.cpp" "src/seq/CMakeFiles/adiv_seq.dir/stats.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/stats.cpp.o.d"
  "/root/repo/src/seq/stream.cpp" "src/seq/CMakeFiles/adiv_seq.dir/stream.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/stream.cpp.o.d"
  "/root/repo/src/seq/types.cpp" "src/seq/CMakeFiles/adiv_seq.dir/types.cpp.o" "gcc" "src/seq/CMakeFiles/adiv_seq.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
