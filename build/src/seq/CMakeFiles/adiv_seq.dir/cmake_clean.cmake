file(REMOVE_RECURSE
  "CMakeFiles/adiv_seq.dir/alphabet.cpp.o"
  "CMakeFiles/adiv_seq.dir/alphabet.cpp.o.d"
  "CMakeFiles/adiv_seq.dir/conditional_model.cpp.o"
  "CMakeFiles/adiv_seq.dir/conditional_model.cpp.o.d"
  "CMakeFiles/adiv_seq.dir/ngram.cpp.o"
  "CMakeFiles/adiv_seq.dir/ngram.cpp.o.d"
  "CMakeFiles/adiv_seq.dir/ngram_table.cpp.o"
  "CMakeFiles/adiv_seq.dir/ngram_table.cpp.o.d"
  "CMakeFiles/adiv_seq.dir/stats.cpp.o"
  "CMakeFiles/adiv_seq.dir/stats.cpp.o.d"
  "CMakeFiles/adiv_seq.dir/stream.cpp.o"
  "CMakeFiles/adiv_seq.dir/stream.cpp.o.d"
  "CMakeFiles/adiv_seq.dir/types.cpp.o"
  "CMakeFiles/adiv_seq.dir/types.cpp.o.d"
  "libadiv_seq.a"
  "libadiv_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
