file(REMOVE_RECURSE
  "libadiv_anomaly.a"
)
