# Empty compiler generated dependencies file for adiv_anomaly.
# This may be replaced when dependencies are built.
