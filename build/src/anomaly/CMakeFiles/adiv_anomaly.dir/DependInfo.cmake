
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/foreign.cpp" "src/anomaly/CMakeFiles/adiv_anomaly.dir/foreign.cpp.o" "gcc" "src/anomaly/CMakeFiles/adiv_anomaly.dir/foreign.cpp.o.d"
  "/root/repo/src/anomaly/injection.cpp" "src/anomaly/CMakeFiles/adiv_anomaly.dir/injection.cpp.o" "gcc" "src/anomaly/CMakeFiles/adiv_anomaly.dir/injection.cpp.o.d"
  "/root/repo/src/anomaly/mfs_builder.cpp" "src/anomaly/CMakeFiles/adiv_anomaly.dir/mfs_builder.cpp.o" "gcc" "src/anomaly/CMakeFiles/adiv_anomaly.dir/mfs_builder.cpp.o.d"
  "/root/repo/src/anomaly/rare_anomaly.cpp" "src/anomaly/CMakeFiles/adiv_anomaly.dir/rare_anomaly.cpp.o" "gcc" "src/anomaly/CMakeFiles/adiv_anomaly.dir/rare_anomaly.cpp.o.d"
  "/root/repo/src/anomaly/subsequence_oracle.cpp" "src/anomaly/CMakeFiles/adiv_anomaly.dir/subsequence_oracle.cpp.o" "gcc" "src/anomaly/CMakeFiles/adiv_anomaly.dir/subsequence_oracle.cpp.o.d"
  "/root/repo/src/anomaly/suite.cpp" "src/anomaly/CMakeFiles/adiv_anomaly.dir/suite.cpp.o" "gcc" "src/anomaly/CMakeFiles/adiv_anomaly.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/adiv_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
