file(REMOVE_RECURSE
  "CMakeFiles/adiv_anomaly.dir/foreign.cpp.o"
  "CMakeFiles/adiv_anomaly.dir/foreign.cpp.o.d"
  "CMakeFiles/adiv_anomaly.dir/injection.cpp.o"
  "CMakeFiles/adiv_anomaly.dir/injection.cpp.o.d"
  "CMakeFiles/adiv_anomaly.dir/mfs_builder.cpp.o"
  "CMakeFiles/adiv_anomaly.dir/mfs_builder.cpp.o.d"
  "CMakeFiles/adiv_anomaly.dir/rare_anomaly.cpp.o"
  "CMakeFiles/adiv_anomaly.dir/rare_anomaly.cpp.o.d"
  "CMakeFiles/adiv_anomaly.dir/subsequence_oracle.cpp.o"
  "CMakeFiles/adiv_anomaly.dir/subsequence_oracle.cpp.o.d"
  "CMakeFiles/adiv_anomaly.dir/suite.cpp.o"
  "CMakeFiles/adiv_anomaly.dir/suite.cpp.o.d"
  "libadiv_anomaly.a"
  "libadiv_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
