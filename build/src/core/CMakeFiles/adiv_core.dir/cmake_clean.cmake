file(REMOVE_RECURSE
  "CMakeFiles/adiv_core.dir/alarms.cpp.o"
  "CMakeFiles/adiv_core.dir/alarms.cpp.o.d"
  "CMakeFiles/adiv_core.dir/capability.cpp.o"
  "CMakeFiles/adiv_core.dir/capability.cpp.o.d"
  "CMakeFiles/adiv_core.dir/diversity.cpp.o"
  "CMakeFiles/adiv_core.dir/diversity.cpp.o.d"
  "CMakeFiles/adiv_core.dir/ensemble.cpp.o"
  "CMakeFiles/adiv_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/adiv_core.dir/experiment.cpp.o"
  "CMakeFiles/adiv_core.dir/experiment.cpp.o.d"
  "CMakeFiles/adiv_core.dir/false_alarm.cpp.o"
  "CMakeFiles/adiv_core.dir/false_alarm.cpp.o.d"
  "CMakeFiles/adiv_core.dir/online.cpp.o"
  "CMakeFiles/adiv_core.dir/online.cpp.o.d"
  "CMakeFiles/adiv_core.dir/perf_map.cpp.o"
  "CMakeFiles/adiv_core.dir/perf_map.cpp.o.d"
  "CMakeFiles/adiv_core.dir/response.cpp.o"
  "CMakeFiles/adiv_core.dir/response.cpp.o.d"
  "libadiv_core.a"
  "libadiv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
