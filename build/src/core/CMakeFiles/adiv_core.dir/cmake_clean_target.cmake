file(REMOVE_RECURSE
  "libadiv_core.a"
)
