# Empty dependencies file for adiv_core.
# This may be replaced when dependencies are built.
