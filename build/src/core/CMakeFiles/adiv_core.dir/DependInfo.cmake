
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alarms.cpp" "src/core/CMakeFiles/adiv_core.dir/alarms.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/alarms.cpp.o.d"
  "/root/repo/src/core/capability.cpp" "src/core/CMakeFiles/adiv_core.dir/capability.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/capability.cpp.o.d"
  "/root/repo/src/core/diversity.cpp" "src/core/CMakeFiles/adiv_core.dir/diversity.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/diversity.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/core/CMakeFiles/adiv_core.dir/ensemble.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/ensemble.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/adiv_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/false_alarm.cpp" "src/core/CMakeFiles/adiv_core.dir/false_alarm.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/false_alarm.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/adiv_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/online.cpp.o.d"
  "/root/repo/src/core/perf_map.cpp" "src/core/CMakeFiles/adiv_core.dir/perf_map.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/perf_map.cpp.o.d"
  "/root/repo/src/core/response.cpp" "src/core/CMakeFiles/adiv_core.dir/response.cpp.o" "gcc" "src/core/CMakeFiles/adiv_core.dir/response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anomaly/CMakeFiles/adiv_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/adiv_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/adiv_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adiv_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
