file(REMOVE_RECURSE
  "CMakeFiles/adiv_detect.dir/hmm_detector.cpp.o"
  "CMakeFiles/adiv_detect.dir/hmm_detector.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/lane_brodley.cpp.o"
  "CMakeFiles/adiv_detect.dir/lane_brodley.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/lfc.cpp.o"
  "CMakeFiles/adiv_detect.dir/lfc.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/lookahead_pairs.cpp.o"
  "CMakeFiles/adiv_detect.dir/lookahead_pairs.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/markov.cpp.o"
  "CMakeFiles/adiv_detect.dir/markov.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/nn_detector.cpp.o"
  "CMakeFiles/adiv_detect.dir/nn_detector.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/registry.cpp.o"
  "CMakeFiles/adiv_detect.dir/registry.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/rule_detector.cpp.o"
  "CMakeFiles/adiv_detect.dir/rule_detector.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/stide.cpp.o"
  "CMakeFiles/adiv_detect.dir/stide.cpp.o.d"
  "CMakeFiles/adiv_detect.dir/tstide.cpp.o"
  "CMakeFiles/adiv_detect.dir/tstide.cpp.o.d"
  "libadiv_detect.a"
  "libadiv_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
