file(REMOVE_RECURSE
  "libadiv_detect.a"
)
