# Empty compiler generated dependencies file for adiv_detect.
# This may be replaced when dependencies are built.
