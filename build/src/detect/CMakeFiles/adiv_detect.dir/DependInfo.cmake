
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/hmm_detector.cpp" "src/detect/CMakeFiles/adiv_detect.dir/hmm_detector.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/hmm_detector.cpp.o.d"
  "/root/repo/src/detect/lane_brodley.cpp" "src/detect/CMakeFiles/adiv_detect.dir/lane_brodley.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/lane_brodley.cpp.o.d"
  "/root/repo/src/detect/lfc.cpp" "src/detect/CMakeFiles/adiv_detect.dir/lfc.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/lfc.cpp.o.d"
  "/root/repo/src/detect/lookahead_pairs.cpp" "src/detect/CMakeFiles/adiv_detect.dir/lookahead_pairs.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/lookahead_pairs.cpp.o.d"
  "/root/repo/src/detect/markov.cpp" "src/detect/CMakeFiles/adiv_detect.dir/markov.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/markov.cpp.o.d"
  "/root/repo/src/detect/nn_detector.cpp" "src/detect/CMakeFiles/adiv_detect.dir/nn_detector.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/nn_detector.cpp.o.d"
  "/root/repo/src/detect/registry.cpp" "src/detect/CMakeFiles/adiv_detect.dir/registry.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/registry.cpp.o.d"
  "/root/repo/src/detect/rule_detector.cpp" "src/detect/CMakeFiles/adiv_detect.dir/rule_detector.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/rule_detector.cpp.o.d"
  "/root/repo/src/detect/stide.cpp" "src/detect/CMakeFiles/adiv_detect.dir/stide.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/stide.cpp.o.d"
  "/root/repo/src/detect/tstide.cpp" "src/detect/CMakeFiles/adiv_detect.dir/tstide.cpp.o" "gcc" "src/detect/CMakeFiles/adiv_detect.dir/tstide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adiv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
