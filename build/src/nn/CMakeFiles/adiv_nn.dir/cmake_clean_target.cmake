file(REMOVE_RECURSE
  "libadiv_nn.a"
)
