
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/encoding.cpp" "src/nn/CMakeFiles/adiv_nn.dir/encoding.cpp.o" "gcc" "src/nn/CMakeFiles/adiv_nn.dir/encoding.cpp.o.d"
  "/root/repo/src/nn/hmm.cpp" "src/nn/CMakeFiles/adiv_nn.dir/hmm.cpp.o" "gcc" "src/nn/CMakeFiles/adiv_nn.dir/hmm.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/adiv_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/adiv_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/adiv_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/adiv_nn.dir/mlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
