file(REMOVE_RECURSE
  "CMakeFiles/adiv_nn.dir/encoding.cpp.o"
  "CMakeFiles/adiv_nn.dir/encoding.cpp.o.d"
  "CMakeFiles/adiv_nn.dir/hmm.cpp.o"
  "CMakeFiles/adiv_nn.dir/hmm.cpp.o.d"
  "CMakeFiles/adiv_nn.dir/matrix.cpp.o"
  "CMakeFiles/adiv_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/adiv_nn.dir/mlp.cpp.o"
  "CMakeFiles/adiv_nn.dir/mlp.cpp.o.d"
  "libadiv_nn.a"
  "libadiv_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
