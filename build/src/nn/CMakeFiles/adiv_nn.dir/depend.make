# Empty dependencies file for adiv_nn.
# This may be replaced when dependencies are built.
