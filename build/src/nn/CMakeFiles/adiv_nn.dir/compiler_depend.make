# Empty compiler generated dependencies file for adiv_nn.
# This may be replaced when dependencies are built.
