file(REMOVE_RECURSE
  "CMakeFiles/adiv_util.dir/cli.cpp.o"
  "CMakeFiles/adiv_util.dir/cli.cpp.o.d"
  "CMakeFiles/adiv_util.dir/csv.cpp.o"
  "CMakeFiles/adiv_util.dir/csv.cpp.o.d"
  "CMakeFiles/adiv_util.dir/rng.cpp.o"
  "CMakeFiles/adiv_util.dir/rng.cpp.o.d"
  "CMakeFiles/adiv_util.dir/table.cpp.o"
  "CMakeFiles/adiv_util.dir/table.cpp.o.d"
  "libadiv_util.a"
  "libadiv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
