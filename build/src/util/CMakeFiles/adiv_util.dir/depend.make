# Empty dependencies file for adiv_util.
# This may be replaced when dependencies are built.
