file(REMOVE_RECURSE
  "libadiv_util.a"
)
