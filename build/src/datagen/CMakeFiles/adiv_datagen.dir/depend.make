# Empty dependencies file for adiv_datagen.
# This may be replaced when dependencies are built.
