file(REMOVE_RECURSE
  "CMakeFiles/adiv_datagen.dir/corpus.cpp.o"
  "CMakeFiles/adiv_datagen.dir/corpus.cpp.o.d"
  "CMakeFiles/adiv_datagen.dir/markov_chain.cpp.o"
  "CMakeFiles/adiv_datagen.dir/markov_chain.cpp.o.d"
  "CMakeFiles/adiv_datagen.dir/trace_model.cpp.o"
  "CMakeFiles/adiv_datagen.dir/trace_model.cpp.o.d"
  "libadiv_datagen.a"
  "libadiv_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiv_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
