
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/corpus.cpp" "src/datagen/CMakeFiles/adiv_datagen.dir/corpus.cpp.o" "gcc" "src/datagen/CMakeFiles/adiv_datagen.dir/corpus.cpp.o.d"
  "/root/repo/src/datagen/markov_chain.cpp" "src/datagen/CMakeFiles/adiv_datagen.dir/markov_chain.cpp.o" "gcc" "src/datagen/CMakeFiles/adiv_datagen.dir/markov_chain.cpp.o.d"
  "/root/repo/src/datagen/trace_model.cpp" "src/datagen/CMakeFiles/adiv_datagen.dir/trace_model.cpp.o" "gcc" "src/datagen/CMakeFiles/adiv_datagen.dir/trace_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/adiv_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adiv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
