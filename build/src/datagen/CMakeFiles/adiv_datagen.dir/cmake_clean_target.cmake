file(REMOVE_RECURSE
  "libadiv_datagen.a"
)
