#include "nn/matrix.hpp"

#include "util/error.hpp"

namespace adiv {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    require(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

void Matrix::randomize(Rng& rng, double scale) {
    require(scale >= 0.0, "randomize scale must be non-negative");
    for (double& v : data_) v = rng.uniform(-scale, scale);
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
    require(x.size() == cols_ && y.size() == rows_, "matrix multiply shape mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* w = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) acc += w[c] * x[c];
        y[r] = acc;
    }
}

void Matrix::multiply_transposed(std::span<const double> x,
                                 std::span<double> y) const {
    require(x.size() == rows_ && y.size() == cols_,
            "matrix transposed-multiply shape mismatch");
    for (std::size_t c = 0; c < cols_; ++c) y[c] = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        const double* w = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) y[c] += w[c] * xr;
    }
}

void Matrix::add_scaled(const Matrix& other, double alpha) {
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "matrix add shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

}  // namespace adiv
