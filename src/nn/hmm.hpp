// Discrete hidden Markov model: the probabilistic substrate for the HMM
// detector (Warrender, Forrest & Pearlmutter 1999 — the paper's reference
// [20] — evaluate an HMM alongside Stide and t-Stide as an "alternative data
// model" for system-call streams).
//
// The model is the classic (pi, A, B) triple over N hidden states and M
// observation symbols, trained with Baum-Welch (scaled forward-backward, so
// million-element sequences do not underflow) and queried through a scaled
// forward filter that yields one-step-ahead predictive probabilities
// P(x_t | x_1..x_{t-1}) — exactly the quantity the detector thresholds.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"
#include "seq/types.hpp"
#include "util/rng.hpp"

namespace adiv {

struct HmmConfig {
    std::size_t states = 8;            ///< hidden state count N
    std::size_t iterations = 30;       ///< Baum-Welch iterations
    double convergence = 1e-6;         ///< stop when log-likelihood gain/obs < this
    std::uint64_t seed = 7;            ///< random initialization seed
};

class Hmm {
public:
    /// Untrained model with randomized (row-stochastic) parameters.
    Hmm(std::size_t alphabet_size, HmmConfig config = {});

    [[nodiscard]] std::size_t states() const noexcept { return config_.states; }
    [[nodiscard]] std::size_t alphabet_size() const noexcept { return alphabet_size_; }
    [[nodiscard]] const HmmConfig& config() const noexcept { return config_; }

    /// Baum-Welch on one observation sequence. Returns the final
    /// log-likelihood per observation. Requires at least 2 observations.
    double fit(SymbolView observations);

    /// Log-likelihood per observation under the current parameters.
    [[nodiscard]] double log_likelihood(SymbolView observations) const;

    /// One-step-ahead predictive probabilities: out[t] = P(x_t | x_0..t-1),
    /// with out[0] = P(x_0). Same length as the input.
    [[nodiscard]] std::vector<double> predictive_probabilities(
        SymbolView observations) const;

    /// Incremental filter for streaming use: holds the current state belief.
    class Filter {
    public:
        explicit Filter(const Hmm& model);
        /// Probability of `symbol` being next, given everything consumed so
        /// far; then consumes it (updates the belief).
        double step(Symbol symbol);
        /// Resets the belief to the prior.
        void reset();

    private:
        const Hmm* model_;
        std::vector<double> belief_;  // P(state | consumed prefix)
        std::vector<double> scratch_;
    };

    // Parameter access (tests, serialization).
    [[nodiscard]] const std::vector<double>& initial() const noexcept { return pi_; }
    [[nodiscard]] const Matrix& transitions() const noexcept { return a_; }
    [[nodiscard]] const Matrix& emissions() const noexcept { return b_; }
    void set_parameters(std::vector<double> pi, Matrix transitions, Matrix emissions);

private:
    std::size_t alphabet_size_;
    HmmConfig config_;
    std::vector<double> pi_;  // N
    Matrix a_;                // N x N, row-stochastic
    Matrix b_;                // N x M, row-stochastic

    void randomize(Rng& rng);
};

}  // namespace adiv
