// Multilayer feed-forward network with sigmoid hidden layers, a softmax
// output layer, and full-batch gradient descent with momentum.
//
// This is the paper's neural-network detector substrate (Debar et al. 1992;
// Zurada's parameters: learning constant, number of hidden nodes, momentum
// constant). The network is trained to approximate the next-symbol
// conditional distribution of the training stream — training samples carry
// SOFT targets (the empirical distribution of continuations for a context)
// and weights (how often the context occurs), so the whole training stream is
// compressed into its distinct contexts without changing the optimum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace adiv {

struct MlpConfig {
    /// Unit counts per layer, including input and output; at least 2 entries.
    std::vector<std::size_t> layer_sizes;
    double learning_rate = 0.5;   ///< Zurada's learning constant
    double momentum = 0.9;        ///< momentum constant
    double init_scale = 0.5;      ///< uniform weight-init range
    std::uint64_t seed = 7;       ///< weight-init seed
};

/// One weighted training sample with a soft target distribution.
struct MlpSample {
    std::vector<double> input;    ///< size = input layer
    std::vector<double> target;   ///< size = output layer; sums to 1
    double weight = 1.0;          ///< relative contribution to the batch loss
};

class Mlp {
public:
    explicit Mlp(MlpConfig config);

    [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t input_size() const noexcept {
        return config_.layer_sizes.front();
    }
    [[nodiscard]] std::size_t output_size() const noexcept {
        return config_.layer_sizes.back();
    }

    /// Softmax class probabilities for one input.
    [[nodiscard]] std::vector<double> forward(std::span<const double> input) const;

    /// Weighted mean cross-entropy of the batch under current weights.
    [[nodiscard]] double loss(std::span<const MlpSample> batch) const;

    /// One full-batch gradient step with momentum; returns the pre-step loss.
    double train_epoch(std::span<const MlpSample> batch);

    /// Runs `epochs` epochs; returns the final loss().
    double train(std::span<const MlpSample> batch, std::size_t epochs);

    /// Flattened weights (for gradient checking and tests).
    [[nodiscard]] std::vector<double> parameters() const;
    void set_parameters(std::span<const double> params);

private:
    struct Layer {
        Matrix weights;        // out x in
        std::vector<double> bias;
        Matrix weight_velocity;
        std::vector<double> bias_velocity;
    };

    /// Activations per layer for one input (activations_[0] = input copy).
    void forward_internal(std::span<const double> input,
                          std::vector<std::vector<double>>& activations) const;

    MlpConfig config_;
    std::vector<Layer> layers_;
};

/// Numerically stable softmax over logits, in place.
void softmax_inplace(std::span<double> logits);

}  // namespace adiv
