// One-hot encoding of symbol contexts for the neural-network detector.
#pragma once

#include <vector>

#include "seq/types.hpp"

namespace adiv {

/// Encodes a context of K symbols over an alphabet of size N as a K*N vector
/// of 0/1 values: position k*N + context[k] is 1. Requires every symbol to be
/// inside the alphabet.
std::vector<double> one_hot_context(SymbolView context, std::size_t alphabet_size);

/// Input-vector size for contexts of the given length.
inline std::size_t one_hot_size(std::size_t context_length,
                                std::size_t alphabet_size) noexcept {
    return context_length * alphabet_size;
}

}  // namespace adiv
