// Dense row-major matrix of doubles — the minimal linear-algebra substrate
// for the multilayer feed-forward network. Deliberately small: the networks
// in this study have tens of units, so clarity beats BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace adiv {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
        return {&data_[r * cols_], cols_};
    }
    [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
        return {&data_[r * cols_], cols_};
    }

    [[nodiscard]] std::span<double> flat() noexcept { return data_; }
    [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

    void fill(double value) noexcept {
        for (double& v : data_) v = value;
    }

    /// Fills with uniform values in [-scale, scale]; used for weight init.
    void randomize(Rng& rng, double scale);

    /// y = W x (y sized rows()). Requires x.size() == cols().
    void multiply(std::span<const double> x, std::span<double> y) const;

    /// y = W^T x (y sized cols()). Requires x.size() == rows().
    void multiply_transposed(std::span<const double> x, std::span<double> y) const;

    /// this += alpha * other. Requires identical shape.
    void add_scaled(const Matrix& other, double alpha);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace adiv
