#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace adiv {

void softmax_inplace(std::span<double> logits) {
    double max_logit = logits[0];
    for (double v : logits) max_logit = std::max(max_logit, v);
    double sum = 0.0;
    for (double& v : logits) {
        v = std::exp(v - max_logit);
        sum += v;
    }
    for (double& v : logits) v /= sum;
}

namespace {
double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
    require(config_.layer_sizes.size() >= 2,
            "network needs at least input and output layers");
    for (std::size_t s : config_.layer_sizes)
        require(s > 0, "layer sizes must be positive");
    require(config_.learning_rate > 0.0, "learning rate must be positive");
    require(config_.momentum >= 0.0 && config_.momentum < 1.0,
            "momentum must be in [0,1)");

    Rng rng(config_.seed);
    layers_.reserve(config_.layer_sizes.size() - 1);
    for (std::size_t i = 0; i + 1 < config_.layer_sizes.size(); ++i) {
        Layer layer;
        const std::size_t in = config_.layer_sizes[i];
        const std::size_t out = config_.layer_sizes[i + 1];
        layer.weights = Matrix(out, in);
        layer.weights.randomize(rng, config_.init_scale);
        layer.bias.assign(out, 0.0);
        layer.weight_velocity = Matrix(out, in);
        layer.bias_velocity.assign(out, 0.0);
        layers_.push_back(std::move(layer));
    }
}

void Mlp::forward_internal(std::span<const double> input,
                           std::vector<std::vector<double>>& activations) const {
    require(input.size() == input_size(), "input size mismatch");
    activations.assign(layers_.size() + 1, {});
    activations[0].assign(input.begin(), input.end());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const Layer& layer = layers_[i];
        std::vector<double> z(layer.weights.rows());
        layer.weights.multiply(activations[i], z);
        for (std::size_t r = 0; r < z.size(); ++r) z[r] += layer.bias[r];
        if (i + 1 == layers_.size()) {
            softmax_inplace(z);
        } else {
            for (double& v : z) v = sigmoid(v);
        }
        activations[i + 1] = std::move(z);
    }
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
    std::vector<std::vector<double>> activations;
    forward_internal(input, activations);
    return std::move(activations.back());
}

double Mlp::loss(std::span<const MlpSample> batch) const {
    require(!batch.empty(), "loss over empty batch");
    double total_weight = 0.0;
    double total_loss = 0.0;
    for (const MlpSample& sample : batch) {
        const std::vector<double> y = forward(sample.input);
        double ce = 0.0;
        for (std::size_t c = 0; c < y.size(); ++c) {
            if (sample.target[c] > 0.0)
                ce -= sample.target[c] * std::log(std::max(y[c], 1e-300));
        }
        total_loss += sample.weight * ce;
        total_weight += sample.weight;
    }
    return total_loss / total_weight;
}

double Mlp::train_epoch(std::span<const MlpSample> batch) {
    require(!batch.empty(), "training over empty batch");

    std::vector<Matrix> weight_grads;
    std::vector<std::vector<double>> bias_grads;
    weight_grads.reserve(layers_.size());
    bias_grads.reserve(layers_.size());
    for (const Layer& layer : layers_) {
        weight_grads.emplace_back(layer.weights.rows(), layer.weights.cols());
        bias_grads.emplace_back(layer.bias.size(), 0.0);
    }

    double total_weight = 0.0;
    double total_loss = 0.0;
    std::vector<std::vector<double>> activations;
    for (const MlpSample& sample : batch) {
        require(sample.input.size() == input_size(), "sample input size mismatch");
        require(sample.target.size() == output_size(), "sample target size mismatch");
        require(sample.weight > 0.0, "sample weight must be positive");
        forward_internal(sample.input, activations);
        const std::vector<double>& y = activations.back();
        for (std::size_t c = 0; c < y.size(); ++c)
            if (sample.target[c] > 0.0)
                total_loss -=
                    sample.weight * sample.target[c] * std::log(std::max(y[c], 1e-300));
        total_weight += sample.weight;

        // Softmax + cross-entropy: output delta is (y - t), scaled by weight.
        std::vector<double> delta(y.size());
        for (std::size_t c = 0; c < y.size(); ++c)
            delta[c] = sample.weight * (y[c] - sample.target[c]);

        for (std::size_t i = layers_.size(); i > 0; --i) {
            const std::size_t li = i - 1;
            const std::vector<double>& in_act = activations[li];
            Matrix& wg = weight_grads[li];
            std::vector<double>& bg = bias_grads[li];
            for (std::size_t r = 0; r < delta.size(); ++r) {
                const double d = delta[r];
                if (d == 0.0) continue;
                auto row = wg.row(r);
                for (std::size_t c = 0; c < in_act.size(); ++c)
                    row[c] += d * in_act[c];
                bg[r] += d;
            }
            if (li == 0) break;
            std::vector<double> prev_delta(in_act.size());
            layers_[li].weights.multiply_transposed(delta, prev_delta);
            for (std::size_t c = 0; c < prev_delta.size(); ++c)
                prev_delta[c] *= in_act[c] * (1.0 - in_act[c]);  // sigmoid'
            delta = std::move(prev_delta);
        }
    }

    const double step = config_.learning_rate / total_weight;
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        auto vel = layer.weight_velocity.flat();
        auto grad = weight_grads[li].flat();
        auto w = layer.weights.flat();
        for (std::size_t i = 0; i < vel.size(); ++i) {
            vel[i] = config_.momentum * vel[i] - step * grad[i];
            w[i] += vel[i];
        }
        for (std::size_t r = 0; r < layer.bias.size(); ++r) {
            layer.bias_velocity[r] =
                config_.momentum * layer.bias_velocity[r] - step * bias_grads[li][r];
            layer.bias[r] += layer.bias_velocity[r];
        }
    }
    return total_loss / total_weight;
}

double Mlp::train(std::span<const MlpSample> batch, std::size_t epochs) {
    for (std::size_t e = 0; e < epochs; ++e) train_epoch(batch);
    return loss(batch);
}

std::vector<double> Mlp::parameters() const {
    std::vector<double> out;
    for (const Layer& layer : layers_) {
        const auto flat = layer.weights.flat();
        out.insert(out.end(), flat.begin(), flat.end());
        out.insert(out.end(), layer.bias.begin(), layer.bias.end());
    }
    return out;
}

void Mlp::set_parameters(std::span<const double> params) {
    std::size_t offset = 0;
    for (Layer& layer : layers_) {
        auto flat = layer.weights.flat();
        require(offset + flat.size() + layer.bias.size() <= params.size(),
                "parameter vector too short");
        std::copy(params.begin() + static_cast<std::ptrdiff_t>(offset),
                  params.begin() + static_cast<std::ptrdiff_t>(offset + flat.size()),
                  flat.begin());
        offset += flat.size();
        std::copy(params.begin() + static_cast<std::ptrdiff_t>(offset),
                  params.begin() +
                      static_cast<std::ptrdiff_t>(offset + layer.bias.size()),
                  layer.bias.begin());
        offset += layer.bias.size();
    }
    require(offset == params.size(), "parameter vector size mismatch");
}

}  // namespace adiv
