#include "nn/hmm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace adiv {

Hmm::Hmm(std::size_t alphabet_size, HmmConfig config)
    : alphabet_size_(alphabet_size),
      config_(config),
      pi_(config.states, 0.0),
      a_(config.states == 0 ? 1 : config.states, config.states == 0 ? 1 : config.states),
      b_(config.states == 0 ? 1 : config.states, alphabet_size == 0 ? 1 : alphabet_size) {
    require(alphabet_size > 0, "alphabet size must be positive");
    require(config.states >= 1, "HMM needs at least one state");
    require(config.iterations >= 1, "HMM needs at least one Baum-Welch iteration");
    Rng rng(config.seed);
    randomize(rng);
}

void Hmm::randomize(Rng& rng) {
    const std::size_t n = config_.states;
    auto normalize = [](double* row, std::size_t len) {
        double sum = 0.0;
        for (std::size_t i = 0; i < len; ++i) sum += row[i];
        for (std::size_t i = 0; i < len; ++i) row[i] /= sum;
    };
    for (std::size_t i = 0; i < n; ++i) pi_[i] = 1.0 + rng.uniform();
    normalize(pi_.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a_.at(i, j) = 1.0 + rng.uniform();
        normalize(&a_.at(i, 0), n);
        // Symmetry breaking: a near-uniform emission init leaves Baum-Welch
        // in the uniform saddle for many iterations; biasing each state
        // toward a distinct symbol gives the states identities to refine.
        for (std::size_t k = 0; k < alphabet_size_; ++k)
            b_.at(i, k) = 0.25 + 0.25 * rng.uniform() +
                          (k == i % alphabet_size_ ? 2.0 : 0.0);
        normalize(&b_.at(i, 0), alphabet_size_);
    }
}

void Hmm::set_parameters(std::vector<double> pi, Matrix transitions,
                         Matrix emissions) {
    require(pi.size() == config_.states, "pi size mismatch");
    require(transitions.rows() == config_.states &&
                transitions.cols() == config_.states,
            "transition matrix shape mismatch");
    require(emissions.rows() == config_.states &&
                emissions.cols() == alphabet_size_,
            "emission matrix shape mismatch");
    pi_ = std::move(pi);
    a_ = std::move(transitions);
    b_ = std::move(emissions);
}

namespace {
/// Scaled forward pass. alpha is T x N row-major; scales[t] is the inverse
/// normalizer at step t. Returns total log-likelihood.
double forward_scaled(const std::vector<double>& pi, const Matrix& a,
                      const Matrix& b, SymbolView obs, std::vector<double>& alpha,
                      std::vector<double>& scales) {
    const std::size_t n = pi.size();
    const std::size_t t_max = obs.size();
    alpha.assign(t_max * n, 0.0);
    scales.assign(t_max, 0.0);
    double log_like = 0.0;
    for (std::size_t i = 0; i < n; ++i) alpha[i] = pi[i] * b.at(i, obs[0]);
    for (std::size_t t = 0; t < t_max; ++t) {
        double* cur = &alpha[t * n];
        if (t > 0) {
            const double* prev = &alpha[(t - 1) * n];
            for (std::size_t j = 0; j < n; ++j) {
                double acc = 0.0;
                for (std::size_t i = 0; i < n; ++i) acc += prev[i] * a.at(i, j);
                cur[j] = acc * b.at(j, obs[t]);
            }
        }
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) sum += cur[j];
        if (sum <= 0.0) sum = 1e-300;  // degenerate: observation impossible
        scales[t] = 1.0 / sum;
        for (std::size_t j = 0; j < n; ++j) cur[j] *= scales[t];
        log_like += std::log(sum);
    }
    return log_like;
}
}  // namespace

double Hmm::log_likelihood(SymbolView observations) const {
    require(!observations.empty(), "log-likelihood of empty sequence");
    for (Symbol s : observations)
        require(s < alphabet_size_, "observation outside alphabet");
    std::vector<double> alpha, scales;
    const double ll =
        forward_scaled(pi_, a_, b_, observations, alpha, scales);
    return ll / static_cast<double>(observations.size());
}

double Hmm::fit(SymbolView obs) {
    require(obs.size() >= 2, "Baum-Welch needs at least 2 observations");
    for (Symbol s : obs) require(s < alphabet_size_, "observation outside alphabet");

    const std::size_t n = config_.states;
    const std::size_t t_max = obs.size();
    std::vector<double> alpha, beta(t_max * n), scales;
    double prev_ll = -1e300;

    for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
        const double ll = forward_scaled(pi_, a_, b_, obs, alpha, scales);

        // Scaled backward pass (same scales as forward).
        for (std::size_t j = 0; j < n; ++j) beta[(t_max - 1) * n + j] = scales[t_max - 1];
        for (std::size_t t = t_max - 1; t > 0; --t) {
            const double* next = &beta[t * n];
            double* cur = &beta[(t - 1) * n];
            for (std::size_t i = 0; i < n; ++i) {
                double acc = 0.0;
                for (std::size_t j = 0; j < n; ++j)
                    acc += a_.at(i, j) * b_.at(j, obs[t]) * next[j];
                cur[i] = acc * scales[t - 1];
            }
        }

        // Accumulate expected counts.
        Matrix a_num(n, n, 0.0);
        Matrix b_num(n, alphabet_size_, 0.0);
        std::vector<double> a_den(n, 0.0), b_den(n, 0.0), pi_new(n, 0.0);
        for (std::size_t t = 0; t < t_max; ++t) {
            const double* al = &alpha[t * n];
            const double* be = &beta[t * n];
            for (std::size_t i = 0; i < n; ++i) {
                // gamma_t(i) proportional to alpha*beta / scale_t (scaled
                // quantities already fold the normalizers in).
                const double gamma = al[i] * be[i] / scales[t];
                b_num.at(i, obs[t]) += gamma;
                b_den[i] += gamma;
                if (t == 0) pi_new[i] = gamma;
                if (t + 1 < t_max) {
                    a_den[i] += gamma;
                    const double* be_next = &beta[(t + 1) * n];
                    for (std::size_t j = 0; j < n; ++j) {
                        const double xi =
                            al[i] * a_.at(i, j) * b_.at(j, obs[t + 1]) * be_next[j];
                        a_num.at(i, j) += xi;
                    }
                }
            }
        }

        // Re-estimate with a tiny floor so no probability hits exact zero
        // (zero rows would freeze Baum-Welch).
        const double eps = 1e-12;
        for (std::size_t i = 0; i < n; ++i) {
            pi_[i] = pi_new[i];
            for (std::size_t j = 0; j < n; ++j)
                a_.at(i, j) = (a_num.at(i, j) + eps) / (a_den[i] + eps * static_cast<double>(n));
            for (std::size_t k = 0; k < alphabet_size_; ++k)
                b_.at(i, k) = (b_num.at(i, k) + eps) /
                              (b_den[i] + eps * static_cast<double>(alphabet_size_));
        }
        double pi_sum = 0.0;
        for (double v : pi_) pi_sum += v;
        for (double& v : pi_) v = pi_sum > 0.0 ? v / pi_sum : 1.0 / static_cast<double>(n);

        if (ll - prev_ll <
            config_.convergence * static_cast<double>(t_max) && iter > 0)
            break;
        prev_ll = ll;
    }
    return log_likelihood(obs);
}

std::vector<double> Hmm::predictive_probabilities(SymbolView observations) const {
    std::vector<double> out;
    out.reserve(observations.size());
    Filter filter(*this);
    for (Symbol s : observations) out.push_back(filter.step(s));
    return out;
}

Hmm::Filter::Filter(const Hmm& model)
    : model_(&model), belief_(model.pi_), scratch_(model.states(), 0.0) {}

void Hmm::Filter::reset() { belief_ = model_->pi_; }

double Hmm::Filter::step(Symbol symbol) {
    require(symbol < model_->alphabet_size_, "observation outside alphabet");
    const std::size_t n = model_->states();
    // P(x | prefix) = sum_j belief(j) * B(j, x), where belief is the
    // predictive state distribution (already propagated through A).
    double prob = 0.0;
    for (std::size_t j = 0; j < n; ++j)
        prob += belief_[j] * model_->b_.at(j, symbol);
    // Condition on the observation...
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        scratch_[j] = belief_[j] * model_->b_.at(j, symbol);
        sum += scratch_[j];
    }
    if (sum <= 0.0) {
        // Impossible observation: reset to the prior rather than divide by 0.
        scratch_ = model_->pi_;
        sum = 1.0;
    }
    for (std::size_t j = 0; j < n; ++j) scratch_[j] /= sum;
    // ...and propagate one step through the transition matrix.
    for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += scratch_[i] * model_->a_.at(i, j);
        belief_[j] = acc;
    }
    return prob;
}

}  // namespace adiv
