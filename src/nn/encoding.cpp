#include "nn/encoding.hpp"

#include "util/error.hpp"

namespace adiv {

std::vector<double> one_hot_context(SymbolView context, std::size_t alphabet_size) {
    std::vector<double> out(context.size() * alphabet_size, 0.0);
    for (std::size_t k = 0; k < context.size(); ++k) {
        require(context[k] < alphabet_size, "context symbol outside alphabet");
        out[k * alphabet_size + context[k]] = 1.0;
    }
    return out;
}

}  // namespace adiv
