#include "core/response.hpp"

#include "detect/detector.hpp"
#include "util/error.hpp"

namespace adiv {

std::string to_string(DetectionOutcome outcome) {
    switch (outcome) {
        case DetectionOutcome::Blind: return "blind";
        case DetectionOutcome::Weak: return "weak";
        case DetectionOutcome::Capable: return "capable";
    }
    ADIV_UNREACHABLE("unhandled outcome");
}

char outcome_glyph(DetectionOutcome outcome) noexcept {
    switch (outcome) {
        case DetectionOutcome::Blind: return '.';
        case DetectionOutcome::Weak: return '+';
        case DetectionOutcome::Capable: return '*';
    }
    return '?';
}

SpanScore classify_span(std::span<const double> responses, const IncidentSpan& span) {
    require(span.last < responses.size(),
            "incident span extends past the response vector");
    SpanScore score;
    score.max_response = 0.0;
    score.argmax_window = span.first;
    for (std::size_t pos = span.first; pos <= span.last; ++pos) {
        if (responses[pos] > score.max_response) {
            score.max_response = responses[pos];
            score.argmax_window = pos;
        }
    }
    if (score.max_response >= kMaximalResponse) {
        score.outcome = DetectionOutcome::Capable;
    } else if (score.max_response > kZeroResponse) {
        score.outcome = DetectionOutcome::Weak;
    } else {
        score.outcome = DetectionOutcome::Blind;
    }
    return score;
}

}  // namespace adiv
