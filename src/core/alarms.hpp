// Alarm events: the operator-facing view of detector responses.
//
// A response vector is a per-window signal; what an operator acts on is a
// contiguous BURST of alarming windows — one incident, however many windows
// it lights up. extract_alarm_events groups threshold crossings into events
// with their peak evidence; the report renderer prints them with optional
// symbol context.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "seq/alphabet.hpp"

namespace adiv {

struct AlarmEvent {
    std::size_t first_window = 0;  ///< first alarming window position
    std::size_t last_window = 0;   ///< last alarming window position (inclusive)
    double peak_response = 0.0;    ///< strongest response within the event
    std::size_t peak_window = 0;   ///< window position of the peak

    [[nodiscard]] std::size_t window_count() const noexcept {
        return last_window - first_window + 1;
    }
};

/// Groups consecutive responses at or above `threshold` into events.
std::vector<AlarmEvent> extract_alarm_events(std::span<const double> responses,
                                             double threshold = kMaximalResponse);

/// Renders the events as an aligned table. When stream and window_length are
/// provided, each event row includes the symbols of its peak window
/// (formatted through `alphabet` when given, ids otherwise).
std::string render_alarm_report(const std::vector<AlarmEvent>& events,
                                const EventStream* stream = nullptr,
                                std::size_t window_length = 0,
                                const Alphabet* alphabet = nullptr);

}  // namespace adiv
