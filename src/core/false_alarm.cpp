#include "core/false_alarm.hpp"

#include "util/error.hpp"

namespace adiv {

std::vector<bool> alarms_from_responses(std::span<const double> responses,
                                        double threshold) {
    std::vector<bool> out(responses.size());
    for (std::size_t i = 0; i < responses.size(); ++i)
        out[i] = responses[i] >= threshold;
    return out;
}

FalseAlarmResult measure_false_alarms(const SequenceDetector& detector,
                                      const EventStream& normal_stream,
                                      double threshold) {
    const std::vector<double> responses = detector.score(normal_stream);
    FalseAlarmResult result;
    result.detector = detector.name();
    result.window_length = detector.window_length();
    result.windows = responses.size();
    for (double r : responses)
        if (r >= threshold) ++result.alarms;
    return result;
}

CombinedAlarmResult measure_combined_alarms(const SequenceDetector& a,
                                            const SequenceDetector& b,
                                            const EventStream& stream,
                                            double threshold) {
    require(a.window_length() == b.window_length(),
            "combined alarms require equal detector windows");
    const std::vector<double> ra = a.score(stream);
    const std::vector<double> rb = b.score(stream);
    ADIV_ASSERT(ra.size() == rb.size());
    CombinedAlarmResult result;
    result.windows = ra.size();
    for (std::size_t i = 0; i < ra.size(); ++i) {
        const bool alarm_a = ra[i] >= threshold;
        const bool alarm_b = rb[i] >= threshold;
        result.alarms_a += alarm_a ? 1 : 0;
        result.alarms_b += alarm_b ? 1 : 0;
        result.alarms_and += (alarm_a && alarm_b) ? 1 : 0;
        result.alarms_or += (alarm_a || alarm_b) ? 1 : 0;
    }
    return result;
}

bool hits_anomaly(const SequenceDetector& detector, const InjectedStream& injected,
                  double threshold) {
    require(detector.window_length() == injected.window_length,
            "detector window does not match the injected stream's window");
    const std::vector<double> responses = detector.score(injected.stream);
    for (std::size_t pos = injected.span.first; pos <= injected.span.last; ++pos)
        if (responses[pos] >= threshold) return true;
    return false;
}

}  // namespace adiv
