// Diversity metrics between detector coverages.
//
// "Diversity, then, enhances detection coverage by combining the coverages of
// individual detectors" — the question the paper measures is how much, and
// where. These metrics quantify pairwise relations between two performance
// maps: overlap, subset structure, and the marginal coverage gained by adding
// one detector to another.
#pragma once

#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/perf_map.hpp"

namespace adiv {

struct PairwiseDiversity {
    std::string detector_a;
    std::string detector_b;
    std::size_t coverage_a = 0;       ///< |capable(A)|
    std::size_t coverage_b = 0;       ///< |capable(B)|
    std::size_t overlap = 0;          ///< |A ∩ B|
    std::size_t union_size = 0;       ///< |A ∪ B|
    std::size_t gain_b_adds_to_a = 0; ///< |B \ A| — cells B contributes
    std::size_t gain_a_adds_to_b = 0; ///< |A \ B|
    bool a_subset_of_b = false;
    bool b_subset_of_a = false;
    double jaccard = 0.0;
};

/// Pairwise analysis of two maps over the same grid.
PairwiseDiversity analyze_pair(const PerformanceMap& a, const PerformanceMap& b);

/// All pairwise analyses for a collection of maps (i < j order).
std::vector<PairwiseDiversity> analyze_all_pairs(
    const std::vector<const PerformanceMap*>& maps);

/// Human-readable one-line verdict for a pair, e.g.
/// "stide ⊂ markov: combining adds no coverage beyond markov alone".
std::string describe_pair(const PairwiseDiversity& d);

}  // namespace adiv
