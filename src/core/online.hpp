// Online scoring: push events one at a time, receive per-window responses —
// the deployment-facing wrapper around the batch detectors.
//
// The scorer keeps a bounded buffer of recent events. Each push that
// completes a window scores the buffered suffix with the wrapped detector
// and emits the newest window's response. For the window-local detectors
// (Stide, t-Stide, Markov, L&B, neural net, rule) this is EXACTLY the value
// batch score() would produce at that position. The HMM detector conditions
// on the entire stream prefix, so its online responses are computed from a
// bounded restart horizon (the buffer) — an approximation that converges to
// the batch value as the buffer grows; buffer_capacity controls the
// trade-off.
//
// Instrumentation: every scorer reports to a metrics registry (the
// process-global one unless a test injects its own):
//   online.events_consumed   counter, one per push
//   online.push_latency_us   histogram over per-push wall time
//   online.alarm_rate        gauge, maximal-response windows / windows scored
// Scorer-local accessors (events_consumed, windows_scored, alarms) expose
// the same quantities without the registry; registry metrics are cumulative
// across scorers and survive reset().
#pragma once

#include <deque>
#include <optional>

#include "detect/detector.hpp"
#include "obs/metrics.hpp"

namespace adiv {

class OnlineScorer {
public:
    /// The detector must be trained and must outlive the scorer.
    /// buffer_capacity is clamped to at least the detector window.
    explicit OnlineScorer(const SequenceDetector& detector,
                          std::size_t buffer_capacity = 0,
                          MetricsRegistry& metrics = global_metrics());

    /// Consumes one event. Returns the response of the window ending at this
    /// event, or nullopt while fewer than DW events have been seen.
    std::optional<double> push(Symbol event);

    /// Events consumed since construction or the last reset.
    [[nodiscard]] std::size_t events_consumed() const noexcept { return consumed_; }

    /// Windows scored (pushes that returned a response) since construction
    /// or the last reset.
    [[nodiscard]] std::size_t windows_scored() const noexcept { return windows_; }

    /// Scored windows whose response was maximal (>= kMaximalResponse).
    [[nodiscard]] std::size_t alarms() const noexcept { return alarms_; }

    /// alarms() / windows_scored(); 0 before the first scored window.
    [[nodiscard]] double alarm_rate() const noexcept {
        return windows_ == 0 ? 0.0
                             : static_cast<double>(alarms_) /
                                   static_cast<double>(windows_);
    }

    /// Drops all buffered history (e.g. at a session boundary).
    void reset();

    [[nodiscard]] const SequenceDetector& detector() const noexcept {
        return *detector_;
    }

private:
    const SequenceDetector* detector_;
    std::size_t capacity_;
    std::size_t alphabet_size_;
    std::deque<Symbol> buffer_;
    std::size_t consumed_ = 0;
    std::size_t windows_ = 0;
    std::size_t alarms_ = 0;
    Counter& events_counter_;
    Histogram& push_latency_us_;
    Gauge& alarm_rate_gauge_;
};

}  // namespace adiv
