// Online scoring: push events one at a time, receive per-window responses —
// the deployment-facing wrapper around the batch detectors.
//
// The scorer keeps a bounded buffer of recent events. Each push that
// completes a window scores the buffered suffix with the wrapped detector
// and emits the newest window's response. For the window-local detectors
// (Stide, t-Stide, Markov, L&B, neural net, rule) this is EXACTLY the value
// batch score() would produce at that position. The HMM detector conditions
// on the entire stream prefix, so its online responses are computed from a
// bounded restart horizon (the buffer) — an approximation that converges to
// the batch value as the buffer grows; buffer_capacity controls the
// trade-off.
#pragma once

#include <deque>
#include <optional>

#include "detect/detector.hpp"

namespace adiv {

class OnlineScorer {
public:
    /// The detector must be trained and must outlive the scorer.
    /// buffer_capacity is clamped to at least the detector window.
    explicit OnlineScorer(const SequenceDetector& detector,
                          std::size_t buffer_capacity = 0);

    /// Consumes one event. Returns the response of the window ending at this
    /// event, or nullopt while fewer than DW events have been seen.
    std::optional<double> push(Symbol event);

    /// Events consumed since construction or the last reset.
    [[nodiscard]] std::size_t events_consumed() const noexcept { return consumed_; }

    /// Drops all buffered history (e.g. at a session boundary).
    void reset();

    [[nodiscard]] const SequenceDetector& detector() const noexcept {
        return *detector_;
    }

private:
    const SequenceDetector* detector_;
    std::size_t capacity_;
    std::size_t alphabet_size_;
    std::deque<Symbol> buffer_;
    std::size_t consumed_ = 0;
};

}  // namespace adiv
