// Scoring detector responses over an incident span (Section 5.5).
//
// With the detection threshold set to 1 for all detectors, a detector is
//   * CAPABLE when at least one response of 1 (maximal) occurs in the
//     incident span — the starred cells of the performance maps;
//   * WEAK when the maximum span response is strictly between 0 and 1 —
//     something abnormal registered, but not maximally;
//   * BLIND when every span response is 0 — the anomaly was perceived as
//     completely normal.
// The paper's charts draw only capable (star) vs everything else ("blind
// region"); this library keeps the finer three-way outcome and the figure
// renderer shows all three.
#pragma once

#include <span>
#include <string>

#include "anomaly/injection.hpp"

namespace adiv {

enum class DetectionOutcome { Blind, Weak, Capable };

std::string to_string(DetectionOutcome outcome);

/// Map glyph: '*' capable, '+' weak, '.' blind.
char outcome_glyph(DetectionOutcome outcome) noexcept;

/// A classified span: the outcome plus the evidence behind it.
struct SpanScore {
    DetectionOutcome outcome = DetectionOutcome::Blind;
    double max_response = 0.0;     ///< maximum response inside the span
    std::size_t argmax_window = 0; ///< window position attaining the maximum
};

/// Classifies the responses of one test stream over its incident span.
/// `responses` must hold one entry per window position of the stream the
/// span was computed for.
SpanScore classify_span(std::span<const double> responses, const IncidentSpan& span);

}  // namespace adiv
