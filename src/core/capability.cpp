#include "core/capability.hpp"

#include <algorithm>

#include "anomaly/rare_anomaly.hpp"
#include "anomaly/subsequence_oracle.hpp"
#include "core/response.hpp"
#include "util/error.hpp"

namespace adiv {

std::string to_string(ManifestationClass c) {
    switch (c) {
        case ManifestationClass::Common: return "common";
        case ManifestationClass::Rare: return "rare";
        case ManifestationClass::Foreign: return "foreign";
    }
    ADIV_UNREACHABLE("unhandled manifestation class");
}

std::string to_string(CapabilityVerdict v) {
    switch (v) {
        case CapabilityVerdict::NotAnomalous: return "not-anomalous";
        case CapabilityVerdict::NotDetectable: return "not-detectable";
        case CapabilityVerdict::DetectableMistuned: return "detectable-mistuned";
        case CapabilityVerdict::Detected: return "detected";
        case CapabilityVerdict::Inconclusive: return "inconclusive";
    }
    ADIV_UNREACHABLE("unhandled verdict");
}

CapabilityDiagnosis diagnose_capability(const TrainingCorpus& corpus,
                                        const DetectorFactory& factory,
                                        SymbolView manifestation,
                                        const CapabilityQuery& query) {
    require(manifestation.size() >= 2, "manifestation must have length >= 2");
    require(query.min_window >= 2 && query.min_window <= query.max_window,
            "invalid window range");
    require(query.deployed_window >= query.min_window &&
                query.deployed_window <= query.max_window,
            "deployed window outside the evaluated range");

    CapabilityDiagnosis out;
    const SubsequenceOracle oracle(corpus.training());
    const double rare = corpus.spec().rare_threshold;

    // Question C: is the manifestation anomalous with respect to training?
    if (!oracle.present(manifestation)) {
        out.manifestation = ManifestationClass::Foreign;
    } else if (oracle.rare(manifestation, rare)) {
        out.manifestation = ManifestationClass::Rare;
    } else {
        out.manifestation = ManifestationClass::Common;
        out.verdict = CapabilityVerdict::NotAnomalous;
        out.explanation =
            "C: the manifestation is a common training sequence — it is not "
            "anomalous, so no anomaly detector can be expected to flag it "
            "(Figure 1: attack not detectable by this means).";
        return out;
    }

    // Questions D and E: place the manifestation in validated test data per
    // window and score the detector.
    const Injector foreign_injector(corpus, oracle);
    const RareInjector rare_injector(corpus, oracle);
    for (std::size_t dw = query.min_window; dw <= query.max_window; ++dw) {
        std::optional<InjectedStream> injected;
        if (out.manifestation == ManifestationClass::Foreign) {
            injected = foreign_injector.try_inject(manifestation, dw,
                                                   query.background_length);
        } else {
            injected = rare_injector.try_inject(manifestation, dw,
                                                query.background_length);
        }
        if (!injected) {
            out.unplaceable_windows.push_back(dw);
            continue;
        }
        auto detector = factory(dw);
        require(detector != nullptr, "detector factory returned null");
        detector->train(corpus.training());
        const SpanScore score =
            classify_span(detector->score(injected->stream), injected->span);
        if (score.outcome == DetectionOutcome::Capable)
            out.detecting_windows.push_back(dw);
    }

    const std::size_t evaluated = query.max_window - query.min_window + 1;
    if (out.unplaceable_windows.size() == evaluated) {
        out.verdict = CapabilityVerdict::Inconclusive;
        out.explanation =
            "C: the manifestation is " + to_string(out.manifestation) +
            ", but no boundary-clean test stream could be built at any "
            "evaluated window; the manifestation's structure clashes with the "
            "background (try a different background or a derived anomaly).";
        return out;
    }
    if (out.detecting_windows.empty()) {
        out.verdict = CapabilityVerdict::NotDetectable;
        out.explanation =
            "C: the manifestation is " + to_string(out.manifestation) +
            " (anomalous). D: the detector produced no maximal in-span "
            "response at any evaluated window — this kind of anomaly lies "
            "outside its detection coverage; pair it with a detector that "
            "covers this region.";
        return out;
    }
    const bool deployed_detects =
        std::find(out.detecting_windows.begin(), out.detecting_windows.end(),
                  query.deployed_window) != out.detecting_windows.end();
    if (deployed_detects) {
        out.verdict = CapabilityVerdict::Detected;
        out.explanation =
            "C: anomalous (" + to_string(out.manifestation) +
            "). D: detectable. E: the deployed window " +
            std::to_string(query.deployed_window) +
            " registers a maximal response — attack detected.";
    } else {
        out.verdict = CapabilityVerdict::DetectableMistuned;
        std::string windows;
        for (std::size_t dw : out.detecting_windows)
            windows += (windows.empty() ? "" : ", ") + std::to_string(dw);
        out.explanation =
            "C: anomalous (" + to_string(out.manifestation) +
            "). D: detectable. E: NOT at the deployed window " +
            std::to_string(query.deployed_window) +
            "; detecting windows are {" + windows +
            "} — an incorrect parameter choice has blinded the detector "
            "(Figure 1, question E).";
    }
    return out;
}

}  // namespace adiv
