#include "core/experiment.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace adiv {

SpanScore score_entry(const SequenceDetector& detector,
                      const EvaluationSuite::Entry& entry) {
    require(detector.window_length() == entry.window_length,
            "detector window does not match suite entry window");
    TraceSpan span("experiment.score");
    span.attr("detector", detector.name())
        .attr("anomaly_size", static_cast<std::uint64_t>(entry.anomaly_size))
        .attr("window", static_cast<std::uint64_t>(entry.window_length));
    const std::vector<double> responses = detector.score(entry.stream.stream);
    return classify_span(responses, entry.stream.span);
}

// run_map_experiment is defined in src/engine/compat.cpp: it wraps a
// one-detector ExperimentPlan so existing callers pick up the engine's
// scheduler (and its --jobs parallelism) without a signature change.

}  // namespace adiv
