#include "core/experiment.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace adiv {

SpanScore score_entry(const SequenceDetector& detector,
                      const EvaluationSuite::Entry& entry) {
    require(detector.window_length() == entry.window_length,
            "detector window does not match suite entry window");
    TraceSpan span("experiment.score");
    span.attr("detector", detector.name())
        .attr("anomaly_size", static_cast<std::uint64_t>(entry.anomaly_size))
        .attr("window", static_cast<std::uint64_t>(entry.window_length));
    const std::vector<double> responses = detector.score(entry.stream.stream);
    return classify_span(responses, entry.stream.span);
}

PerformanceMap run_map_experiment(const EvaluationSuite& suite,
                                  const std::string& detector_name,
                                  const DetectorFactory& factory,
                                  const ExperimentProgress& progress) {
    PerformanceMap map(detector_name, suite.anomaly_sizes(), suite.window_lengths());

    TraceSpan map_span("experiment.map");
    map_span.attr("detector", detector_name)
        .attr("windows", static_cast<std::uint64_t>(suite.window_lengths().size()))
        .attr("anomaly_sizes",
              static_cast<std::uint64_t>(suite.anomaly_sizes().size()));
    Counter& cells_scored = global_metrics().counter("experiment.cells_scored");
    Histogram& cell_us = global_metrics().histogram("experiment.cell_us");
    Gauge& cells_per_second = global_metrics().gauge("experiment.cells_per_second");

    const Stopwatch total;
    std::size_t cells = 0;
    for (std::size_t dw : suite.window_lengths()) {
        const std::unique_ptr<SequenceDetector> detector = factory(dw);
        require(detector != nullptr, "detector factory returned null");
        require(detector->window_length() == dw,
                "factory produced detector with wrong window length");
        {
            TraceSpan train_span("experiment.train");
            train_span.attr("detector", detector_name)
                .attr("window", static_cast<std::uint64_t>(dw))
                .attr("events",
                      static_cast<std::uint64_t>(suite.corpus().training().size()));
            detector->train(suite.corpus().training());
        }
        for (std::size_t as : suite.anomaly_sizes()) {
            TraceSpan cell_span("experiment.cell");
            cell_span.attr("detector", detector_name)
                .attr("anomaly_size", static_cast<std::uint64_t>(as))
                .attr("window", static_cast<std::uint64_t>(dw));
            const Stopwatch cell_watch;
            const SpanScore score = score_entry(*detector, suite.entry(as, dw));
            cell_us.record(cell_watch.seconds() * 1e6);
            cells_scored.add(1);
            ++cells;
            map.set(as, dw, score);
            if (progress) progress(as, dw, score);
        }
    }
    const double elapsed = total.seconds();
    if (elapsed > 0.0 && cells > 0)
        cells_per_second.set(static_cast<double>(cells) / elapsed);
    return map;
}

}  // namespace adiv
