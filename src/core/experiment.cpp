#include "core/experiment.hpp"

#include "util/error.hpp"

namespace adiv {

SpanScore score_entry(const SequenceDetector& detector,
                      const EvaluationSuite::Entry& entry) {
    require(detector.window_length() == entry.window_length,
            "detector window does not match suite entry window");
    const std::vector<double> responses = detector.score(entry.stream.stream);
    return classify_span(responses, entry.stream.span);
}

PerformanceMap run_map_experiment(const EvaluationSuite& suite,
                                  const std::string& detector_name,
                                  const DetectorFactory& factory,
                                  const ExperimentProgress& progress) {
    PerformanceMap map(detector_name, suite.anomaly_sizes(), suite.window_lengths());
    for (std::size_t dw : suite.window_lengths()) {
        const std::unique_ptr<SequenceDetector> detector = factory(dw);
        require(detector != nullptr, "detector factory returned null");
        require(detector->window_length() == dw,
                "factory produced detector with wrong window length");
        detector->train(suite.corpus().training());
        for (std::size_t as : suite.anomaly_sizes()) {
            const SpanScore score = score_entry(*detector, suite.entry(as, dw));
            map.set(as, dw, score);
            if (progress) progress(as, dw, score);
        }
    }
    return map;
}

}  // namespace adiv
