// Combining diverse detectors (Sections 7-8).
//
// Two levels of combination are studied:
//
//   * COVERAGE algebra over performance maps — which (AS, DW) cells does a
//     detector detect, and what do union/intersection/subset relations say
//     about combining detectors? (Stide's coverage is a subset of the Markov
//     detector's; Stide ∪ L&B adds nothing over Stide alone.)
//
//   * ALARM combination on a single stream — OR to widen coverage, AND to
//     suppress false alarms (the paper's Markov-with-Stide-as-suppressor
//     scheme: alarms raised by Markov but not Stide may be dismissed).
#pragma once

#include <cstddef>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/perf_map.hpp"

namespace adiv {

/// A set of (anomaly size, detector window) cells a detector detects.
class CoverageSet {
public:
    CoverageSet() = default;

    /// The capable cells of a performance map.
    static CoverageSet capable_cells(const PerformanceMap& map);

    void insert(std::size_t anomaly_size, std::size_t window_length);
    [[nodiscard]] bool contains(std::size_t anomaly_size,
                                std::size_t window_length) const noexcept;

    [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
    [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }

    [[nodiscard]] CoverageSet unite(const CoverageSet& other) const;
    [[nodiscard]] CoverageSet intersect(const CoverageSet& other) const;
    [[nodiscard]] CoverageSet subtract(const CoverageSet& other) const;

    [[nodiscard]] bool subset_of(const CoverageSet& other) const;

    /// |A ∩ B| / |A ∪ B|; 1.0 when both are empty.
    [[nodiscard]] double jaccard(const CoverageSet& other) const;

    /// Sorted (as, dw) pairs.
    [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> cells() const;

private:
    std::set<std::pair<std::size_t, std::size_t>> cells_;
};

/// Renders a coverage set on the suite grid, same style as PerformanceMap.
std::string render_coverage(const CoverageSet& coverage, const std::string& title,
                            const std::vector<std::size_t>& anomaly_sizes,
                            const std::vector<std::size_t>& window_lengths);

enum class CombineMode {
    Or,   ///< alarm when either detector alarms (coverage union)
    And,  ///< alarm only when both alarm (false-alarm suppression)
};

/// Combines two per-window response vectors into 0/1 alarms. Responses at or
/// above `threshold` count as alarms. The vectors must be the same length
/// (same stream, same window length).
std::vector<double> combine_alarms(std::span<const double> a,
                                   std::span<const double> b, CombineMode mode,
                                   double threshold);

}  // namespace adiv
