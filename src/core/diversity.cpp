#include "core/diversity.hpp"

#include "util/error.hpp"

namespace adiv {

PairwiseDiversity analyze_pair(const PerformanceMap& a, const PerformanceMap& b) {
    require(a.anomaly_sizes() == b.anomaly_sizes() &&
                a.window_lengths() == b.window_lengths(),
            "diversity analysis requires maps over the same grid");
    const CoverageSet ca = CoverageSet::capable_cells(a);
    const CoverageSet cb = CoverageSet::capable_cells(b);
    PairwiseDiversity d;
    d.detector_a = a.detector_name();
    d.detector_b = b.detector_name();
    d.coverage_a = ca.size();
    d.coverage_b = cb.size();
    d.overlap = ca.intersect(cb).size();
    d.union_size = ca.unite(cb).size();
    d.gain_b_adds_to_a = cb.subtract(ca).size();
    d.gain_a_adds_to_b = ca.subtract(cb).size();
    d.a_subset_of_b = ca.subset_of(cb);
    d.b_subset_of_a = cb.subset_of(ca);
    d.jaccard = ca.jaccard(cb);
    return d;
}

std::vector<PairwiseDiversity> analyze_all_pairs(
    const std::vector<const PerformanceMap*>& maps) {
    std::vector<PairwiseDiversity> out;
    for (std::size_t i = 0; i < maps.size(); ++i)
        for (std::size_t j = i + 1; j < maps.size(); ++j)
            out.push_back(analyze_pair(*maps[i], *maps[j]));
    return out;
}

std::string describe_pair(const PairwiseDiversity& d) {
    const std::string a = d.detector_a;
    const std::string b = d.detector_b;
    if (d.coverage_a == 0 && d.coverage_b == 0)
        return a + " and " + b + ": neither detects anywhere; combining gains nothing";
    if (d.a_subset_of_b && d.b_subset_of_a)
        return a + " = " + b + ": identical coverage; combining gains nothing";
    if (d.a_subset_of_b)
        return a + " c " + b + " (subset): combining adds no coverage beyond " +
               b + " alone";
    if (d.b_subset_of_a)
        return b + " c " + a + " (subset): combining adds no coverage beyond " +
               a + " alone";
    return a + " and " + b + " overlap on " + std::to_string(d.overlap) +
           " cells; union gains " +
           std::to_string(d.union_size -
                          std::max(d.coverage_a, d.coverage_b)) +
           " cells over the better detector";
}

}  // namespace adiv
