#include "core/ensemble.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace adiv {

CoverageSet CoverageSet::capable_cells(const PerformanceMap& map) {
    CoverageSet out;
    for (std::size_t as : map.anomaly_sizes()) {
        for (std::size_t dw : map.window_lengths()) {
            if (map.has(as, dw) &&
                map.at(as, dw).outcome == DetectionOutcome::Capable)
                out.insert(as, dw);
        }
    }
    return out;
}

void CoverageSet::insert(std::size_t anomaly_size, std::size_t window_length) {
    cells_.emplace(anomaly_size, window_length);
}

bool CoverageSet::contains(std::size_t anomaly_size,
                           std::size_t window_length) const noexcept {
    return cells_.contains({anomaly_size, window_length});
}

CoverageSet CoverageSet::unite(const CoverageSet& other) const {
    CoverageSet out = *this;
    out.cells_.insert(other.cells_.begin(), other.cells_.end());
    return out;
}

CoverageSet CoverageSet::intersect(const CoverageSet& other) const {
    CoverageSet out;
    std::set_intersection(cells_.begin(), cells_.end(), other.cells_.begin(),
                          other.cells_.end(),
                          std::inserter(out.cells_, out.cells_.end()));
    return out;
}

CoverageSet CoverageSet::subtract(const CoverageSet& other) const {
    CoverageSet out;
    std::set_difference(cells_.begin(), cells_.end(), other.cells_.begin(),
                        other.cells_.end(),
                        std::inserter(out.cells_, out.cells_.end()));
    return out;
}

bool CoverageSet::subset_of(const CoverageSet& other) const {
    return std::includes(other.cells_.begin(), other.cells_.end(), cells_.begin(),
                         cells_.end());
}

double CoverageSet::jaccard(const CoverageSet& other) const {
    const std::size_t union_size = unite(other).size();
    if (union_size == 0) return 1.0;
    return static_cast<double>(intersect(other).size()) /
           static_cast<double>(union_size);
}

std::vector<std::pair<std::size_t, std::size_t>> CoverageSet::cells() const {
    return {cells_.begin(), cells_.end()};
}

std::string render_coverage(const CoverageSet& coverage, const std::string& title,
                            const std::vector<std::size_t>& anomaly_sizes,
                            const std::vector<std::size_t>& window_lengths) {
    std::ostringstream out;
    out << title << '\n';
    for (auto it = window_lengths.rbegin(); it != window_lengths.rend(); ++it) {
        const std::size_t dw = *it;
        out << (dw < 10 ? "  " : " ") << dw << " |  u";
        for (std::size_t as : anomaly_sizes)
            out << "  " << (coverage.contains(as, dw) ? '*' : '.');
        out << '\n';
    }
    out << " DW +" << std::string(3 * (anomaly_sizes.size() + 1), '-') << '\n';
    out << "       1";
    for (std::size_t as : anomaly_sizes) out << (as < 10 ? "  " : " ") << as;
    out << "  AS\n";
    return out.str();
}

std::vector<double> combine_alarms(std::span<const double> a,
                                   std::span<const double> b, CombineMode mode,
                                   double threshold) {
    require(a.size() == b.size(),
            "alarm combination requires responses over the same windows");
    std::vector<double> out(a.size(), 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const bool alarm_a = a[i] >= threshold;
        const bool alarm_b = b[i] >= threshold;
        const bool combined =
            mode == CombineMode::Or ? (alarm_a || alarm_b) : (alarm_a && alarm_b);
        out[i] = combined ? 1.0 : 0.0;
    }
    return out;
}

}  // namespace adiv
