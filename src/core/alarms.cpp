#include "core/alarms.hpp"

#include "util/table.hpp"

namespace adiv {

std::vector<AlarmEvent> extract_alarm_events(std::span<const double> responses,
                                             double threshold) {
    std::vector<AlarmEvent> events;
    bool in_event = false;
    for (std::size_t i = 0; i < responses.size(); ++i) {
        const bool alarming = responses[i] >= threshold;
        if (alarming && !in_event) {
            AlarmEvent e;
            e.first_window = e.last_window = e.peak_window = i;
            e.peak_response = responses[i];
            events.push_back(e);
            in_event = true;
        } else if (alarming) {
            AlarmEvent& e = events.back();
            e.last_window = i;
            if (responses[i] > e.peak_response) {
                e.peak_response = responses[i];
                e.peak_window = i;
            }
        } else {
            in_event = false;
        }
    }
    return events;
}

std::string render_alarm_report(const std::vector<AlarmEvent>& events,
                                const EventStream* stream,
                                std::size_t window_length,
                                const Alphabet* alphabet) {
    if (events.empty()) return "no alarms\n";
    TextTable table;
    const bool with_context = stream != nullptr && window_length > 0;
    if (with_context) {
        table.header({"event", "windows", "span", "peak", "peak window contents"});
    } else {
        table.header({"event", "windows", "span", "peak"});
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
        const AlarmEvent& e = events[i];
        const std::string span =
            std::to_string(e.first_window) + ".." + std::to_string(e.last_window);
        if (with_context && e.peak_window + window_length <= stream->size()) {
            const SymbolView w = stream->window(e.peak_window, window_length);
            std::string contents;
            if (alphabet != nullptr) {
                contents = alphabet->format(w);
            } else {
                for (std::size_t k = 0; k < w.size(); ++k) {
                    if (k != 0) contents.push_back(' ');
                    contents += std::to_string(w[k]);
                }
            }
            table.add(i + 1, e.window_count(), span, fixed(e.peak_response, 3),
                      contents);
        } else {
            table.add(i + 1, e.window_count(), span, fixed(e.peak_response, 3));
        }
    }
    return table.render();
}

}  // namespace adiv
