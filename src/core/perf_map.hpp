// Performance map: a detector's detection coverage over the
// (anomaly size, detector window) plane — Figures 3-6 of the paper.
//
// Each cell holds the classified outcome for one suite test stream; the
// renderer draws the paper's chart as text with detector window on the
// y-axis (descending), anomaly size on the x-axis, a '*' for each detection,
// '+' for weak responses, '.' for blindness, and a 'u' column for the
// undefined anomaly size of 1 (a size-1 sequence cannot be both foreign and
// rare).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/response.hpp"

namespace adiv {

class PerformanceMap {
public:
    /// as_values / dw_values: the grid axes, ascending.
    PerformanceMap(std::string detector_name, std::vector<std::size_t> as_values,
                   std::vector<std::size_t> dw_values);

    [[nodiscard]] const std::string& detector_name() const noexcept {
        return detector_name_;
    }
    [[nodiscard]] const std::vector<std::size_t>& anomaly_sizes() const noexcept {
        return as_values_;
    }
    [[nodiscard]] const std::vector<std::size_t>& window_lengths() const noexcept {
        return dw_values_;
    }

    void set(std::size_t anomaly_size, std::size_t window_length, SpanScore score);

    /// Throws InvalidArgument for cells outside the grid or never set.
    [[nodiscard]] const SpanScore& at(std::size_t anomaly_size,
                                      std::size_t window_length) const;

    [[nodiscard]] bool has(std::size_t anomaly_size,
                           std::size_t window_length) const noexcept;

    [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
    [[nodiscard]] std::size_t count(DetectionOutcome outcome) const;

    /// ASCII chart in the style of the paper's figures.
    [[nodiscard]] std::string render() const;

    /// CSV rows: anomaly_size, window_length, outcome, max_response.
    void write_csv(std::ostream& out) const;

private:
    std::string detector_name_;
    std::vector<std::size_t> as_values_;
    std::vector<std::size_t> dw_values_;
    std::map<std::pair<std::size_t, std::size_t>, SpanScore> cells_;  // (as,dw)
};

}  // namespace adiv
