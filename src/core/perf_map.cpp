#include "core/perf_map.hpp"

#include <algorithm>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace adiv {

PerformanceMap::PerformanceMap(std::string detector_name,
                               std::vector<std::size_t> as_values,
                               std::vector<std::size_t> dw_values)
    : detector_name_(std::move(detector_name)),
      as_values_(std::move(as_values)),
      dw_values_(std::move(dw_values)) {
    require(!as_values_.empty() && !dw_values_.empty(),
            "performance map axes must be non-empty");
    require(std::is_sorted(as_values_.begin(), as_values_.end()),
            "anomaly sizes must be ascending");
    require(std::is_sorted(dw_values_.begin(), dw_values_.end()),
            "window lengths must be ascending");
}

void PerformanceMap::set(std::size_t anomaly_size, std::size_t window_length,
                         SpanScore score) {
    require(std::count(as_values_.begin(), as_values_.end(), anomaly_size) == 1,
            "anomaly size outside the map grid");
    require(std::count(dw_values_.begin(), dw_values_.end(), window_length) == 1,
            "window length outside the map grid");
    cells_[{anomaly_size, window_length}] = score;
}

const SpanScore& PerformanceMap::at(std::size_t anomaly_size,
                                    std::size_t window_length) const {
    const auto it = cells_.find({anomaly_size, window_length});
    require(it != cells_.end(), "performance map cell (" +
                                    std::to_string(anomaly_size) + "," +
                                    std::to_string(window_length) + ") is unset");
    return it->second;
}

bool PerformanceMap::has(std::size_t anomaly_size,
                         std::size_t window_length) const noexcept {
    return cells_.contains({anomaly_size, window_length});
}

std::size_t PerformanceMap::count(DetectionOutcome outcome) const {
    std::size_t n = 0;
    for (const auto& [cell, score] : cells_) {
        (void)cell;
        if (score.outcome == outcome) ++n;
    }
    return n;
}

std::string PerformanceMap::render() const {
    std::ostringstream out;
    out << "Performance map of " << detector_name_
        << " on MFS anomaly (detection threshold = 1)\n";
    for (auto it = dw_values_.rbegin(); it != dw_values_.rend(); ++it) {
        const std::size_t dw = *it;
        out << (dw < 10 ? "  " : " ") << dw << " |";
        out << "  u";  // undefined column for anomaly size 1
        for (std::size_t as : as_values_) {
            out << "  ";
            out << (has(as, dw) ? outcome_glyph(at(as, dw).outcome) : ' ');
        }
        out << '\n';
    }
    out << " DW +";
    out << std::string(3 * (as_values_.size() + 1), '-') << '\n';
    out << "       1";
    for (std::size_t as : as_values_)
        out << (as < 10 ? "  " : " ") << as;
    out << "  AS\n";
    out << " legend: * detect (maximal response in incident span)   + weak "
           "response   . blind   u undefined\n";
    return out.str();
}

void PerformanceMap::write_csv(std::ostream& out) const {
    CsvWriter csv(out);
    csv.row({"detector", "anomaly_size", "window_length", "outcome",
             "max_response"});
    for (const auto& [cell, score] : cells_) {
        csv.row_of(detector_name_, cell.first, cell.second,
                   to_string(score.outcome), fixed(score.max_response, 6));
    }
}

}  // namespace adiv
