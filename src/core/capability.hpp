// Capability diagnosis: the paper's Figure 1 as an executable procedure.
//
// Figure 1 asks, for a given attack manifestation and detector:
//   C. Is the manifestation anomalous (with respect to training)?
//   D. Is that kind of anomaly detectable by the detector in question?
//   E. Is the detector correctly tuned (window size) to detect it?
// (Questions A and B — does the attack manifest in the monitored data at
// all — are the data-collection layer's concern; the caller hands us the
// manifestation, so they are answered by construction.)
//
// diagnose_capability() walks those questions empirically: it classifies the
// manifestation as foreign / rare / common against the training stream,
// builds validated test data for each candidate window, scores the detector,
// and reports which windows (if any) detect — separating "not anomalous"
// from "anomalous but outside this detector's coverage" from "detectable,
// but not at the window you deployed".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "datagen/corpus.hpp"
#include "detect/detector.hpp"

namespace adiv {

enum class ManifestationClass {
    Common,   ///< occurs in training at/above the rarity cutoff
    Rare,     ///< occurs in training below the rarity cutoff
    Foreign,  ///< never occurs in training
};

std::string to_string(ManifestationClass c);

enum class CapabilityVerdict {
    NotAnomalous,       ///< Figure 1, C = no: beyond any anomaly detector
    NotDetectable,      ///< C = yes, D = no: no evaluated window detects
    DetectableMistuned, ///< D = yes, E = no: some window detects, not the deployed one
    Detected,           ///< D = yes, E = yes
    Inconclusive,       ///< the manifestation could not be placed in test data
};

std::string to_string(CapabilityVerdict v);

struct CapabilityDiagnosis {
    ManifestationClass manifestation = ManifestationClass::Common;
    CapabilityVerdict verdict = CapabilityVerdict::Inconclusive;
    /// Windows (within the evaluated range) at which the detector registered
    /// a maximal response in the incident span.
    std::vector<std::size_t> detecting_windows;
    /// Windows for which no valid injection could be constructed.
    std::vector<std::size_t> unplaceable_windows;
    /// Human-readable walk through the Figure 1 questions.
    std::string explanation;
};

struct CapabilityQuery {
    std::size_t deployed_window = 6;   ///< the DW the defender runs (question E)
    std::size_t min_window = 2;        ///< evaluated window range (question D)
    std::size_t max_window = 12;
    std::size_t background_length = 2048;
};

/// Diagnoses one detector family (via its factory) against one manifestation
/// on the study corpus. The factory is invoked per window; detectors are
/// trained on corpus.training().
CapabilityDiagnosis diagnose_capability(const TrainingCorpus& corpus,
                                        const DetectorFactory& factory,
                                        SymbolView manifestation,
                                        const CapabilityQuery& query = {});

}  // namespace adiv
