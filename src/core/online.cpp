#include "core/online.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adiv {

OnlineScorer::OnlineScorer(const SequenceDetector& detector,
                           std::size_t buffer_capacity)
    : detector_(&detector),
      capacity_(std::max(buffer_capacity, detector.window_length())),
      alphabet_size_(detector.alphabet_size()) {
    require(detector.window_length() >= 1, "detector window must be positive");
    if (buffer_capacity == 0) capacity_ = 4 * detector.window_length();
}

std::optional<double> OnlineScorer::push(Symbol event) {
    require_data(event < alphabet_size_, "event outside the training alphabet");
    buffer_.push_back(event);
    if (buffer_.size() > capacity_) buffer_.pop_front();
    ++consumed_;

    const std::size_t dw = detector_->window_length();
    if (buffer_.size() < dw) return std::nullopt;

    EventStream window_stream(alphabet_size_,
                              Sequence(buffer_.begin(), buffer_.end()));
    const std::vector<double> responses = detector_->score(window_stream);
    ADIV_ASSERT(!responses.empty());
    return responses.back();
}

void OnlineScorer::reset() {
    buffer_.clear();
    consumed_ = 0;
}

}  // namespace adiv
