#include "core/online.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace adiv {

OnlineScorer::OnlineScorer(const SequenceDetector& detector,
                           std::size_t buffer_capacity, MetricsRegistry& metrics)
    : detector_(&detector),
      capacity_(std::max(buffer_capacity, detector.window_length())),
      alphabet_size_(detector.alphabet_size()),
      events_counter_(metrics.counter("online.events_consumed")),
      push_latency_us_(metrics.histogram("online.push_latency_us")),
      alarm_rate_gauge_(metrics.gauge("online.alarm_rate")) {
    require(detector.window_length() >= 1, "detector window must be positive");
    if (buffer_capacity == 0) capacity_ = 4 * detector.window_length();
}

std::optional<double> OnlineScorer::push(Symbol event) {
    const Stopwatch watch;
    require_data(event < alphabet_size_, "event outside the training alphabet");
    buffer_.push_back(event);
    if (buffer_.size() > capacity_) buffer_.pop_front();
    ++consumed_;
    events_counter_.add(1);

    const std::size_t dw = detector_->window_length();
    if (buffer_.size() < dw) {
        push_latency_us_.record(watch.seconds() * 1e6);
        return std::nullopt;
    }

    EventStream window_stream(alphabet_size_,
                              Sequence(buffer_.begin(), buffer_.end()));
    const std::vector<double> responses = detector_->score(window_stream);
    ADIV_ASSERT(!responses.empty());
    const double response = responses.back();

    ++windows_;
    if (response >= kMaximalResponse) ++alarms_;
    alarm_rate_gauge_.set(alarm_rate());
    push_latency_us_.record(watch.seconds() * 1e6);
    return response;
}

void OnlineScorer::reset() {
    buffer_.clear();
    consumed_ = 0;
    windows_ = 0;
    alarms_ = 0;
}

}  // namespace adiv
