// The experiment runner: deploys one detector across the whole evaluation
// suite and assembles its performance map (step 5 of the methodology).
//
// For each detector window the detector is trained once on the corpus
// training stream and scored on every anomaly-size test stream of that
// window; each stream's incident-span responses are classified into the
// corresponding map cell.
//
// run_map_experiment is a thin wrapper over the experiment engine
// (engine/plan.hpp + engine/scheduler.hpp); its definition lives in
// src/engine/compat.cpp. Multi-detector grids and result sinks are the
// engine's ExperimentPlan / run_plan API.
#pragma once

#include <functional>
#include <string>

#include "anomaly/suite.hpp"
#include "core/perf_map.hpp"
#include "detect/detector.hpp"

namespace adiv {

/// Optional progress hook: called after each (AS, DW) cell is scored.
using ExperimentProgress = std::function<void(
    std::size_t anomaly_size, std::size_t window_length, const SpanScore&)>;

/// Runs the full map experiment for one detector family.
/// `detector_name` labels the map; `factory` builds the detector per window.
/// `jobs` is the worker-thread count (1 = serial, 0 = hardware concurrency);
/// the map is bit-identical regardless of the value.
PerformanceMap run_map_experiment(const EvaluationSuite& suite,
                                  const std::string& detector_name,
                                  const DetectorFactory& factory,
                                  const ExperimentProgress& progress = {},
                                  std::size_t jobs = 1);

/// Scores a single suite entry with an already trained detector. The
/// detector's window length must equal the entry's.
SpanScore score_entry(const SequenceDetector& detector,
                      const EvaluationSuite::Entry& entry);

}  // namespace adiv
