// False-alarm experiments (Section 7's operational discussion).
//
// A detector's false-alarm behaviour is measured on held-out NORMAL data —
// drawn from the same generative model as training, so it contains fresh rare
// sequences but no anomaly. Every alarm on such data is false. The paper's
// key operational observations, reproduced here:
//
//   * the Markov detector alarms on rare-but-normal events and so produces
//     more false alarms than Stide;
//   * running Stide alongside and keeping only alarms BOTH raise (AND
//     combination) suppresses those false alarms while preserving hits in
//     the region Stide covers — valid because Stide's coverage is a subset
//     of the Markov detector's;
//   * lowering L&B's detection threshold far enough to catch a one-element
//     edge mismatch (similarity DW(DW-1)/2) makes everything that differs
//     from normal by one element alarm, and the false-alarm rate grows with
//     the window length.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "anomaly/injection.hpp"
#include "detect/detector.hpp"

namespace adiv {

/// Binarizes responses at a threshold: response >= threshold -> alarm.
std::vector<bool> alarms_from_responses(std::span<const double> responses,
                                        double threshold);

struct FalseAlarmResult {
    std::string detector;
    std::size_t window_length = 0;
    std::size_t windows = 0;  ///< windows scored
    std::size_t alarms = 0;   ///< alarms raised (all false on normal data)
    [[nodiscard]] double rate() const noexcept {
        return windows == 0 ? 0.0
                            : static_cast<double>(alarms) /
                                  static_cast<double>(windows);
    }
};

/// Scores a trained detector on a normal stream and counts alarms at the
/// given threshold (default: only maximal responses alarm, the study's rule).
FalseAlarmResult measure_false_alarms(const SequenceDetector& detector,
                                      const EventStream& normal_stream,
                                      double threshold = kMaximalResponse);

/// Alarm statistics for two trained detectors over the same stream.
struct CombinedAlarmResult {
    std::size_t windows = 0;
    std::size_t alarms_a = 0;
    std::size_t alarms_b = 0;
    std::size_t alarms_and = 0;  ///< both alarm (suppressed set)
    std::size_t alarms_or = 0;   ///< either alarms (union coverage)
};

CombinedAlarmResult measure_combined_alarms(const SequenceDetector& a,
                                            const SequenceDetector& b,
                                            const EventStream& stream,
                                            double threshold = kMaximalResponse);

/// True when a trained detector raises an alarm within the incident span of
/// an injected stream (a hit on the anomaly).
bool hits_anomaly(const SequenceDetector& detector, const InjectedStream& injected,
                  double threshold = kMaximalResponse);

}  // namespace adiv
