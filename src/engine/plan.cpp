#include "engine/plan.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace adiv {

ExperimentPlan::ExperimentPlan(const EvaluationSuite& suite)
    : suite_(&suite),
      window_lengths_(suite.window_lengths()),
      anomaly_sizes_(suite.anomaly_sizes()) {}

ExperimentPlan& ExperimentPlan::add_detector(std::string name,
                                             DetectorFactory factory) {
    require(!name.empty(), "plan detector needs a non-empty name");
    require(factory != nullptr, "plan detector needs a factory");
    detectors_.push_back({std::move(name), std::move(factory)});
    return *this;
}

ExperimentPlan& ExperimentPlan::add_detector(DetectorKind kind,
                                             const DetectorSettings& settings) {
    return add_detector(to_string(kind), factory_for(kind, settings));
}

ExperimentPlan& ExperimentPlan::with_window_lengths(
    std::vector<std::size_t> values) {
    window_lengths_ = std::move(values);
    return *this;
}

ExperimentPlan& ExperimentPlan::with_anomaly_sizes(
    std::vector<std::size_t> values) {
    anomaly_sizes_ = std::move(values);
    return *this;
}

void ExperimentPlan::validate() const {
    require(!detectors_.empty(), "experiment plan has no detectors");
    require(!window_lengths_.empty(), "experiment plan has no window lengths");
    require(!anomaly_sizes_.empty(), "experiment plan has no anomaly sizes");
    const auto in_suite = [](const std::vector<std::size_t>& axis,
                             std::size_t value) {
        return std::find(axis.begin(), axis.end(), value) != axis.end();
    };
    const std::vector<std::size_t> suite_dws = suite_->window_lengths();
    const std::vector<std::size_t> suite_as = suite_->anomaly_sizes();
    for (std::size_t dw : window_lengths_)
        require(in_suite(suite_dws, dw),
                "plan window length " + std::to_string(dw) +
                    " has no suite entries");
    for (std::size_t as : anomaly_sizes_)
        require(in_suite(suite_as, as),
                "plan anomaly size " + std::to_string(as) +
                    " has no suite entries");
}

}  // namespace adiv
