// Back-compat shim: run_map_experiment (declared in core/experiment.hpp) as
// a thin wrapper over a one-detector plan. The historical serial semantics —
// canonical cell order, progress callbacks, error propagation — are exactly
// the engine's jobs==1 path.
#include "core/experiment.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"

namespace adiv {

PerformanceMap run_map_experiment(const EvaluationSuite& suite,
                                  const std::string& detector_name,
                                  const DetectorFactory& factory,
                                  const ExperimentProgress& progress,
                                  std::size_t jobs) {
    ExperimentPlan plan(suite);
    plan.add_detector(detector_name, factory);
    EngineOptions options;
    options.jobs = jobs;
    options.progress = progress;
    PlanRun run = run_plan(plan, options);
    return std::move(run.maps.front());
}

}  // namespace adiv
