#include "engine/scheduler.hpp"

#include <memory>
#include <mutex>
#include <utility>

#include "engine/sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace adiv {

namespace {

/// Builds and trains one (detector, DW) column model.
std::unique_ptr<SequenceDetector> train_column(const ExperimentPlan& plan,
                                               const PlanDetector& detector,
                                               std::size_t dw) {
    std::unique_ptr<SequenceDetector> model = detector.factory(dw);
    require(model != nullptr, "detector factory returned null");
    require(model->window_length() == dw,
            "factory produced detector with wrong window length");
    TraceSpan train_span("experiment.train");
    train_span.attr("detector", detector.name)
        .attr("window", static_cast<std::uint64_t>(dw))
        .attr("events", static_cast<std::uint64_t>(
                            plan.suite().corpus().training().size()));
    model->train(plan.suite().corpus().training());
    return model;
}

/// Scores one (AS, DW) cell with an already trained column model.
SpanScore score_cell(const ExperimentPlan& plan, const PlanDetector& detector,
                     const SequenceDetector& model, std::size_t as,
                     std::size_t dw, Counter& cells_scored, Histogram& cell_us) {
    TraceSpan cell_span("experiment.cell");
    cell_span.attr("detector", detector.name)
        .attr("anomaly_size", static_cast<std::uint64_t>(as))
        .attr("window", static_cast<std::uint64_t>(dw));
    const Stopwatch cell_watch;
    const SpanScore score = score_entry(model, plan.suite().entry(as, dw));
    cell_us.record(cell_watch.seconds() * 1e6);
    cells_scored.add(1);
    return score;
}

}  // namespace

std::size_t resolve_jobs(std::size_t requested) noexcept {
    return requested == 0 ? ThreadPool::default_jobs() : requested;
}

PlanRun run_plan(const ExperimentPlan& plan, const EngineOptions& options) {
    plan.validate();
    const std::size_t jobs = resolve_jobs(options.jobs);
    const std::vector<std::size_t>& dws = plan.window_lengths();
    const std::vector<std::size_t>& as_values = plan.anomaly_sizes();
    const std::size_t ndet = plan.detectors().size();
    const std::size_t ndw = dws.size();
    const std::size_t nas = as_values.size();

    TraceSpan plan_span("engine.plan");
    plan_span.attr("detectors", static_cast<std::uint64_t>(ndet))
        .attr("windows", static_cast<std::uint64_t>(ndw))
        .attr("anomaly_sizes", static_cast<std::uint64_t>(nas))
        .attr("jobs", static_cast<std::uint64_t>(jobs));
    Counter& cells_scored = global_metrics().counter("experiment.cells_scored");
    Histogram& cell_us = global_metrics().histogram("experiment.cell_us");

    // Cell results land in pre-sized slots addressed by grid position, so
    // assembly below is independent of completion order.
    std::vector<std::vector<SpanScore>> slots(
        ndet, std::vector<SpanScore>(nas * ndw));
    std::vector<MapTiming> timings(ndet);
    const auto slot_index = [nas, ndw](std::size_t as_idx, std::size_t dw_idx) {
        ADIV_ASSERT(as_idx < nas && dw_idx < ndw);
        return dw_idx * nas + as_idx;
    };

    const Stopwatch total;
    if (jobs == 1) {
        // Inline serial execution in canonical order — the historical loop.
        for (std::size_t d = 0; d < ndet; ++d) {
            const PlanDetector& detector = plan.detectors()[d];
            for (std::size_t w = 0; w < ndw; ++w) {
                const Stopwatch train_watch;
                const std::unique_ptr<SequenceDetector> model =
                    train_column(plan, detector, dws[w]);
                timings[d].train_seconds += train_watch.seconds();
                for (std::size_t a = 0; a < nas; ++a) {
                    const Stopwatch score_watch;
                    const SpanScore score =
                        score_cell(plan, detector, *model, as_values[a], dws[w],
                                   cells_scored, cell_us);
                    timings[d].score_seconds += score_watch.seconds();
                    slots[d][slot_index(a, w)] = score;
                    if (options.progress)
                        options.progress(as_values[a], dws[w], score);
                }
            }
        }
    } else {
        // One training job per (detector, DW) column; each fans out into
        // per-AS scoring jobs sharing the trained model. Task indices are
        // pre-assigned in canonical order so the first error is the same one
        // the serial path would throw.
        std::mutex timing_mutex;
        std::mutex progress_mutex;
        ThreadPool pool(jobs);
        TaskGroup group(pool);
        const std::size_t tasks_per_column = 1 + nas;
        for (std::size_t d = 0; d < ndet; ++d) {
            for (std::size_t w = 0; w < ndw; ++w) {
                const std::size_t column_base =
                    (d * ndw + w) * tasks_per_column;
                group.run_indexed(column_base, [&, d, w, column_base] {
                    const PlanDetector& detector = plan.detectors()[d];
                    const Stopwatch train_watch;
                    // Shared by the scoring jobs below; score() is const and
                    // safe for concurrent calls on a trained detector.
                    const std::shared_ptr<const SequenceDetector> model =
                        train_column(plan, detector, dws[w]);
                    {
                        const std::lock_guard<std::mutex> lock(timing_mutex);
                        timings[d].train_seconds += train_watch.seconds();
                    }
                    for (std::size_t a = 0; a < nas; ++a) {
                        group.run_indexed(column_base + 1 + a, [&, d, w, a,
                                                                model] {
                            const Stopwatch score_watch;
                            const SpanScore score = score_cell(
                                plan, plan.detectors()[d], *model,
                                as_values[a], dws[w], cells_scored, cell_us);
                            slots[d][slot_index(a, w)] = score;
                            const double seconds = score_watch.seconds();
                            {
                                const std::lock_guard<std::mutex> lock(
                                    timing_mutex);
                                timings[d].score_seconds += seconds;
                            }
                            if (options.progress) {
                                const std::lock_guard<std::mutex> lock(
                                    progress_mutex);
                                options.progress(as_values[a], dws[w], score);
                            }
                        });
                    }
                });
            }
        }
        group.wait();
    }

    PlanRun run;
    run.maps.reserve(ndet);
    for (std::size_t d = 0; d < ndet; ++d) {
        PerformanceMap map(plan.detectors()[d].name, as_values, dws);
        for (std::size_t w = 0; w < ndw; ++w)
            for (std::size_t a = 0; a < nas; ++a)
                map.set(as_values[a], dws[w], slots[d][slot_index(a, w)]);
        run.maps.push_back(std::move(map));
    }
    run.timings = std::move(timings);
    run.summary.jobs = jobs;
    run.summary.detector_count = ndet;
    run.summary.cell_count = plan.cell_count();
    run.summary.wall_seconds = total.seconds();
    run.summary.cells_per_second =
        run.summary.wall_seconds > 0.0
            ? static_cast<double>(run.summary.cell_count) /
                  run.summary.wall_seconds
            : 0.0;
    plan_span.attr("wall_seconds", run.summary.wall_seconds)
        .attr("cells_per_second", run.summary.cells_per_second);
    return run;
}

PlanRun run_plan(const ExperimentPlan& plan, const EngineOptions& options,
                 ResultSink& sink) {
    PlanRun run = run_plan(plan, options);
    for (std::size_t d = 0; d < run.maps.size(); ++d)
        sink.map_ready(run.maps[d], run.timings[d]);
    sink.plan_finished(run.summary);
    return run;
}

}  // namespace adiv
