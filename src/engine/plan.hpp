// ExperimentPlan: a declarative description of a map experiment — a grid of
// (detector) x (window lengths) x (anomaly sizes) over one evaluation suite.
//
// The plan replaces the ad-hoc per-binary loops that used to rebuild the
// AS x DW performance map one detector and one window at a time: a bench
// binary now *describes* the sweep (which detectors, which axes) and hands
// it to the scheduler (engine/scheduler.hpp), which extracts the train/score
// dependency structure and runs it on a thread pool. Axes default to the
// suite's full grid; restricting them runs a sub-grid without rebuilding the
// suite.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "anomaly/suite.hpp"
#include "detect/detector.hpp"
#include "detect/registry.hpp"

namespace adiv {

/// One detector family in a plan: the label of its performance map plus the
/// factory that builds the detector for each window length.
struct PlanDetector {
    std::string name;
    DetectorFactory factory;
};

class ExperimentPlan {
public:
    /// Plans over the suite's full AS x DW grid. The suite must outlive the
    /// plan and every run of it.
    explicit ExperimentPlan(const EvaluationSuite& suite);

    /// Adds a detector family under an explicit map label.
    ExperimentPlan& add_detector(std::string name, DetectorFactory factory);

    /// Adds a registry detector under its canonical name.
    ExperimentPlan& add_detector(DetectorKind kind,
                                 const DetectorSettings& settings = {});

    /// Restricts the window axis; every value must exist in the suite.
    ExperimentPlan& with_window_lengths(std::vector<std::size_t> values);

    /// Restricts the anomaly-size axis; every value must exist in the suite.
    ExperimentPlan& with_anomaly_sizes(std::vector<std::size_t> values);

    [[nodiscard]] const EvaluationSuite& suite() const noexcept { return *suite_; }
    [[nodiscard]] const std::vector<PlanDetector>& detectors() const noexcept {
        return detectors_;
    }
    [[nodiscard]] const std::vector<std::size_t>& window_lengths() const noexcept {
        return window_lengths_;
    }
    [[nodiscard]] const std::vector<std::size_t>& anomaly_sizes() const noexcept {
        return anomaly_sizes_;
    }

    /// Cells per map: |anomaly_sizes| x |window_lengths|.
    [[nodiscard]] std::size_t cells_per_map() const noexcept {
        return anomaly_sizes_.size() * window_lengths_.size();
    }

    /// Total scoring cells across all detectors.
    [[nodiscard]] std::size_t cell_count() const noexcept {
        return detectors_.size() * cells_per_map();
    }

    /// Throws InvalidArgument when the plan cannot run: no detectors, an
    /// empty axis, or an axis value with no suite entry.
    void validate() const;

private:
    const EvaluationSuite* suite_;
    std::vector<PlanDetector> detectors_;
    std::vector<std::size_t> window_lengths_;
    std::vector<std::size_t> anomaly_sizes_;
};

}  // namespace adiv
