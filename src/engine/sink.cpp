#include "engine/sink.hpp"

#include <cstdio>
#include <ostream>
#include <utility>

#include "util/error.hpp"

namespace {

std::string fixed_seconds(double seconds) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.2f", seconds);
    return buffer;
}

std::string fixed_rate(double rate) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.1f", rate);
    return buffer;
}

}  // namespace

namespace adiv {

ChartSink::ChartSink(std::ostream& out) : ChartSink(out, Options{}) {}

ChartSink::ChartSink(std::ostream& out, Options options)
    : out_(&out), options_(options) {}

void ChartSink::map_ready(const PerformanceMap& map, const MapTiming& timing) {
    std::ostream& out = *out_;
    if (options_.banner)
        out << "\n==== Performance map: " << map.detector_name() << " ====\n\n";
    if (options_.timing) {
        out << "# train " << fixed_seconds(timing.train_seconds) << "s, score "
            << fixed_seconds(timing.score_seconds)
            << "s (aggregate across workers)\n\n";
    }
    if (options_.chart) out << map.render() << '\n';
    if (options_.outcome_counts) {
        out << "summary: capable=" << map.count(DetectionOutcome::Capable)
            << " weak=" << map.count(DetectionOutcome::Weak)
            << " blind=" << map.count(DetectionOutcome::Blind) << " of "
            << map.cell_count() << " cells\n\n";
    }
    if (options_.csv_block) {
        out << "-- csv --\n";
        map.write_csv(out);
    }
}

void ChartSink::plan_finished(const PlanSummary& summary) {
    *out_ << "# plan: " << summary.cell_count << " cells, "
          << summary.detector_count << " detector(s), jobs=" << summary.jobs
          << ", " << fixed_seconds(summary.wall_seconds) << "s wall, "
          << fixed_rate(summary.cells_per_second) << " cells/s\n";
}

CsvFileSink::CsvFileSink(const std::string& path) : out_(path) {
    require_data(out_.good(), "cannot open CSV output file '" + path + "'");
    out_ << "detector,anomaly_size,window_length,outcome,max_response\n";
}

void CsvFileSink::map_ready(const PerformanceMap& map, const MapTiming&) {
    for (std::size_t dw : map.window_lengths()) {
        for (std::size_t as : map.anomaly_sizes()) {
            const SpanScore& score = map.at(as, dw);
            out_ << map.detector_name() << ',' << as << ',' << dw << ','
                 << to_string(score.outcome) << ',' << score.max_response
                 << '\n';
        }
    }
}

void CsvFileSink::plan_finished(const PlanSummary& summary) {
    out_ << "# cells=" << summary.cell_count << " jobs=" << summary.jobs
         << " wall_seconds=" << summary.wall_seconds
         << " cells_per_second=" << summary.cells_per_second << '\n';
    out_.flush();
}

JsonSink::JsonSink(std::ostream& out) : out_(&out) {
    json_.begin_object();
    json_.key("schema").value("adiv-plan-run/1");
}

void JsonSink::map_ready(const PerformanceMap& map, const MapTiming& timing) {
    if (!maps_open_) {
        json_.key("maps").begin_array();
        maps_open_ = true;
    }
    json_.begin_object();
    json_.key("detector").value(map.detector_name());
    json_.key("train_seconds").value(timing.train_seconds);
    json_.key("score_seconds").value(timing.score_seconds);
    json_.key("capable")
        .value(static_cast<std::uint64_t>(map.count(DetectionOutcome::Capable)));
    json_.key("weak")
        .value(static_cast<std::uint64_t>(map.count(DetectionOutcome::Weak)));
    json_.key("blind")
        .value(static_cast<std::uint64_t>(map.count(DetectionOutcome::Blind)));
    json_.key("cells").begin_array();
    for (std::size_t dw : map.window_lengths()) {
        for (std::size_t as : map.anomaly_sizes()) {
            const SpanScore& score = map.at(as, dw);
            json_.begin_object();
            json_.key("anomaly_size").value(static_cast<std::uint64_t>(as));
            json_.key("window_length").value(static_cast<std::uint64_t>(dw));
            json_.key("outcome").value(to_string(score.outcome));
            json_.key("max_response").value(score.max_response);
            json_.end_object();
        }
    }
    json_.end_array();
    json_.end_object();
}

void JsonSink::plan_finished(const PlanSummary& summary) {
    if (maps_open_) {
        json_.end_array();
        maps_open_ = false;
    }
    json_.key("summary").begin_object();
    json_.key("jobs").value(static_cast<std::uint64_t>(summary.jobs));
    json_.key("detectors")
        .value(static_cast<std::uint64_t>(summary.detector_count));
    json_.key("cells").value(static_cast<std::uint64_t>(summary.cell_count));
    json_.key("wall_seconds").value(summary.wall_seconds);
    json_.key("cells_per_second").value(summary.cells_per_second);
    json_.end_object();
    json_.end_object();
    *out_ << json_.str() << '\n';
    json_ = JsonWriter();
    json_.begin_object();
    json_.key("schema").value("adiv-plan-run/1");
}

MultiSink::MultiSink(std::vector<ResultSink*> sinks) : sinks_(std::move(sinks)) {
    for (ResultSink* sink : sinks_)
        require(sink != nullptr, "MultiSink entries must be non-null");
}

void MultiSink::map_ready(const PerformanceMap& map, const MapTiming& timing) {
    for (ResultSink* sink : sinks_) sink->map_ready(map, timing);
}

void MultiSink::plan_finished(const PlanSummary& summary) {
    for (ResultSink* sink : sinks_) sink->plan_finished(summary);
}

}  // namespace adiv
