// The plan scheduler: executes an ExperimentPlan on a fixed-size thread
// pool and assembles one PerformanceMap per plan detector.
//
// Dependency structure: for every (detector, DW) column the scheduler runs
// one training job (build the detector via the factory, train it on the
// corpus training stream); when the model is ready, the column fans out into
// one scoring job per anomaly size, all sharing the trained instance —
// SequenceDetector::score() is const and safe for concurrent calls on the
// same trained detector (see detect/detector.hpp).
//
// Determinism: every cell result lands in a pre-sized slot addressed by its
// (detector, AS, DW) grid position, never by completion order, and detector
// training is independent of interleaving, so the assembled maps are
// bit-identical to the serial path for any job count. Failures are
// deterministic too: the first error in canonical plan order is rethrown
// (jobs=1 and jobs=N report the same exception).
//
// jobs == 1 runs inline on the calling thread in canonical order — exactly
// the historical serial loop — so run_map_experiment (core/experiment.hpp)
// is a thin wrapper over a one-detector plan.
#pragma once

#include <cstddef>
#include <vector>

#include "core/experiment.hpp"
#include "core/perf_map.hpp"
#include "engine/plan.hpp"

namespace adiv {

struct EngineOptions {
    /// Worker threads; 1 = inline serial execution, 0 = hardware concurrency
    /// (ThreadPool::default_jobs()).
    std::size_t jobs = 1;

    /// Optional per-cell hook. At jobs == 1 it fires in canonical order; at
    /// jobs > 1 invocation order is nondeterministic but calls are
    /// serialized, so the hook itself needs no locking.
    ExperimentProgress progress;
};

/// Aggregate wall time spent in one detector's jobs. At jobs > 1 the
/// components overlap across workers, so they sum CPU-side cost and do not
/// add up to plan wall time.
struct MapTiming {
    double train_seconds = 0.0;
    double score_seconds = 0.0;
};

/// Per-plan throughput summary — the per-run replacement for the old
/// process-global `experiment.cells_per_second` gauge, which was
/// last-writer-wins when several maps ran in one process.
struct PlanSummary {
    std::size_t jobs = 1;
    std::size_t detector_count = 0;
    std::size_t cell_count = 0;
    double wall_seconds = 0.0;
    double cells_per_second = 0.0;
};

struct PlanRun {
    std::vector<PerformanceMap> maps;  ///< one per plan detector, plan order
    std::vector<MapTiming> timings;    ///< parallel to maps
    PlanSummary summary;
};

class ResultSink;

/// Runs the plan and returns every map. Throws the first error in canonical
/// plan order (invalid plan, factory failures, scoring failures).
PlanRun run_plan(const ExperimentPlan& plan, const EngineOptions& options = {});

/// As above, then reports to the sink: map_ready() per detector in plan
/// order, plan_finished() once — deterministic regardless of job count.
PlanRun run_plan(const ExperimentPlan& plan, const EngineOptions& options,
                 ResultSink& sink);

/// Resolves a CLI-style job count: 0 -> hardware concurrency, otherwise n.
std::size_t resolve_jobs(std::size_t requested) noexcept;

}  // namespace adiv
