// ResultSink: where a plan run's maps and summary go.
//
// The bench mains used to carry near-identical rendering code — render the
// chart, print outcome counts, dump a CSV block. Sinks unify that: the
// scheduler reports each finished map (in plan order, regardless of job
// count) followed by the per-plan throughput summary, and a binary composes
// the sinks it wants (chart+CSV on stdout, a CSV file, a JSON document).
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/perf_map.hpp"
#include "engine/scheduler.hpp"
#include "obs/json.hpp"

namespace adiv {

class ResultSink {
public:
    virtual ~ResultSink() = default;

    /// One finished performance map, in plan order.
    virtual void map_ready(const PerformanceMap& map, const MapTiming& timing) = 0;

    /// The per-plan summary, after every map_ready() call.
    virtual void plan_finished(const PlanSummary& /*summary*/) {}
};

/// The classic bench stdout rendering: banner, ASCII chart, outcome counts,
/// and a `-- csv --` block per map, then a one-line plan summary.
class ChartSink : public ResultSink {
public:
    struct Options {
        bool banner = true;         ///< "==== Performance map: NAME ====" header
        bool chart = true;          ///< PerformanceMap::render()
        bool outcome_counts = true; ///< "summary: capable=... of N cells"
        bool csv_block = true;      ///< "-- csv --" + write_csv()
        bool timing = true;         ///< per-map train/score seconds
    };

    explicit ChartSink(std::ostream& out);
    ChartSink(std::ostream& out, Options options);

    void map_ready(const PerformanceMap& map, const MapTiming& timing) override;
    void plan_finished(const PlanSummary& summary) override;

private:
    std::ostream* out_;
    Options options_;
};

/// One CSV file for the whole plan:
/// detector,anomaly_size,window_length,outcome,max_response.
class CsvFileSink : public ResultSink {
public:
    /// Throws DataError when the file cannot be opened.
    explicit CsvFileSink(const std::string& path);

    void map_ready(const PerformanceMap& map, const MapTiming& timing) override;
    void plan_finished(const PlanSummary& summary) override;

private:
    std::ofstream out_;
};

/// One JSON document for the whole plan:
/// {"schema":...,"maps":[{...cells...}],"summary":{...}}. Written on
/// plan_finished().
class JsonSink : public ResultSink {
public:
    /// The stream must outlive the sink.
    explicit JsonSink(std::ostream& out);

    void map_ready(const PerformanceMap& map, const MapTiming& timing) override;
    void plan_finished(const PlanSummary& summary) override;

private:
    std::ostream* out_;
    JsonWriter json_;
    bool maps_open_ = false;
};

/// Fans every callback out to a list of borrowed sinks, in order.
class MultiSink : public ResultSink {
public:
    explicit MultiSink(std::vector<ResultSink*> sinks);

    void map_ready(const PerformanceMap& map, const MapTiming& timing) override;
    void plan_finished(const PlanSummary& summary) override;

private:
    std::vector<ResultSink*> sinks_;
};

}  // namespace adiv
