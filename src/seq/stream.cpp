#include "seq/stream.hpp"

#include "util/error.hpp"

namespace adiv {

namespace {
void validate(std::size_t alphabet_size, SymbolView events) {
    for (Symbol s : events)
        require_data(s < alphabet_size,
                     "event stream contains symbol " + std::to_string(s) +
                         " outside alphabet of size " + std::to_string(alphabet_size));
}
}  // namespace

EventStream::EventStream(std::size_t alphabet_size, Sequence events)
    : alphabet_size_(alphabet_size), events_(std::move(events)) {
    require(alphabet_size_ > 0, "alphabet size must be positive");
    validate(alphabet_size_, events_);
}

EventStream::EventStream(std::size_t alphabet_size)
    : EventStream(alphabet_size, Sequence{}) {}

SymbolView EventStream::window(std::size_t pos, std::size_t length) const {
    require(pos + length <= events_.size(), "window outside stream bounds");
    return SymbolView(events_).subspan(pos, length);
}

std::size_t EventStream::window_count(std::size_t length) const noexcept {
    if (length == 0 || events_.size() < length) return 0;
    return events_.size() - length + 1;
}

void EventStream::push_back(Symbol s) {
    require_data(s < alphabet_size_, "symbol outside alphabet");
    events_.push_back(s);
}

void EventStream::append(SymbolView run) {
    validate(alphabet_size_, run);
    events_.insert(events_.end(), run.begin(), run.end());
}

EventStream EventStream::slice(std::size_t pos, std::size_t length) const {
    require(pos + length <= events_.size(), "slice outside stream bounds");
    return EventStream(alphabet_size_,
                       Sequence(events_.begin() + static_cast<std::ptrdiff_t>(pos),
                                events_.begin() + static_cast<std::ptrdiff_t>(pos + length)));
}

}  // namespace adiv
