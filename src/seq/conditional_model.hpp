// ConditionalModel: empirical next-symbol distribution given a fixed-length
// context, estimated from a training stream.
//
// This is the probability substrate shared by the Markov detector (which
// scores 1 - P(next | context)), the neural-network detector (which trains on
// the distinct context->next distributions), and the MFS builder (which must
// verify that the junctions inside a synthesized anomaly are conditionally
// rare). P(next | context) = count(context·next) / count(context), with
// optional Laplace smoothing for the ablation experiments.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "seq/ngram.hpp"
#include "seq/ngram_table.hpp"
#include "seq/stream.hpp"

namespace adiv {

/// One distinct training context and the observed continuation counts.
struct ContextDistribution {
    Sequence context;                       ///< the conditioning window
    std::vector<std::uint64_t> next_counts; ///< per-symbol continuation counts
    std::uint64_t total = 0;                ///< sum of next_counts
};

class ConditionalModel {
public:
    /// Estimates the model from the stream. context_length must be >= 1 and
    /// the stream must contain at least one (context_length+1)-window.
    ConditionalModel(const EventStream& train, std::size_t context_length);

    /// Reconstructs a model from previously exported distributions (see
    /// distributions()); used by model deserialization.
    ConditionalModel(std::size_t alphabet_size, std::size_t context_length,
                     const std::vector<ContextDistribution>& distributions);

    [[nodiscard]] std::size_t context_length() const noexcept { return context_length_; }
    [[nodiscard]] std::size_t alphabet_size() const noexcept { return alphabet_size_; }

    /// P(next | context). Unseen context => 0 (maximally surprising).
    /// Requires context.size() == context_length().
    [[nodiscard]] double probability(SymbolView context, Symbol next) const;

    /// Laplace-smoothed probability with pseudo-count alpha:
    /// (count(ctx·next) + alpha) / (count(ctx) + alpha * alphabet).
    /// With alpha = 0 this reduces to probability().
    [[nodiscard]] double probability_smoothed(SymbolView context, Symbol next,
                                              double alpha) const;

    /// Raw observation counts used by probability().
    [[nodiscard]] std::uint64_t context_count(SymbolView context) const;
    [[nodiscard]] std::uint64_t continuation_count(SymbolView context, Symbol next) const;

    /// True when the context occurs in the training stream.
    [[nodiscard]] bool context_known(SymbolView context) const {
        return context_count(context) > 0;
    }

    /// All distinct contexts with their continuation distributions, sorted by
    /// descending total then by context for deterministic consumption (the NN
    /// trains on exactly this compressed dataset).
    [[nodiscard]] std::vector<ContextDistribution> distributions() const;

    /// Number of distinct contexts observed.
    [[nodiscard]] std::size_t distinct_contexts() const noexcept {
        return by_context_.size();
    }

private:
    std::size_t context_length_;
    std::size_t alphabet_size_;
    NgramCodec codec_;
    // context key -> (total, per-symbol continuation counts)
    struct Entry {
        std::uint64_t total = 0;
        std::vector<std::uint64_t> next_counts;
    };
    std::unordered_map<NgramKey, Entry, NgramKeyHash> by_context_;
};

}  // namespace adiv
