#include "seq/alphabet.hpp"

#include "util/error.hpp"

namespace adiv {

Alphabet::Alphabet(std::size_t size) {
    require(size > 0, "alphabet size must be positive");
    names_.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
        std::string name = "s" + std::to_string(i);
        ids_.emplace(name, static_cast<Symbol>(i));
        names_.push_back(std::move(name));
    }
}

Alphabet::Alphabet(const std::vector<std::string>& names) {
    require(!names.empty(), "alphabet requires at least one symbol name");
    names_.reserve(names.size());
    for (const auto& name : names) {
        require(!name.empty(), "alphabet symbol names must be non-empty");
        const auto [it, inserted] =
            ids_.emplace(name, static_cast<Symbol>(names_.size()));
        require(inserted, "duplicate alphabet symbol name: " + name);
        (void)it;
        names_.push_back(name);
    }
}

const std::string& Alphabet::name(Symbol s) const {
    require(valid(s), "symbol id " + std::to_string(s) + " outside alphabet of size " +
                          std::to_string(size()));
    return names_[s];
}

Symbol Alphabet::id(std::string_view name) const {
    const auto it = ids_.find(std::string(name));
    require(it != ids_.end(), "unknown alphabet symbol: " + std::string(name));
    return it->second;
}

bool Alphabet::valid(SymbolView seq) const noexcept {
    for (Symbol s : seq)
        if (!valid(s)) return false;
    return true;
}

std::string Alphabet::format(SymbolView seq) const {
    std::string out;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i != 0) out.push_back(' ');
        out += name(seq[i]);
    }
    return out;
}

}  // namespace adiv
