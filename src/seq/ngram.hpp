// Packed n-gram codec.
//
// Fixed-length windows are the unit of work for every detector, and the
// normal-behaviour databases hold millions of window observations. Storing
// each window as a vector would be slow and cache-hostile, so windows are
// packed into a 128-bit integer key: ceil(log2(alphabet)) bits per symbol,
// most-recent symbol in the low bits. With the paper's alphabet of 8 this
// supports windows up to 42 symbols; even a 256-symbol alphabet supports the
// full DW range of the study (2..15, plus one for the Markov continuation).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "seq/types.hpp"

namespace adiv {

/// Packed window key. Equality of keys is equality of (same-length) windows.
/// (128-bit integers are a GCC/Clang extension; __extension__ silences the
/// pedantic diagnostic — the library targets those compilers.)
__extension__ typedef unsigned __int128 NgramKey;

/// Hash functor for NgramKey usable with unordered containers.
struct NgramKeyHash {
    std::size_t operator()(NgramKey key) const noexcept {
        // Mix the two 64-bit halves through a splitmix-style finalizer.
        auto lo = static_cast<std::uint64_t>(key);
        auto hi = static_cast<std::uint64_t>(key >> 64);
        std::uint64_t z = lo ^ (hi * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};

class NgramCodec {
public:
    /// Codec for windows over an alphabet of the given size.
    /// Throws InvalidArgument for size 0.
    explicit NgramCodec(std::size_t alphabet_size);

    [[nodiscard]] std::size_t alphabet_size() const noexcept { return alphabet_size_; }

    /// Bits used per symbol (at least 1).
    [[nodiscard]] unsigned bits_per_symbol() const noexcept { return bits_; }

    /// Longest window this codec can pack.
    [[nodiscard]] std::size_t max_length() const noexcept { return 128u / bits_; }

    /// Packs a window. Requires gram.size() <= max_length() and every symbol
    /// within the alphabet (unchecked in release paths; validated by
    /// EventStream construction upstream).
    [[nodiscard]] NgramKey encode(SymbolView gram) const noexcept {
        NgramKey key = 0;
        for (Symbol s : gram) key = (key << bits_) | s;
        return key;
    }

    /// Incremental slide: drops the oldest symbol of a length-n key and
    /// appends `incoming`, producing the key of the next window. `length_mask`
    /// must come from mask_for(n).
    [[nodiscard]] NgramKey slide(NgramKey key, Symbol incoming,
                                 NgramKey length_mask) const noexcept {
        return ((key << bits_) | incoming) & length_mask;
    }

    /// Mask covering length*bits low bits; pairs with slide().
    [[nodiscard]] NgramKey mask_for(std::size_t length) const noexcept {
        const unsigned total = bits_ * static_cast<unsigned>(length);
        if (total >= 128) return ~NgramKey{0};
        return (NgramKey{1} << total) - 1;
    }

    /// Unpacks a key back into the length-n window it encodes.
    [[nodiscard]] Sequence decode(NgramKey key, std::size_t length) const;

private:
    std::size_t alphabet_size_;
    unsigned bits_;
};

}  // namespace adiv
