#include "seq/types.hpp"

#include <algorithm>

namespace adiv {

bool same_sequence(SymbolView a, SymbolView b) noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool contains_subsequence(SymbolView haystack, SymbolView needle) noexcept {
    if (needle.empty()) return true;
    if (needle.size() > haystack.size()) return false;
    const auto it = std::search(haystack.begin(), haystack.end(),
                                needle.begin(), needle.end());
    return it != haystack.end();
}

}  // namespace adiv
