#include "seq/ngram_table.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adiv {

NgramTable::NgramTable(std::size_t alphabet_size, std::size_t length)
    : codec_(alphabet_size), length_(length) {
    require(length > 0, "n-gram length must be positive");
    require(length <= codec_.max_length(),
            "n-gram length " + std::to_string(length) + " exceeds codec capacity " +
                std::to_string(codec_.max_length()) + " for alphabet size " +
                std::to_string(alphabet_size));
}

NgramTable NgramTable::from_stream(const EventStream& stream, std::size_t length) {
    NgramTable table(stream.alphabet_size(), length);
    table.add_stream(stream);
    return table;
}

void NgramTable::add_stream(const EventStream& stream) {
    require(stream.alphabet_size() == codec_.alphabet_size(),
            "stream alphabet does not match table alphabet");
    if (stream.size() < length_) return;
    const SymbolView all = stream.view();
    const NgramKey mask = codec_.mask_for(length_);
    NgramKey key = codec_.encode(all.subspan(0, length_));
    ++counts_[key];
    for (std::size_t pos = length_; pos < all.size(); ++pos) {
        key = codec_.slide(key, all[pos], mask);
        ++counts_[key];
    }
    total_ += all.size() - length_ + 1;
}

void NgramTable::add(SymbolView gram, std::uint64_t count) {
    require(gram.size() == length_, "gram length does not match table length");
    counts_[codec_.encode(gram)] += count;
    total_ += count;
}

std::uint64_t NgramTable::count(SymbolView gram) const {
    require(gram.size() == length_, "gram length does not match table length");
    return count_key(codec_.encode(gram));
}

std::uint64_t NgramTable::count_key(NgramKey key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
}

double NgramTable::relative_frequency(SymbolView gram) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(gram)) / static_cast<double>(total_);
}

double NgramTable::relative_frequency_key(NgramKey key) const {
    return total_ == 0
               ? 0.0
               : static_cast<double>(count_key(key)) / static_cast<double>(total_);
}

void NgramTable::for_each(
    const std::function<void(NgramKey, std::uint64_t)>& fn) const {
    // Callback order is unspecified (documented in the header); callers fold
    // commutatively. Order-sensitive consumers use items_by_count().
    // adiv-lint: allow(unordered-iteration)
    for (const auto& [key, count] : counts_) fn(key, count);
}

std::vector<std::pair<Sequence, std::uint64_t>> NgramTable::items_by_count() const {
    std::vector<std::pair<NgramKey, std::uint64_t>> keyed(counts_.begin(), counts_.end());
    std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    std::vector<std::pair<Sequence, std::uint64_t>> out;
    out.reserve(keyed.size());
    for (const auto& [key, count] : keyed)
        out.emplace_back(codec_.decode(key, length_), count);
    return out;
}

}  // namespace adiv
