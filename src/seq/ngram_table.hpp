// NgramTable: occurrence counts of fixed-length windows of a stream.
//
// This is the "normal database" substrate shared by every detector and by the
// anomaly machinery: Stide asks membership, the Markov and NN detectors ask
// conditional counts, the MFS builder asks rarity, and the injector asks
// whether boundary windows are common. One table holds counts for a single
// window length n; conditional probabilities combine an n-table with an
// (n-1)-table (see ConditionalModel).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "seq/ngram.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"

namespace adiv {

class NgramTable {
public:
    /// Empty table for windows of `length` symbols over the alphabet.
    NgramTable(std::size_t alphabet_size, std::size_t length);

    /// Convenience: builds the table of all length-n windows of the stream.
    static NgramTable from_stream(const EventStream& stream, std::size_t length);

    [[nodiscard]] std::size_t length() const noexcept { return length_; }
    [[nodiscard]] std::size_t alphabet_size() const noexcept {
        return codec_.alphabet_size();
    }
    [[nodiscard]] const NgramCodec& codec() const noexcept { return codec_; }

    /// Adds every complete window of the stream (slides by one).
    void add_stream(const EventStream& stream);

    /// Adds a single occurrence (or `count` occurrences) of one window.
    /// Requires gram.size() == length().
    void add(SymbolView gram, std::uint64_t count = 1);

    /// Occurrences of the window; 0 when absent.
    [[nodiscard]] std::uint64_t count(SymbolView gram) const;
    [[nodiscard]] std::uint64_t count_key(NgramKey key) const;

    [[nodiscard]] bool contains(SymbolView gram) const { return count(gram) > 0; }
    [[nodiscard]] bool contains_key(NgramKey key) const { return count_key(key) > 0; }

    /// Total window observations (sum of all counts).
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Number of distinct windows seen.
    [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

    /// count(gram) / total(); 0 when the table is empty.
    [[nodiscard]] double relative_frequency(SymbolView gram) const;
    [[nodiscard]] double relative_frequency_key(NgramKey key) const;

    /// Invokes fn(key, count) for every distinct window. Iteration order is
    /// unspecified; decode keys via codec() when the symbols are needed.
    void for_each(const std::function<void(NgramKey, std::uint64_t)>& fn) const;

    /// Materialized (window, count) pairs, sorted by descending count then by
    /// key, for deterministic reporting.
    [[nodiscard]] std::vector<std::pair<Sequence, std::uint64_t>> items_by_count() const;

private:
    NgramCodec codec_;
    std::size_t length_;
    std::uint64_t total_ = 0;
    std::unordered_map<NgramKey, std::uint64_t, NgramKeyHash> counts_;
};

}  // namespace adiv
