// Fundamental types of the sequence substrate.
//
// All detectors in this library consume streams of categorical events
// ("symbols"): system-call numbers, audit-event codes, user-command ids.
// A symbol is a dense non-negative id below the alphabet size; a Sequence is
// a short owned run of symbols (an n-gram, an anomaly); a stream is a long
// run (training data, test data) represented by EventStream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adiv {

/// Categorical event id. Dense in [0, alphabet_size).
using Symbol = std::uint32_t;

/// Short owned run of symbols — an n-gram, a window, an anomaly.
using Sequence = std::vector<Symbol>;

/// Read-only view over consecutive symbols.
using SymbolView = std::span<const Symbol>;

/// True if the two views have the same length and contents.
bool same_sequence(SymbolView a, SymbolView b) noexcept;

/// True if `needle` occurs as a contiguous subsequence of `haystack`.
bool contains_subsequence(SymbolView haystack, SymbolView needle) noexcept;

}  // namespace adiv
