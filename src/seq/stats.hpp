// Stream statistics: the measurements the paper makes about its corpus.
//
// Section 5.3 characterizes the training data by (a) the fraction composed of
// the common base cycle, (b) the presence of rare sequences (relative
// frequency < 0.5%, Warrender's definition), and (c) alphabet size and
// length. The census here verifies those properties for generated corpora
// and powers the corpus_census bench.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/ngram_table.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"

namespace adiv {

/// The paper's rarity cutoff: a sequence is rare when its relative frequency
/// in the training data is below 0.5% (Warrender et al. 1999, adopted in
/// Section 5.3).
inline constexpr double kDefaultRareThreshold = 0.005;

/// A window that is present but rare in a table.
struct RareGram {
    Sequence gram;
    std::uint64_t count = 0;
    double relative_frequency = 0.0;
};

/// All windows of the table with 0 < relative frequency < threshold, sorted
/// ascending by frequency then by symbols (deterministic).
std::vector<RareGram> rare_grams(const NgramTable& table,
                                 double threshold = kDefaultRareThreshold);

/// Census of one window length of a stream.
struct LengthCensus {
    std::size_t length = 0;        ///< window length n
    std::uint64_t windows = 0;     ///< total n-windows in the stream
    std::size_t distinct = 0;      ///< distinct n-grams observed
    std::size_t rare = 0;          ///< distinct n-grams below the rare threshold
    std::size_t common = 0;        ///< distinct n-grams at/above the threshold
    double rare_mass = 0.0;        ///< fraction of windows that are rare grams
};

LengthCensus census(const EventStream& stream, std::size_t length,
                    double rare_threshold = kDefaultRareThreshold);

/// Fraction of the stream's length-|cycle| windows that match some rotation
/// of the base cycle — i.e. how much of the stream is "inside" clean cycle
/// repetitions. The paper's corpus targets ~98%.
double cycle_coverage(const EventStream& stream, SymbolView cycle);

/// Fraction of positions whose symbol equals the pure-cycle continuation of
/// the previous |cycle|-1 symbols; a second, stricter view of cleanliness.
double deterministic_continuation_rate(const EventStream& stream, SymbolView cycle);

}  // namespace adiv
