#include "seq/stats.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace adiv {

std::vector<RareGram> rare_grams(const NgramTable& table, double threshold) {
    require(threshold > 0.0 && threshold < 1.0, "rare threshold must be in (0,1)");
    std::vector<RareGram> out;
    const double total = static_cast<double>(table.total());
    if (total == 0.0) return out;
    table.for_each([&](NgramKey key, std::uint64_t count) {
        const double rel = static_cast<double>(count) / total;
        if (rel < threshold) {
            out.push_back(RareGram{table.codec().decode(key, table.length()), count, rel});
        }
    });
    std::sort(out.begin(), out.end(), [](const RareGram& a, const RareGram& b) {
        if (a.count != b.count) return a.count < b.count;
        return a.gram < b.gram;
    });
    return out;
}

LengthCensus census(const EventStream& stream, std::size_t length,
                    double rare_threshold) {
    const NgramTable table = NgramTable::from_stream(stream, length);
    LengthCensus c;
    c.length = length;
    c.windows = table.total();
    c.distinct = table.distinct();
    const double total = static_cast<double>(table.total());
    std::uint64_t rare_windows = 0;
    table.for_each([&](NgramKey, std::uint64_t count) {
        const double rel = static_cast<double>(count) / total;
        if (rel < rare_threshold) {
            ++c.rare;
            rare_windows += count;
        } else {
            ++c.common;
        }
    });
    c.rare_mass = total == 0.0 ? 0.0 : static_cast<double>(rare_windows) / total;
    return c;
}

double cycle_coverage(const EventStream& stream, SymbolView cycle) {
    require(!cycle.empty(), "cycle must be non-empty");
    const std::size_t L = cycle.size();
    if (stream.window_count(L) == 0) return 0.0;

    NgramCodec codec(stream.alphabet_size());
    require(L <= codec.max_length(), "cycle too long for codec");
    std::unordered_set<NgramKey, NgramKeyHash> rotations;
    Sequence rot(cycle.begin(), cycle.end());
    for (std::size_t r = 0; r < L; ++r) {
        rotations.insert(codec.encode(rot));
        std::rotate(rot.begin(), rot.begin() + 1, rot.end());
    }

    std::uint64_t matching = 0;
    const SymbolView all = stream.view();
    const NgramKey mask = codec.mask_for(L);
    NgramKey key = codec.encode(all.subspan(0, L));
    if (rotations.contains(key)) ++matching;
    for (std::size_t pos = L; pos < all.size(); ++pos) {
        key = codec.slide(key, all[pos], mask);
        if (rotations.contains(key)) ++matching;
    }
    return static_cast<double>(matching) /
           static_cast<double>(stream.window_count(L));
}

double deterministic_continuation_rate(const EventStream& stream, SymbolView cycle) {
    require(!cycle.empty(), "cycle must be non-empty");
    std::vector<Symbol> successor(stream.alphabet_size(), cycle.front());
    std::vector<bool> in_cycle(stream.alphabet_size(), false);
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const Symbol s = cycle[i];
        require(s < stream.alphabet_size(), "cycle symbol outside alphabet");
        require(!in_cycle[s], "cycle symbols must be unique");
        in_cycle[s] = true;
        successor[s] = cycle[(i + 1) % cycle.size()];
    }
    if (stream.size() < 2) return 0.0;
    std::uint64_t hits = 0;
    for (std::size_t i = 1; i < stream.size(); ++i)
        if (in_cycle[stream[i - 1]] && stream[i] == successor[stream[i - 1]]) ++hits;
    return static_cast<double>(hits) / static_cast<double>(stream.size() - 1);
}

}  // namespace adiv
