// Symbol alphabet: the mapping between human-readable event names and the
// dense symbol ids the detectors operate on.
//
// The paper's corpus uses an anonymous alphabet of size 8; the example
// programs use named alphabets (system-call names, shell commands). Either
// way, detectors only ever see dense ids, so an Alphabet can also be created
// nameless with just a size.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "seq/types.hpp"

namespace adiv {

class Alphabet {
public:
    /// Nameless alphabet of `size` symbols; names default to "s0".."sN-1".
    explicit Alphabet(std::size_t size);

    /// Named alphabet; ids are assigned in order. Names must be unique and
    /// non-empty.
    explicit Alphabet(const std::vector<std::string>& names);

    [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

    /// Name of a symbol id. Throws InvalidArgument when out of range.
    [[nodiscard]] const std::string& name(Symbol s) const;

    /// Id of a name. Throws InvalidArgument for unknown names.
    [[nodiscard]] Symbol id(std::string_view name) const;

    /// True when the id is a member of this alphabet.
    [[nodiscard]] bool valid(Symbol s) const noexcept { return s < names_.size(); }

    /// True when every symbol of the view is a member.
    [[nodiscard]] bool valid(SymbolView seq) const noexcept;

    /// Renders a sequence as space-separated names, e.g. "open read close".
    [[nodiscard]] std::string format(SymbolView seq) const;

private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, Symbol> ids_;
};

}  // namespace adiv
