#include "seq/conditional_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adiv {

ConditionalModel::ConditionalModel(const EventStream& train, std::size_t context_length)
    : context_length_(context_length),
      alphabet_size_(train.alphabet_size()),
      codec_(train.alphabet_size()) {
    require(context_length >= 1, "context length must be at least 1");
    require(context_length + 1 <= codec_.max_length(),
            "context length exceeds codec capacity");
    require_data(train.size() >= context_length + 1,
                 "training stream shorter than one context+continuation window");

    const SymbolView all = train.view();
    const NgramKey mask = codec_.mask_for(context_length_);
    NgramKey key = codec_.encode(all.subspan(0, context_length_));
    for (std::size_t pos = context_length_; pos < all.size(); ++pos) {
        Entry& entry = by_context_[key];
        if (entry.next_counts.empty()) entry.next_counts.assign(alphabet_size_, 0);
        ++entry.next_counts[all[pos]];
        ++entry.total;
        key = codec_.slide(key, all[pos], mask);
    }
}

ConditionalModel::ConditionalModel(
    std::size_t alphabet_size, std::size_t context_length,
    const std::vector<ContextDistribution>& distributions)
    : context_length_(context_length),
      alphabet_size_(alphabet_size),
      codec_(alphabet_size) {
    require(context_length >= 1, "context length must be at least 1");
    require(context_length + 1 <= codec_.max_length(),
            "context length exceeds codec capacity");
    for (const ContextDistribution& dist : distributions) {
        require(dist.context.size() == context_length_,
                "distribution context length mismatch");
        require(dist.next_counts.size() == alphabet_size_,
                "distribution continuation vector length mismatch");
        std::uint64_t sum = 0;
        for (std::uint64_t c : dist.next_counts) sum += c;
        require(sum == dist.total && sum > 0,
                "distribution total does not match its continuation counts");
        Entry& entry = by_context_[codec_.encode(dist.context)];
        require(entry.next_counts.empty(), "duplicate context in distributions");
        entry.next_counts = dist.next_counts;
        entry.total = dist.total;
    }
    require_data(!by_context_.empty(), "cannot restore an empty model");
}

double ConditionalModel::probability(SymbolView context, Symbol next) const {
    require(context.size() == context_length_, "context length mismatch");
    const auto it = by_context_.find(codec_.encode(context));
    if (it == by_context_.end()) return 0.0;
    return static_cast<double>(it->second.next_counts[next]) /
           static_cast<double>(it->second.total);
}

double ConditionalModel::probability_smoothed(SymbolView context, Symbol next,
                                              double alpha) const {
    require(context.size() == context_length_, "context length mismatch");
    require(alpha >= 0.0, "smoothing pseudo-count must be non-negative");
    const auto it = by_context_.find(codec_.encode(context));
    const double numerator_count =
        it == by_context_.end() ? 0.0 : static_cast<double>(it->second.next_counts[next]);
    const double denominator_count =
        it == by_context_.end() ? 0.0 : static_cast<double>(it->second.total);
    const double denom = denominator_count + alpha * static_cast<double>(alphabet_size_);
    if (denom == 0.0) return 0.0;
    return (numerator_count + alpha) / denom;
}

std::uint64_t ConditionalModel::context_count(SymbolView context) const {
    require(context.size() == context_length_, "context length mismatch");
    const auto it = by_context_.find(codec_.encode(context));
    return it == by_context_.end() ? 0 : it->second.total;
}

std::uint64_t ConditionalModel::continuation_count(SymbolView context, Symbol next) const {
    require(context.size() == context_length_, "context length mismatch");
    const auto it = by_context_.find(codec_.encode(context));
    return it == by_context_.end() ? 0 : it->second.next_counts[next];
}

std::vector<ContextDistribution> ConditionalModel::distributions() const {
    std::vector<std::pair<NgramKey, const Entry*>> keyed;
    keyed.reserve(by_context_.size());
    // Hash order never escapes: the keyed vector is fully sorted below.
    // adiv-lint: allow(unordered-iteration)
    for (const auto& [key, entry] : by_context_) keyed.emplace_back(key, &entry);
    std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
        if (a.second->total != b.second->total) return a.second->total > b.second->total;
        return a.first < b.first;
    });
    std::vector<ContextDistribution> out;
    out.reserve(keyed.size());
    for (const auto& [key, entry] : keyed) {
        ContextDistribution dist;
        dist.context = codec_.decode(key, context_length_);
        dist.next_counts = entry->next_counts;
        dist.total = entry->total;
        out.push_back(std::move(dist));
    }
    return out;
}

}  // namespace adiv
