#include "seq/ngram.hpp"

#include "util/error.hpp"

namespace adiv {

NgramCodec::NgramCodec(std::size_t alphabet_size) : alphabet_size_(alphabet_size) {
    require(alphabet_size > 0, "alphabet size must be positive");
    const auto width = std::bit_width(alphabet_size - 1);
    bits_ = width == 0 ? 1u : static_cast<unsigned>(width);
}

Sequence NgramCodec::decode(NgramKey key, std::size_t length) const {
    require(length <= max_length(), "n-gram length exceeds codec capacity");
    Sequence out(length);
    const NgramKey symbol_mask = (NgramKey{1} << bits_) - 1;
    for (std::size_t i = length; i > 0; --i) {
        out[i - 1] = static_cast<Symbol>(key & symbol_mask);
        key >>= bits_;
    }
    return out;
}

}  // namespace adiv
