// EventStream: a long run of categorical events plus its alphabet size.
//
// Invariant: every symbol in the stream is below alphabet_size. Detectors
// train on one stream and score another; both sides rely on the invariant to
// skip per-symbol validation in their hot loops.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "seq/types.hpp"
#include "util/contracts.hpp"

namespace adiv {

class EventStream {
public:
    /// Takes ownership of the events. Throws DataError if any symbol is
    /// outside the alphabet.
    EventStream(std::size_t alphabet_size, Sequence events);

    /// Empty stream over the given alphabet.
    explicit EventStream(std::size_t alphabet_size);

    /// Empty stream over a trivial 1-symbol alphabet; a placeholder value for
    /// aggregate members that are filled in later.
    EventStream() : EventStream(1) {}

    [[nodiscard]] std::size_t alphabet_size() const noexcept { return alphabet_size_; }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
    [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
    [[nodiscard]] Symbol operator[](std::size_t i) const noexcept { return events_[i]; }
    [[nodiscard]] SymbolView view() const noexcept { return events_; }
    [[nodiscard]] const Sequence& events() const noexcept { return events_; }

    /// View of the window of `length` symbols starting at `pos`.
    /// Requires pos + length <= size().
    [[nodiscard]] SymbolView window(std::size_t pos, std::size_t length) const;

    /// Number of complete windows of the given length: size-length+1, or 0.
    [[nodiscard]] std::size_t window_count(std::size_t length) const noexcept;

    /// Appends a symbol; throws DataError if outside the alphabet.
    void push_back(Symbol s);

    /// Appends a run of symbols; throws DataError if any is outside the
    /// alphabet.
    void append(SymbolView run);

    /// Copy of the sub-stream [pos, pos+length).
    [[nodiscard]] EventStream slice(std::size_t pos, std::size_t length) const;

private:
    std::size_t alphabet_size_;
    Sequence events_;
};

/// Invokes fn(position, window_view) for every complete window of `length`
/// symbols in the stream, sliding by one.
template <typename Fn>
void for_each_window(const EventStream& stream, std::size_t length, Fn&& fn) {
    if (length == 0 || stream.size() < length) return;
    const SymbolView all = stream.view();
    const std::size_t n = stream.size() - length + 1;
    for (std::size_t pos = 0; pos < n; ++pos) {
        ADIV_ASSERT(pos + length <= all.size());
        fn(pos, all.subspan(pos, length));
    }
}

}  // namespace adiv
