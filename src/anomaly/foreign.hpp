// Foreignness and minimality of sequences relative to a training stream.
//
// Definitions (Section 5.1 of the paper):
//   * A sequence of length N is FOREIGN when each of its elements occurs in
//     the training alphabet but the full length-N sequence never occurs in
//     the training data.
//   * A MINIMAL FOREIGN SEQUENCE (MFS) is a foreign sequence all of whose
//     proper contiguous sub-sequences DO occur in the training data — a
//     foreign sequence containing no smaller foreign sequence.
//
// Because sub-sequence presence is upward-hereditary (if a window occurs,
// every window inside it occurs), minimality of a length-N sequence reduces
// to presence of its two length-(N-1) windows; the exhaustive check is still
// provided for verification and tests.
#pragma once

#include "anomaly/subsequence_oracle.hpp"
#include "seq/types.hpp"

namespace adiv {

/// Full diagnostic of a candidate anomaly against the training data.
struct ForeignCheck {
    bool elements_in_alphabet = false;   ///< every symbol occurs in training
    bool absent = false;                 ///< the full sequence never occurs
    bool prefix_present = false;         ///< the length-(N-1) prefix occurs
    bool suffix_present = false;         ///< the length-(N-1) suffix occurs
    double prefix_relative_frequency = 0.0;
    double suffix_relative_frequency = 0.0;

    /// foreign = known elements + absent whole.
    [[nodiscard]] bool foreign() const noexcept {
        return elements_in_alphabet && absent;
    }
    /// minimal foreign = foreign + both (N-1)-windows present.
    [[nodiscard]] bool minimal_foreign() const noexcept {
        return foreign() && prefix_present && suffix_present;
    }
};

/// Runs the prefix/suffix diagnostic. Requires gram.size() >= 2.
ForeignCheck check_foreign(const SubsequenceOracle& oracle, SymbolView gram);

/// True iff the sequence is foreign w.r.t. the oracle's training stream.
bool is_foreign(const SubsequenceOracle& oracle, SymbolView gram);

/// True iff the sequence is a minimal foreign sequence.
bool is_minimal_foreign(const SubsequenceOracle& oracle, SymbolView gram);

/// Exhaustive minimality evidence: every contiguous proper sub-sequence of
/// every length 1..N-1 occurs in training. Quadratic; used by tests and the
/// suite's final verification pass, not by the builder's search loop.
bool all_proper_windows_present(const SubsequenceOracle& oracle, SymbolView gram);

}  // namespace adiv
