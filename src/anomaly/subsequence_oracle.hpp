// SubsequenceOracle: answers presence/rarity queries about windows of a
// training stream, for any window length, with per-length tables built
// lazily and cached.
//
// The anomaly machinery asks many questions of the form "does this n-gram
// occur in training, and how often?" across lengths 1..AS and 2..DW; the
// oracle owns one NgramTable per length so each is built exactly once.
// Not thread-safe: callers serialize access (the evaluation pipeline is
// single-threaded by design for reproducibility).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "seq/ngram_table.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"

namespace adiv {

class SubsequenceOracle {
public:
    /// The oracle keeps a reference to the training stream; the stream must
    /// outlive the oracle.
    explicit SubsequenceOracle(const EventStream& training);

    [[nodiscard]] const EventStream& training() const noexcept { return *training_; }

    /// The (lazily built) table of all length-n training windows.
    [[nodiscard]] const NgramTable& table(std::size_t length) const;

    /// Occurrences of the gram in training (gram length selects the table).
    [[nodiscard]] std::uint64_t count(SymbolView gram) const {
        return table(gram.size()).count(gram);
    }

    [[nodiscard]] bool present(SymbolView gram) const { return count(gram) > 0; }

    /// count / total windows of that length; 0 for absent grams.
    [[nodiscard]] double relative_frequency(SymbolView gram) const {
        return table(gram.size()).relative_frequency(gram);
    }

    /// Present but below the rarity threshold.
    [[nodiscard]] bool rare(SymbolView gram, double threshold) const {
        const double f = relative_frequency(gram);
        return f > 0.0 && f < threshold;
    }

    /// Present at or above the rarity threshold.
    [[nodiscard]] bool common(SymbolView gram, double threshold) const {
        return relative_frequency(gram) >= threshold;
    }

private:
    const EventStream* training_;
    mutable std::map<std::size_t, std::unique_ptr<NgramTable>> tables_;
};

}  // namespace adiv
