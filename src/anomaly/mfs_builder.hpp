// Synthesis of minimal foreign sequences composed of rare sub-sequences.
//
// The paper composes its anomalies by "concatenating short, rare sequences
// from the training trace" (Section 5.4.2): the result is likely foreign,
// easy to verify for foreign-ness and minimality, and — being made of rare
// pieces — detectable in principle by probabilistic detectors even at window
// sizes smaller than the anomaly.
//
// The builder searches rather than hand-shapes: it extends rare present
// (N-1)-grams by one symbol and keeps extensions that are (a) absent as a
// whole from training, (b) minimal (the new suffix window is present), and
// (c) rare-composed (prefix and suffix windows are rare) when N >= 3. For
// N = 2 the pieces are single symbols, which can never be rare in this
// corpus (the paper makes the same observation for N = 1 being impossible),
// so only foreign-ness and element presence are required.
//
// Candidates are produced in a deterministic order — rarest prefix first,
// then smallest extension symbol — so a given corpus always yields the same
// anomalies.
#pragma once

#include <cstddef>
#include <vector>

#include "anomaly/subsequence_oracle.hpp"
#include "seq/types.hpp"

namespace adiv {

struct MfsConfig {
    /// Rarity cutoff for the composed pieces (Warrender's 0.5%).
    double rare_threshold = 0.005;
    /// Require the prefix/suffix windows to be rare (sizes >= 3).
    bool require_rare_composition = true;
};

class MfsBuilder {
public:
    /// The oracle (and its training stream) must outlive the builder.
    explicit MfsBuilder(const SubsequenceOracle& oracle, MfsConfig config = {});

    /// Up to `limit` distinct minimal foreign sequences of the given size,
    /// deterministic order. size must be >= 2. May return fewer (or none)
    /// when the corpus does not admit them.
    [[nodiscard]] std::vector<Sequence> candidates(std::size_t size,
                                                   std::size_t limit) const;

    /// First candidate of the given size. Throws SynthesisError when the
    /// corpus admits none.
    [[nodiscard]] Sequence build(std::size_t size) const;

    [[nodiscard]] const MfsConfig& config() const noexcept { return config_; }

private:
    const SubsequenceOracle* oracle_;
    MfsConfig config_;

    [[nodiscard]] std::vector<Sequence> pair_candidates(std::size_t limit) const;
};

}  // namespace adiv
