#include "anomaly/suite.hpp"

#include "anomaly/foreign.hpp"
#include "util/error.hpp"

namespace adiv {

EvaluationSuite EvaluationSuite::build(const TrainingCorpus& corpus,
                                       SuiteConfig config) {
    require(config.min_anomaly_size >= 2, "anomaly sizes start at 2");
    require(config.min_anomaly_size <= config.max_anomaly_size,
            "anomaly size range is empty");
    require(config.min_window >= 2, "detector windows start at 2");
    require(config.min_window <= config.max_window, "window range is empty");

    EvaluationSuite suite;
    suite.config_ = config;
    suite.corpus_ = &corpus;

    SubsequenceOracle oracle(corpus.training());
    MfsBuilder builder(oracle, config.mfs);
    Injector injector(corpus, oracle);

    for (std::size_t as = config.min_anomaly_size; as <= config.max_anomaly_size;
         ++as) {
        const auto candidates = builder.candidates(as, config.candidate_limit);
        bool placed = false;
        for (const Sequence& anomaly : candidates) {
            // A candidate is accepted only if it injects cleanly for every
            // window length in the study.
            std::vector<Entry> cell_entries;
            cell_entries.reserve(config.max_window - config.min_window + 1);
            bool all_ok = true;
            for (std::size_t dw = config.min_window; dw <= config.max_window; ++dw) {
                auto injected =
                    injector.try_inject(anomaly, dw, config.background_length);
                if (!injected) {
                    all_ok = false;
                    break;
                }
                Entry e;
                e.anomaly_size = as;
                e.window_length = dw;
                e.stream = std::move(*injected);
                cell_entries.push_back(std::move(e));
            }
            if (!all_ok) continue;

            ADIV_ASSERT(is_minimal_foreign(oracle, anomaly));
            ADIV_ASSERT(all_proper_windows_present(oracle, anomaly));
            suite.anomalies_.emplace(as, anomaly);
            for (Entry& e : cell_entries) {
                suite.index_[{e.anomaly_size, e.window_length}] =
                    suite.entries_.size();
                suite.entries_.push_back(std::move(e));
            }
            placed = true;
            break;
        }
        if (!placed)
            throw SynthesisError(
                "no injectable minimal foreign sequence of size " +
                std::to_string(as) + " found within " +
                std::to_string(config.candidate_limit) + " candidates");
    }
    return suite;
}

const EvaluationSuite::Entry& EvaluationSuite::entry(
    std::size_t anomaly_size, std::size_t window_length) const {
    const auto it = index_.find({anomaly_size, window_length});
    require(it != index_.end(),
            "no suite entry for anomaly size " + std::to_string(anomaly_size) +
                ", window " + std::to_string(window_length));
    return entries_[it->second];
}

const Sequence& EvaluationSuite::anomaly(std::size_t anomaly_size) const {
    const auto it = anomalies_.find(anomaly_size);
    require(it != anomalies_.end(),
            "no anomaly of size " + std::to_string(anomaly_size) + " in suite");
    return it->second;
}

std::vector<std::size_t> EvaluationSuite::anomaly_sizes() const {
    std::vector<std::size_t> out;
    for (std::size_t as = config_.min_anomaly_size; as <= config_.max_anomaly_size;
         ++as)
        out.push_back(as);
    return out;
}

std::vector<std::size_t> EvaluationSuite::window_lengths() const {
    std::vector<std::size_t> out;
    for (std::size_t dw = config_.min_window; dw <= config_.max_window; ++dw)
        out.push_back(dw);
    return out;
}

}  // namespace adiv
