#include "anomaly/foreign.hpp"

#include "util/error.hpp"

namespace adiv {

ForeignCheck check_foreign(const SubsequenceOracle& oracle, SymbolView gram) {
    require(gram.size() >= 2, "foreignness diagnostics need length >= 2");
    ForeignCheck out;
    out.elements_in_alphabet = true;
    for (Symbol s : gram) {
        const Sequence single{s};
        if (!oracle.present(single)) {
            out.elements_in_alphabet = false;
            break;
        }
    }
    out.absent = !oracle.present(gram);
    const SymbolView prefix = gram.subspan(0, gram.size() - 1);
    const SymbolView suffix = gram.subspan(1, gram.size() - 1);
    out.prefix_present = oracle.present(prefix);
    out.suffix_present = oracle.present(suffix);
    out.prefix_relative_frequency = oracle.relative_frequency(prefix);
    out.suffix_relative_frequency = oracle.relative_frequency(suffix);
    return out;
}

bool is_foreign(const SubsequenceOracle& oracle, SymbolView gram) {
    return check_foreign(oracle, gram).foreign();
}

bool is_minimal_foreign(const SubsequenceOracle& oracle, SymbolView gram) {
    return check_foreign(oracle, gram).minimal_foreign();
}

bool all_proper_windows_present(const SubsequenceOracle& oracle, SymbolView gram) {
    for (std::size_t len = 1; len < gram.size(); ++len)
        for (std::size_t pos = 0; pos + len <= gram.size(); ++pos)
            if (!oracle.present(gram.subspan(pos, len))) return false;
    return true;
}

}  // namespace adiv
