// The full evaluation suite of Section 5.4: one test stream per
// (anomaly size, detector window) pair.
//
// The paper builds 8 anomalies (minimal foreign sequences of sizes 2..9) and
// replicates each across detector windows 2..15, giving 112 test streams.
// Within one anomaly size the same MFS is reused across windows; each
// stream's injection is validated for its own window length. When a
// candidate anomaly cannot be injected cleanly for some window, the builder
// moves on to the next candidate ("a new anomaly must be produced as a
// replacement, and the process repeated").
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "anomaly/injection.hpp"
#include "anomaly/mfs_builder.hpp"
#include "datagen/corpus.hpp"

namespace adiv {

struct SuiteConfig {
    std::size_t min_anomaly_size = 2;
    std::size_t max_anomaly_size = 9;
    std::size_t min_window = 2;
    std::size_t max_window = 15;
    std::size_t background_length = 4096;
    /// MFS candidates tried per anomaly size before giving up.
    std::size_t candidate_limit = 64;
    MfsConfig mfs;
};

class EvaluationSuite {
public:
    struct Entry {
        std::size_t anomaly_size = 0;
        std::size_t window_length = 0;
        InjectedStream stream;
    };

    /// Synthesizes anomalies and builds all test streams. Throws
    /// SynthesisError when some anomaly size admits no injectable MFS.
    /// The corpus must outlive the suite.
    static EvaluationSuite build(const TrainingCorpus& corpus, SuiteConfig config = {});

    [[nodiscard]] const SuiteConfig& config() const noexcept { return config_; }
    [[nodiscard]] const TrainingCorpus& corpus() const noexcept { return *corpus_; }

    /// The test stream for one (AS, DW) cell.
    [[nodiscard]] const Entry& entry(std::size_t anomaly_size,
                                     std::size_t window_length) const;

    /// The MFS used for all windows of one anomaly size.
    [[nodiscard]] const Sequence& anomaly(std::size_t anomaly_size) const;

    [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }
    [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }

    [[nodiscard]] std::vector<std::size_t> anomaly_sizes() const;
    [[nodiscard]] std::vector<std::size_t> window_lengths() const;

private:
    EvaluationSuite() = default;

    SuiteConfig config_;
    const TrainingCorpus* corpus_ = nullptr;
    std::map<std::size_t, Sequence> anomalies_;             // by anomaly size
    std::vector<Entry> entries_;                            // all cells
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> index_;  // (as,dw)->idx
};

}  // namespace adiv
