#include "anomaly/subsequence_oracle.hpp"

#include "util/error.hpp"

namespace adiv {

SubsequenceOracle::SubsequenceOracle(const EventStream& training)
    : training_(&training) {
    require_data(!training.empty(), "subsequence oracle needs a non-empty stream");
}

const NgramTable& SubsequenceOracle::table(std::size_t length) const {
    require(length > 0, "window length must be positive");
    auto it = tables_.find(length);
    if (it == tables_.end()) {
        auto built = std::make_unique<NgramTable>(
            NgramTable::from_stream(*training_, length));
        it = tables_.emplace(length, std::move(built)).first;
    }
    return *it->second;
}

}  // namespace adiv
