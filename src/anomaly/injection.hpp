// Boundary-safe injection of an anomaly into clean background data, and the
// incident span used to score detector responses (Figure 2 of the paper).
//
// The test data is background (repetitions of the corpus base cycle) with the
// anomaly spliced in. Random placement would create unintended foreign or
// rare windows where anomaly and background meet; the paper requires an
// injection that keeps the boundaries clean. Because the anomaly is composed
// of rare (present-but-infrequent) training sub-sequences, windows that
// overlap its interior are necessarily rare — that is inherent to the anomaly
// and is attributed to it through the incident span. What injection must
// guarantee is:
//
//   * windows OUTSIDE the incident span are common training windows (the
//     background introduces no signal of its own);
//   * windows inside the span that do NOT contain the entire anomaly are
//     PRESENT in training (no unintended foreign sequence is created at the
//     boundaries — only the anomaly itself is foreign);
//   * windows that contain the entire anomaly are foreign, which holds
//     automatically since any superstring of a foreign sequence is foreign.
//
// The injector searches the background phases on both sides of the anomaly
// for a placement meeting these conditions and reports failure when the
// anomaly cannot be placed — in which case the caller synthesizes a new
// anomaly and retries, exactly as the paper describes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "anomaly/subsequence_oracle.hpp"
#include "datagen/corpus.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"

namespace adiv {

/// The contiguous range of window positions that contain at least one element
/// of the injected anomaly. Detector responses within the span are attributed
/// to the anomaly; the maximum response over the span decides hit vs miss.
struct IncidentSpan {
    std::size_t first = 0;  ///< first window position in the span (inclusive)
    std::size_t last = 0;   ///< last window position in the span (inclusive)

    [[nodiscard]] std::size_t count() const noexcept { return last - first + 1; }
    [[nodiscard]] bool contains(std::size_t window_pos) const noexcept {
        return window_pos >= first && window_pos <= last;
    }
};

/// Span of DW-windows touching the anomaly at [anomaly_pos,
/// anomaly_pos+anomaly_size). Requires the anomaly to fit in the stream and
/// the stream to hold at least one window.
IncidentSpan incident_span(std::size_t anomaly_pos, std::size_t anomaly_size,
                           std::size_t window_length, std::size_t stream_size);

/// True when the DW-window at window_pos covers every element of the anomaly.
bool window_covers_anomaly(std::size_t window_pos, std::size_t window_length,
                           std::size_t anomaly_pos,
                           std::size_t anomaly_size) noexcept;

/// A validated test stream: background + one injected anomaly.
struct InjectedStream {
    EventStream stream;
    std::size_t anomaly_pos = 0;
    std::size_t anomaly_size = 0;
    std::size_t window_length = 0;  ///< the DW this stream was validated for
    IncidentSpan span;              ///< incident span at that DW
};

class Injector {
public:
    /// Both the corpus and the oracle must outlive the injector; the oracle
    /// must be built over the corpus training stream.
    Injector(const TrainingCorpus& corpus, const SubsequenceOracle& oracle);

    /// Attempts to place the anomaly in the middle of `background_length`
    /// background elements such that the stream validates for windows of
    /// `window_length`. Tries all background phase combinations, preferring
    /// the cycle-continuation phases. Returns nullopt when no placement
    /// satisfies the boundary conditions.
    [[nodiscard]] std::optional<InjectedStream> try_inject(
        SymbolView anomaly, std::size_t window_length,
        std::size_t background_length = 4096) const;

    /// Checks the three conditions above over the whole stream. Returns an
    /// empty string on success, otherwise a human-readable reason for the
    /// first violation found.
    [[nodiscard]] std::string validate(const EventStream& stream,
                                       std::size_t anomaly_pos,
                                       std::size_t anomaly_size,
                                       std::size_t window_length) const;

private:
    const TrainingCorpus* corpus_;
    const SubsequenceOracle* oracle_;
};

}  // namespace adiv
