#include "anomaly/rare_anomaly.hpp"

#include "seq/stats.hpp"
#include "util/error.hpp"

namespace adiv {

RareAnomalyBuilder::RareAnomalyBuilder(const SubsequenceOracle& oracle,
                                       double rare_threshold)
    : oracle_(&oracle), rare_threshold_(rare_threshold) {
    require(rare_threshold > 0.0 && rare_threshold < 1.0,
            "rare threshold must be in (0,1)");
}

std::vector<Sequence> RareAnomalyBuilder::candidates(std::size_t size,
                                                     std::size_t limit) const {
    require(size >= 2, "rare anomalies have size >= 2 (single symbols of a "
                       "small alphabet cannot be rare)");
    std::vector<Sequence> out;
    if (limit == 0) return out;
    for (RareGram& rg : rare_grams(oracle_->table(size), rare_threshold_)) {
        out.push_back(std::move(rg.gram));
        if (out.size() >= limit) break;
    }
    return out;
}

Sequence RareAnomalyBuilder::build(std::size_t size) const {
    auto found = candidates(size, 1);
    if (found.empty())
        throw SynthesisError("no rare sequence of size " + std::to_string(size) +
                             " exists in this training corpus");
    return std::move(found.front());
}

RareInjector::RareInjector(const TrainingCorpus& corpus,
                           const SubsequenceOracle& oracle)
    : corpus_(&corpus), oracle_(&oracle) {
    require(&oracle.training() == &corpus.training(),
            "oracle must be built over the corpus training stream");
}

std::string RareInjector::validate(const EventStream& stream,
                                   std::size_t anomaly_pos,
                                   std::size_t anomaly_size,
                                   std::size_t window_length) const {
    const double rare = corpus_->spec().rare_threshold;
    const IncidentSpan span =
        incident_span(anomaly_pos, anomaly_size, window_length, stream.size());
    const NgramTable& table = oracle_->table(window_length);
    const double total = static_cast<double>(table.total());

    bool any_rare_in_span = false;
    const std::size_t windows = stream.window_count(window_length);
    for (std::size_t pos = 0; pos < windows; ++pos) {
        const SymbolView w = stream.window(pos, window_length);
        const std::uint64_t count = table.count(w);
        if (count == 0)
            return "window at " + std::to_string(pos) +
                   " is foreign; a rare-anomaly stream must contain no foreign "
                   "windows";
        const double freq = static_cast<double>(count) / total;
        if (span.contains(pos)) {
            if (freq < rare) any_rare_in_span = true;
            if (window_covers_anomaly(pos, window_length, anomaly_pos,
                                      anomaly_size) &&
                freq >= rare)
                return "window at " + std::to_string(pos) +
                       " covers the whole anomaly yet is common";
        } else if (freq < rare) {
            return "background window at " + std::to_string(pos) +
                   " is an unintended rare sequence";
        }
    }
    if (!any_rare_in_span)
        return "no incident-span window is rare at this window length; the "
               "anomaly is invisible in principle";
    return {};
}

std::optional<InjectedStream> RareInjector::try_inject(
    SymbolView anomaly, std::size_t window_length,
    std::size_t background_length) const {
    require(!anomaly.empty(), "anomaly must be non-empty");
    require(window_length >= 2, "window length must be at least 2");
    const std::size_t n = corpus_->spec().alphabet_size;
    require(background_length >= anomaly.size() + 4 * window_length + 2 * n,
            "background too short to host the anomaly and its boundaries");

    const std::size_t left_len = (background_length - anomaly.size()) / 2;
    const std::size_t right_len = background_length - anomaly.size() - left_len;

    auto preferred_first = [n](Symbol preferred) {
        std::vector<Symbol> order;
        order.reserve(n);
        for (std::size_t k = 0; k < n; ++k)
            order.push_back(static_cast<Symbol>((preferred + k) % n));
        return order;
    };
    auto left_start_for_end = [&](Symbol end) {
        const std::size_t shift = (left_len - 1) % n;
        return static_cast<Symbol>((end + n - shift) % n);
    };
    const Symbol want_left_end =
        static_cast<Symbol>((anomaly.front() + n - 1) % n);
    const Symbol want_right_start = corpus_->cycle_successor(anomaly.back());

    for (Symbol left_end : preferred_first(want_left_end)) {
        for (Symbol right_start : preferred_first(want_right_start)) {
            EventStream stream =
                corpus_->background(left_len, left_start_for_end(left_end));
            stream.append(anomaly);
            const EventStream right = corpus_->background(right_len, right_start);
            stream.append(right.view());
            if (!validate(stream, left_len, anomaly.size(), window_length).empty())
                continue;
            InjectedStream out;
            out.anomaly_pos = left_len;
            out.anomaly_size = anomaly.size();
            out.window_length = window_length;
            out.span = incident_span(left_len, anomaly.size(), window_length,
                                     stream.size());
            out.stream = std::move(stream);
            return out;
        }
    }
    return std::nullopt;
}

}  // namespace adiv
