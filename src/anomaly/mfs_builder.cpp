#include "anomaly/mfs_builder.hpp"

#include <algorithm>

#include "anomaly/foreign.hpp"
#include "seq/stats.hpp"
#include "util/error.hpp"

namespace adiv {

MfsBuilder::MfsBuilder(const SubsequenceOracle& oracle, MfsConfig config)
    : oracle_(&oracle), config_(config) {
    require(config_.rare_threshold > 0.0 && config_.rare_threshold < 1.0,
            "rare threshold must be in (0,1)");
}

std::vector<Sequence> MfsBuilder::pair_candidates(std::size_t limit) const {
    std::vector<Sequence> out;
    const std::size_t n = oracle_->training().alphabet_size();
    const NgramTable& pairs = oracle_->table(2);
    for (Symbol a = 0; a < n && out.size() < limit; ++a) {
        if (!oracle_->present(Sequence{a})) continue;
        for (Symbol b = 0; b < n && out.size() < limit; ++b) {
            if (!oracle_->present(Sequence{b})) continue;
            const Sequence cand{a, b};
            if (!pairs.contains(cand)) out.push_back(cand);
        }
    }
    return out;
}

std::vector<Sequence> MfsBuilder::candidates(std::size_t size,
                                             std::size_t limit) const {
    require(size >= 2, "a minimal foreign sequence has size >= 2 (a size-1 "
                       "foreign element would have to be foreign and rare at "
                       "once, which is impossible)");
    if (limit == 0) return {};
    if (size == 2) return pair_candidates(limit);

    const std::size_t piece_len = size - 1;
    const NgramTable& piece_table = oracle_->table(piece_len);
    const NgramTable& whole_table = oracle_->table(size);

    // Prefix pieces, rarest first for deterministic, rare-biased search.
    std::vector<Sequence> prefixes;
    if (config_.require_rare_composition) {
        for (auto& rg : rare_grams(piece_table, config_.rare_threshold))
            prefixes.push_back(std::move(rg.gram));
    } else {
        auto items = piece_table.items_by_count();
        std::reverse(items.begin(), items.end());  // ascending count
        prefixes.reserve(items.size());
        for (auto& [gram, count] : items) {
            (void)count;
            prefixes.push_back(std::move(gram));
        }
    }

    const std::size_t n = oracle_->training().alphabet_size();
    std::vector<Sequence> out;
    Sequence cand(size);
    for (const Sequence& prefix : prefixes) {
        std::copy(prefix.begin(), prefix.end(), cand.begin());
        for (Symbol y = 0; y < n; ++y) {
            cand[size - 1] = y;
            if (whole_table.contains(cand)) continue;  // not foreign
            const SymbolView suffix = SymbolView(cand).subspan(1, piece_len);
            if (!oracle_->present(suffix)) continue;   // not minimal
            if (config_.require_rare_composition &&
                !oracle_->rare(suffix, config_.rare_threshold))
                continue;                              // not rare-composed
            out.push_back(cand);
            if (out.size() >= limit) return out;
        }
    }
    return out;
}

Sequence MfsBuilder::build(std::size_t size) const {
    auto found = candidates(size, 1);
    if (found.empty())
        throw SynthesisError(
            "no minimal foreign sequence of size " + std::to_string(size) +
            " is constructible from this training corpus");
    ADIV_ASSERT(is_minimal_foreign(*oracle_, found.front()));
    return std::move(found.front());
}

}  // namespace adiv
