#include "anomaly/injection.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adiv {

IncidentSpan incident_span(std::size_t anomaly_pos, std::size_t anomaly_size,
                           std::size_t window_length, std::size_t stream_size) {
    require(anomaly_size > 0, "anomaly must be non-empty");
    require(window_length > 0, "window length must be positive");
    require(anomaly_pos + anomaly_size <= stream_size, "anomaly outside stream");
    require(stream_size >= window_length, "stream shorter than one window");
    IncidentSpan span;
    span.first = anomaly_pos >= window_length - 1 ? anomaly_pos - (window_length - 1) : 0;
    span.last = std::min(anomaly_pos + anomaly_size - 1, stream_size - window_length);
    ADIV_ASSERT(span.first <= span.last);
    return span;
}

bool window_covers_anomaly(std::size_t window_pos, std::size_t window_length,
                           std::size_t anomaly_pos,
                           std::size_t anomaly_size) noexcept {
    return window_pos <= anomaly_pos &&
           window_pos + window_length >= anomaly_pos + anomaly_size;
}

Injector::Injector(const TrainingCorpus& corpus, const SubsequenceOracle& oracle)
    : corpus_(&corpus), oracle_(&oracle) {
    require(&oracle.training() == &corpus.training(),
            "oracle must be built over the corpus training stream");
}

std::string Injector::validate(const EventStream& stream, std::size_t anomaly_pos,
                               std::size_t anomaly_size,
                               std::size_t window_length) const {
    const double rare = corpus_->spec().rare_threshold;
    const IncidentSpan span =
        incident_span(anomaly_pos, anomaly_size, window_length, stream.size());
    const NgramTable& table = oracle_->table(window_length);
    const double total = static_cast<double>(table.total());

    const std::size_t windows = stream.window_count(window_length);
    // Span windows first: they are few and carry all realistic failure modes,
    // so a bad phase choice fails fast.
    auto check_window = [&](std::size_t pos) -> std::string {
        const SymbolView w = stream.window(pos, window_length);
        const std::uint64_t count = table.count(w);
        if (window_covers_anomaly(pos, window_length, anomaly_pos, anomaly_size)) {
            if (count != 0)
                return "window at " + std::to_string(pos) +
                       " covers the whole anomaly yet occurs in training";
            return {};
        }
        if (span.contains(pos)) {
            if (count == 0)
                return "boundary window at " + std::to_string(pos) +
                       " is an unintended foreign sequence";
            return {};
        }
        if (count == 0)
            return "background window at " + std::to_string(pos) +
                   " is an unintended foreign sequence";
        if (static_cast<double>(count) / total < rare)
            return "background window at " + std::to_string(pos) +
                   " is an unintended rare sequence";
        return {};
    };

    for (std::size_t pos = span.first; pos <= span.last; ++pos)
        if (auto reason = check_window(pos); !reason.empty()) return reason;
    for (std::size_t pos = 0; pos < windows; ++pos) {
        if (span.contains(pos)) continue;
        if (auto reason = check_window(pos); !reason.empty()) return reason;
    }
    return {};
}

std::optional<InjectedStream> Injector::try_inject(
    SymbolView anomaly, std::size_t window_length,
    std::size_t background_length) const {
    require(!anomaly.empty(), "anomaly must be non-empty");
    require(window_length >= 2, "window length must be at least 2");
    const std::size_t n = corpus_->spec().alphabet_size;
    require(background_length >= anomaly.size() + 4 * window_length + 2 * n,
            "background too short to host the anomaly and its boundaries");

    const std::size_t left_len = (background_length - anomaly.size()) / 2;
    const std::size_t right_len = background_length - anomaly.size() - left_len;

    // Phase preference: the left background should flow into the anomaly's
    // first element along the cycle, and the right background should continue
    // from its last element; other phases are tried as fallbacks.
    auto preferred_first = [n](Symbol preferred) {
        std::vector<Symbol> order;
        order.reserve(n);
        for (std::size_t k = 0; k < n; ++k)
            order.push_back(static_cast<Symbol>((preferred + k) % n));
        return order;
    };
    // Left run of length L ending at symbol e starts at (e - (L-1)) mod n.
    auto left_start_for_end = [&](Symbol end) {
        const std::size_t shift = (left_len - 1) % n;
        return static_cast<Symbol>((end + n - shift) % n);
    };

    const Symbol want_left_end =
        static_cast<Symbol>((anomaly.front() + n - 1) % n);
    const Symbol want_right_start = corpus_->cycle_successor(anomaly.back());

    for (Symbol left_end : preferred_first(want_left_end)) {
        for (Symbol right_start : preferred_first(want_right_start)) {
            EventStream stream =
                corpus_->background(left_len, left_start_for_end(left_end));
            ADIV_ASSERT(stream[stream.size() - 1] == left_end);
            stream.append(anomaly);
            const EventStream right = corpus_->background(right_len, right_start);
            stream.append(right.view());

            if (!validate(stream, left_len, anomaly.size(), window_length).empty())
                continue;

            InjectedStream out;
            out.anomaly_pos = left_len;
            out.anomaly_size = anomaly.size();
            out.window_length = window_length;
            out.span = incident_span(left_len, anomaly.size(), window_length,
                                     stream.size());
            out.stream = std::move(stream);
            return out;
        }
    }
    return std::nullopt;
}

}  // namespace adiv
