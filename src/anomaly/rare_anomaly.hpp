// Rare-sequence anomalies — the second anomaly type the paper discusses but
// does not chart (Section 5.1: "Rare sequences are detectable by some
// detectors, e.g., Markov-based detectors, but are not detectable by others,
// e.g., Stide and the Lane and Brodley detector").
//
// A rare anomaly is a sequence that DOES occur in training, but with
// relative frequency below the rarity cutoff. Injected into clean background
// it produces no foreign window at any length, so:
//   * Stide and L&B are blind to it everywhere (every window is in their
//     normal database);
//   * frequency- and probability-based detectors (t-Stide, Markov, NN, HMM,
//     rule) can still register it.
// The ext_rare_anomalies bench charts exactly that contrast.
//
// Injection validity for a rare anomaly differs from the MFS case: NO window
// of the stream may be foreign, every window that covers the whole anomaly
// must be rare (the event stays anomalous at that window length), at least
// one incident-span window must be rare at the evaluated window length, and
// windows outside the span must be common.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "anomaly/injection.hpp"
#include "anomaly/subsequence_oracle.hpp"
#include "datagen/corpus.hpp"
#include "seq/types.hpp"

namespace adiv {

class RareAnomalyBuilder {
public:
    /// The oracle (and its training stream) must outlive the builder.
    explicit RareAnomalyBuilder(const SubsequenceOracle& oracle,
                                double rare_threshold = 0.005);

    /// Up to `limit` present-but-rare sequences of the given size, rarest
    /// first (deterministic). size must be >= 2.
    [[nodiscard]] std::vector<Sequence> candidates(std::size_t size,
                                                   std::size_t limit) const;

    /// First candidate; throws SynthesisError when the corpus has no rare
    /// sequence of that size.
    [[nodiscard]] Sequence build(std::size_t size) const;

    [[nodiscard]] double rare_threshold() const noexcept { return rare_threshold_; }

private:
    const SubsequenceOracle* oracle_;
    double rare_threshold_;
};

/// Injects a rare anomaly into clean background; same placement search as
/// Injector but with the rare-anomaly validity rules above.
class RareInjector {
public:
    RareInjector(const TrainingCorpus& corpus, const SubsequenceOracle& oracle);

    [[nodiscard]] std::optional<InjectedStream> try_inject(
        SymbolView anomaly, std::size_t window_length,
        std::size_t background_length = 4096) const;

    /// Empty string when the stream satisfies the rare-anomaly conditions,
    /// otherwise the first violation.
    [[nodiscard]] std::string validate(const EventStream& stream,
                                       std::size_t anomaly_pos,
                                       std::size_t anomaly_size,
                                       std::size_t window_length) const;

private:
    const TrainingCorpus* corpus_;
    const SubsequenceOracle* oracle_;
};

}  // namespace adiv
