// Repository scanning for the invariant linter: which files are checked and
// how they are loaded.
//
// The scanned set is `src/**/*.{hpp,cpp}` plus `tools/*.cpp` — the library
// and the binaries that ship with it. Tests, benches, and examples are
// deliberately out of the default set: lint-rule fixture tests must be able
// to contain violating snippets, and harness code may legitimately read the
// wall clock for progress display. Paths are reported repo-relative with
// '/' separators and scanned in sorted order, so output is deterministic.
#pragma once

#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace adiv::lint {

/// Loads the default scan set from a repository root. Throws InvalidArgument
/// when root lacks a src/ directory (a wrong-directory guard, so `adiv_lint
/// .` run from the wrong place fails loudly rather than reporting clean).
std::vector<SourceFile> collect_tree_sources(const std::string& root);

/// collect_tree_sources + run_lint in one call.
std::vector<Finding> lint_tree(const std::string& root,
                               const LintOptions& options = {});

}  // namespace adiv::lint
