// The invariant rule engine: scans adiv's own sources for violations of the
// project contracts that the compiler cannot see.
//
// Rules (names are stable; suppressions and --rules refer to them):
//
//   nondeterminism       Banned wall-clock / libc-randomness APIs: rand(),
//                        srand(), rand_r(), drand48()-family,
//                        std::random_device, std::time / time(nullptr), and
//                        std::chrono::system_clock::now. The repro's claims
//                        (bit-identical parallel maps, bit-identical session
//                        replay) require every output to be a function of
//                        seeds and inputs alone; randomness goes through
//                        util/rng.hpp, timestamps through the injectable
//                        manifest clock (obs/manifest.hpp).
//
//   unordered-iteration  Range-for over a std::unordered_{map,set} (or an
//                        alias of one) declared in the same file or its
//                        header twin. Iteration order is
//                        implementation-defined, so any such loop feeding a
//                        serialized, CSV, or JSON output path is a silent
//                        reproducibility bug. Loops that fold commutatively
//                        or sort afterwards carry a suppression stating so.
//
//   score-memo           `mutable` members in src/detect/ must be ScoreMemo,
//                        a mutex, or an atomic. The detector concurrency
//                        contract (detect/detector.hpp) allows concurrent
//                        score() on one trained instance; a bare mutable
//                        cache breaks it.
//
//   metric-name          String literals passed to counter()/gauge()/
//                        histogram(), naming a TraceSpan, or naming a wait
//                        site (wait_site()/site(), whose names expand into
//                        `.acquires`/`.contended`/`.wait_us` instruments)
//                        must follow the dotted-lowercase convention:
//                        `subsystem.metric` for registry instruments,
//                        `subsystem.span` for trace spans; segments
//                        [a-z][a-z0-9_]*, at least one dot. All constructor
//                        shapes are covered, including TraceSpan
//                        span(sink, "name") where the literal is not the
//                        first argument.
//
//   header-hygiene       Every header carries `#pragma once`, and every
//                        header under src/ is reachable from the umbrella
//                        src/adiv.hpp (so `#include "adiv.hpp"` really is
//                        the full API). The lint library itself is tooling,
//                        not part of the adiv API, and is exempt from the
//                        umbrella requirement.
//
// Suppressions: a comment `// adiv-lint: allow(rule)` (comma-separated
// rules, or `all`) suppresses findings on its own line and the next line.
// Suppressions are deliberate, reviewable exceptions — each one should state
// why the invariant holds anyway.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adiv::lint {

struct Finding {
    std::string rule;
    std::string file;      // repo-relative path, '/' separators
    std::size_t line = 0;  // 1-based
    std::string message;
};

/// One source file to scan. `path` is repo-relative with '/' separators;
/// rules use it for scoping (e.g. score-memo applies under src/detect/).
struct SourceFile {
    std::string path;
    std::string text;
};

struct LintOptions {
    /// Rule names to run; empty means all rules.
    std::vector<std::string> rules;
};

/// All rule names, in reporting order.
std::vector<std::string> rule_names();

/// Scans the given sources and returns unsuppressed findings, sorted by
/// (file, line, rule). Cross-file rules (unordered-iteration's header-twin
/// declarations, header-hygiene's umbrella coverage) see exactly the files
/// passed in. Throws InvalidArgument on an unknown rule name in options.
std::vector<Finding> run_lint(const std::vector<SourceFile>& sources,
                              const LintOptions& options = {});

}  // namespace adiv::lint
