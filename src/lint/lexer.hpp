// A lightweight C++ tokenizer for the in-tree invariant linter.
//
// This is not a compiler front end: it splits source text into just enough
// token structure — identifiers, literals, comments, preprocessor directives,
// punctuation — for the rule engine (lint/rules.hpp) to pattern-match
// project invariants reliably. Crucially it gets the *hard* lexical cases
// right, because they are exactly where naive grep-based checks lie:
// banned identifiers inside strings or comments must not fire, suppression
// comments must be attributed to the correct line, raw strings may contain
// anything, and `::` must not be confused with two range-for colons.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adiv::lint {

enum class TokKind {
    Identifier,    // names and keywords (the lexer does not distinguish)
    Number,        // numeric literal, loosely lexed
    String,        // "..." or R"(...)" — text excludes the quotes/delimiters
    CharLit,       // '...' — text excludes the quotes
    Punct,         // one operator/punctuator; "::" is a single token
    Comment,       // // or /* */ — text excludes the comment markers
    Preprocessor,  // one whole directive, continuations folded in
};

struct Tok {
    TokKind kind = TokKind::Punct;
    std::string text;
    std::size_t line = 0;  // 1-based line of the token's first character
};

/// Tokenizes C++ source. Never throws on malformed input (an unterminated
/// string or comment simply ends the token at end-of-file) — the linter must
/// degrade gracefully on code the compiler would reject.
std::vector<Tok> lex_cpp(std::string_view source);

}  // namespace adiv::lint
