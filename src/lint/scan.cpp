#include "lint/scan.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace adiv::lint {

namespace {

namespace fs = std::filesystem;

bool wanted_extension(const fs::path& path, bool headers_too) {
    const std::string ext = path.extension().string();
    return ext == ".cpp" || (headers_too && ext == ".hpp");
}

std::string relative_slash_path(const fs::path& path, const fs::path& root) {
    std::string rel = fs::relative(path, root).generic_string();
    return rel;
}

void add_dir(const fs::path& root, const fs::path& dir, bool headers_too,
             std::vector<SourceFile>& out) {
    if (!fs::is_directory(dir)) return;
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file() || !wanted_extension(entry.path(), headers_too))
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        require_data(in.good(), "cannot read '" + entry.path().string() + "'");
        std::ostringstream text;
        text << in.rdbuf();
        out.push_back(SourceFile{relative_slash_path(entry.path(), root), text.str()});
    }
}

}  // namespace

std::vector<SourceFile> collect_tree_sources(const std::string& root) {
    const fs::path base(root);
    require(fs::is_directory(base / "src"),
            "'" + root + "' does not look like the adiv repository root "
            "(no src/ directory)");
    std::vector<SourceFile> sources;
    add_dir(base, base / "src", /*headers_too=*/true, sources);
    add_dir(base, base / "tools", /*headers_too=*/false, sources);
    std::sort(sources.begin(), sources.end(),
              [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
    return sources;
}

std::vector<Finding> lint_tree(const std::string& root, const LintOptions& options) {
    return run_lint(collect_tree_sources(root), options);
}

}  // namespace adiv::lint
