#include "lint/rules.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "lint/lexer.hpp"
#include "util/error.hpp"

// The linter is scanned by itself, so this file works only with ordered
// containers and names the banned APIs exclusively inside string literals.

namespace adiv::lint {

namespace {

struct FileData {
    const SourceFile* src = nullptr;
    std::vector<Tok> toks;  // comments stripped; see lex_file()
    // line -> rules allowed on that line and the next ("all" = wildcard).
    std::map<std::size_t, std::set<std::string>> suppressions;
};

// --- suppression comments --------------------------------------------------

void parse_suppression(const Tok& comment, FileData& data) {
    const std::string& text = comment.text;
    const std::size_t tag = text.find("adiv-lint:");
    if (tag == std::string::npos) return;
    const std::size_t open = text.find("allow(", tag);
    if (open == std::string::npos) return;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) return;
    std::set<std::string>& rules = data.suppressions[comment.line];
    std::string name;
    for (std::size_t i = open + 6; i <= close; ++i) {
        const char c = i < close ? text[i] : ',';
        if (c == ',' || c == ')') {
            if (!name.empty()) rules.insert(name);
            name.clear();
        } else if (c != ' ' && c != '\t') {
            name += c;
        }
    }
}

FileData lex_file(const SourceFile& src) {
    FileData data;
    data.src = &src;
    for (Tok& tok : lex_cpp(src.text)) {
        if (tok.kind == TokKind::Comment) {
            parse_suppression(tok, data);
        } else {
            data.toks.push_back(std::move(tok));
        }
    }
    return data;
}

// --- token helpers ---------------------------------------------------------

bool is_punct(const std::vector<Tok>& toks, std::size_t i, const char* text) {
    return i < toks.size() && toks[i].kind == TokKind::Punct && toks[i].text == text;
}

bool is_ident(const std::vector<Tok>& toks, std::size_t i, const char* text) {
    return i < toks.size() && toks[i].kind == TokKind::Identifier &&
           toks[i].text == text;
}

// --- rule: nondeterminism --------------------------------------------------

const std::set<std::string>& rand_family() {
    static const std::set<std::string> kRandFamily{
        "rand",    "srand",   "rand_r",  "drand48", "erand48",
        "lrand48", "nrand48", "mrand48", "jrand48", "srand48"};
    return kRandFamily;
}

void check_nondeterminism(const FileData& data, std::vector<Finding>& out) {
    const std::vector<Tok>& toks = data.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier) continue;
        const std::string& name = toks[i].text;
        if (rand_family().count(name) > 0 && is_punct(toks, i + 1, "(")) {
            out.push_back({"nondeterminism", data.src->path, toks[i].line,
                           "call to " + name +
                               "(): use the seeded util/rng.hpp generators so "
                               "outputs are a function of the recorded seed"});
        } else if (name == "random_device") {
            out.push_back({"nondeterminism", data.src->path, toks[i].line,
                           "std::random_device draws entropy from the "
                           "environment; seed a util/rng.hpp generator "
                           "explicitly instead"});
        } else if (name == "time") {
            const bool qualified =
                i >= 2 && is_punct(toks, i - 1, "::") && is_ident(toks, i - 2, "std");
            const bool wall_call =
                is_punct(toks, i + 1, "(") && is_punct(toks, i + 3, ")") &&
                (is_ident(toks, i + 2, "nullptr") || is_ident(toks, i + 2, "NULL") ||
                 (i + 2 < toks.size() && toks[i + 2].kind == TokKind::Number &&
                  toks[i + 2].text == "0"));
            if (qualified || wall_call) {
                out.push_back({"nondeterminism", data.src->path, toks[i].line,
                               "wall-clock read via std::time: route "
                               "timestamps through the injectable manifest "
                               "clock (obs/manifest.hpp) so runs replay "
                               "bit-identically"});
            }
        } else if (name == "system_clock" && is_punct(toks, i + 1, "::") &&
                   is_ident(toks, i + 2, "now")) {
            out.push_back({"nondeterminism", data.src->path, toks[i].line,
                           "system_clock::now() is a wall-clock read: use "
                           "util/stopwatch.hpp (steady_clock) for intervals "
                           "or the manifest clock for timestamps"});
        }
    }
}

// --- rule: unordered-iteration ---------------------------------------------

const std::set<std::string>& unordered_types() {
    static const std::set<std::string> kUnordered{
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return kUnordered;
}

/// Index just past a balanced template-argument list starting at `i` (which
/// must be '<'), or `i` when there is none.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i) {
    if (!is_punct(toks, i, "<")) return i;
    std::size_t depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (is_punct(toks, j, "<")) ++depth;
        if (is_punct(toks, j, ">") && --depth == 0) return j + 1;
    }
    return toks.size();
}

/// Variable names declared with an unordered container type (or a local
/// `using` alias of one) in this file.
void collect_unordered_names(const std::vector<Tok>& toks,
                             std::set<std::string>& names) {
    std::set<std::string> aliases;
    // Pass 1: direct declarations and `using X = std::unordered_...` aliases.
    std::string pending_alias;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (is_ident(toks, i, "using") && i + 2 < toks.size() &&
            toks[i + 1].kind == TokKind::Identifier && is_punct(toks, i + 2, "=")) {
            pending_alias = toks[i + 1].text;
            continue;
        }
        if (is_punct(toks, i, ";")) pending_alias.clear();
        if (toks[i].kind != TokKind::Identifier ||
            unordered_types().count(toks[i].text) == 0)
            continue;
        if (!pending_alias.empty()) {
            aliases.insert(pending_alias);
            pending_alias.clear();
            continue;
        }
        const std::size_t after = skip_template_args(toks, i + 1);
        // The declared name; skip function declarations (name followed by
        // '(') — a call result is a fresh container, not shared state.
        if (after < toks.size() && toks[after].kind == TokKind::Identifier &&
            !is_punct(toks, after + 1, "("))
            names.insert(toks[after].text);
    }
    // Pass 2: declarations through a collected alias.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Identifier && aliases.count(toks[i].text) > 0 &&
            toks[i + 1].kind == TokKind::Identifier &&
            !is_punct(toks, i + 2, "("))
            names.insert(toks[i + 1].text);
    }
}

void check_unordered_iteration(const FileData& data,
                               const std::set<std::string>& tracked,
                               std::vector<Finding>& out) {
    const std::vector<Tok>& toks = data.toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!is_ident(toks, i, "for") || !is_punct(toks, i + 1, "(")) continue;
        std::size_t depth = 0;
        bool past_colon = false;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            if (is_punct(toks, j, "(")) ++depth;
            if (is_punct(toks, j, ")") && --depth == 0) break;
            if (depth == 1 && is_punct(toks, j, ":")) {
                past_colon = true;
                continue;
            }
            if (past_colon && toks[j].kind == TokKind::Identifier &&
                tracked.count(toks[j].text) > 0) {
                out.push_back(
                    {"unordered-iteration", data.src->path, toks[i].line,
                     "range-for over unordered container '" + toks[j].text +
                         "': iteration order is implementation-defined and "
                         "must not reach any serialized output (sort first, "
                         "or fold commutatively and suppress with a "
                         "justification)"});
                break;
            }
        }
    }
}

// --- rule: score-memo ------------------------------------------------------

bool synchronized_type(const std::string& name) {
    static const std::set<std::string> kGuarded{
        "ScoreMemo", "mutex",     "shared_mutex", "atomic",
        "atomic_flag", "once_flag", "condition_variable"};
    return kGuarded.count(name) > 0;
}

void check_score_memo(const FileData& data, std::vector<Finding>& out) {
    if (data.src->path.find("detect/") == std::string::npos) return;
    const std::vector<Tok>& toks = data.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!is_ident(toks, i, "mutable")) continue;
        // Lambda `mutable` qualifier, not a member declaration.
        if (is_punct(toks, i + 1, "{") || is_punct(toks, i + 1, "-") ||
            is_punct(toks, i + 1, ")") || is_ident(toks, i + 1, "noexcept"))
            continue;
        bool guarded = false;
        for (std::size_t j = i + 1; j < toks.size() && j < i + 60; ++j) {
            if (is_punct(toks, j, ";")) break;
            if (toks[j].kind == TokKind::Identifier &&
                synchronized_type(toks[j].text)) {
                guarded = true;
                break;
            }
        }
        if (!guarded)
            out.push_back(
                {"score-memo", data.src->path, toks[i].line,
                 "mutable member in a detector without ScoreMemo/mutex/atomic "
                 "guarding: concurrent score() calls (detect/detector.hpp "
                 "contract) would race on it"});
    }
}

// --- rule: metric-name -----------------------------------------------------

bool valid_metric_name(const std::string& name) {
    std::size_t segments = 0;
    std::size_t pos = 0;
    while (pos <= name.size()) {
        const std::size_t dot = std::min(name.find('.', pos), name.size());
        if (dot == pos) return false;  // empty segment
        if (!(name[pos] >= 'a' && name[pos] <= 'z')) return false;
        for (std::size_t i = pos + 1; i < dot; ++i) {
            const char c = name[i];
            const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
            if (!ok) return false;
        }
        ++segments;
        if (dot == name.size()) break;
        pos = dot + 1;
    }
    return segments >= 2;
}

void check_metric_name(const FileData& data, std::vector<Finding>& out) {
    // wait_site()/site() cover the profiling layer: wait-site names become
    // `<site>.acquires` / `.contended` / `.wait_us` instruments, so the
    // site name itself must satisfy the same dotted-lowercase convention.
    static const std::set<std::string> kSinks{"counter", "gauge",     "histogram",
                                              "TraceSpan", "wait_site", "site"};
    const std::vector<Tok>& toks = data.toks;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier || kSinks.count(toks[i].text) == 0)
            continue;
        // Call shapes: counter("name"), TraceSpan span("name"), and
        // TraceSpan span(sink, "name") — locate the argument list, then the
        // first string literal at its top nesting level. Nested calls keep
        // their own string arguments out of this site's check.
        std::size_t open = 0;
        if (is_punct(toks, i + 1, "(")) {
            open = i + 1;
        } else if (toks[i + 1].kind == TokKind::Identifier &&
                   is_punct(toks, i + 2, "(")) {
            open = i + 2;
        } else {
            continue;
        }
        std::size_t lit = 0;
        std::size_t depth = 0;
        for (std::size_t j = open; j < toks.size(); ++j) {
            if (is_punct(toks, j, "(")) {
                ++depth;
            } else if (is_punct(toks, j, ")")) {
                if (--depth == 0) break;
            } else if (depth == 1 && toks[j].kind == TokKind::String) {
                lit = j;
                break;
            }
        }
        if (lit == 0) continue;
        const std::string& name = toks[lit].text;
        if (!valid_metric_name(name))
            out.push_back({"metric-name", data.src->path, toks[lit].line,
                           "instrument name '" + name +
                               "' violates the `subsystem.metric` convention "
                               "(dotted lowercase, segments [a-z][a-z0-9_]*)"});
    }
}

// --- rule: header-hygiene --------------------------------------------------

bool is_header(const std::string& path) {
    return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

void check_pragma_once(const FileData& data, std::vector<Finding>& out) {
    if (!is_header(data.src->path)) return;
    for (const Tok& tok : data.toks) {
        if (tok.kind == TokKind::Preprocessor &&
            tok.text.find("pragma") != std::string::npos &&
            tok.text.find("once") != std::string::npos)
            return;
    }
    out.push_back({"header-hygiene", data.src->path, 1,
                   "header is missing `#pragma once`"});
}

void check_umbrella(const std::vector<FileData>& files, std::vector<Finding>& out) {
    const FileData* umbrella = nullptr;
    for (const FileData& data : files)
        if (data.src->path == "src/adiv.hpp") umbrella = &data;
    if (umbrella == nullptr) return;
    std::set<std::string> included;
    for (const Tok& tok : umbrella->toks) {
        if (tok.kind != TokKind::Preprocessor) continue;
        const std::size_t open = tok.text.find('"');
        const std::size_t close = tok.text.rfind('"');
        if (open != std::string::npos && close > open)
            included.insert(tok.text.substr(open + 1, close - open - 1));
    }
    for (const FileData& data : files) {
        const std::string& path = data.src->path;
        if (!is_header(path) || path.compare(0, 4, "src/") != 0) continue;
        if (path == "src/adiv.hpp") continue;
        if (path.find("/lint/") != std::string::npos) continue;  // tooling
        const std::string rel = path.substr(4);
        if (included.count(rel) == 0)
            out.push_back({"header-hygiene", umbrella->src->path, 1,
                           "umbrella src/adiv.hpp does not include \"" + rel +
                               "\" — the umbrella must cover the full API"});
    }
}

// --- engine ----------------------------------------------------------------

std::string stem_of(const std::string& path) {
    const std::size_t slash = path.rfind('/');
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
        return path;
    return path.substr(0, dot);
}

bool suppressed(const FileData& data, const Finding& finding) {
    for (std::size_t line = finding.line > 0 ? finding.line - 1 : 0;
         line <= finding.line; ++line) {
        const auto it = data.suppressions.find(line);
        if (it == data.suppressions.end()) continue;
        if (it->second.count("all") > 0 || it->second.count(finding.rule) > 0)
            return true;
    }
    return false;
}

}  // namespace

std::vector<std::string> rule_names() {
    return {"nondeterminism", "unordered-iteration", "score-memo",
            "metric-name", "header-hygiene"};
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& sources,
                              const LintOptions& options) {
    const std::vector<std::string> known = rule_names();
    std::set<std::string> enabled(known.begin(), known.end());
    if (!options.rules.empty()) {
        enabled.clear();
        for (const std::string& rule : options.rules) {
            require(std::find(known.begin(), known.end(), rule) != known.end(),
                    "unknown lint rule '" + rule + "'");
            enabled.insert(rule);
        }
    }

    std::vector<FileData> files;
    files.reserve(sources.size());
    for (const SourceFile& src : sources) files.push_back(lex_file(src));

    // unordered-iteration tracks declarations across a .hpp/.cpp twin pair.
    std::map<std::string, std::set<std::string>> names_by_stem;
    if (enabled.count("unordered-iteration") > 0)
        for (const FileData& data : files)
            collect_unordered_names(data.toks, names_by_stem[stem_of(data.src->path)]);

    std::vector<Finding> findings;
    for (const FileData& data : files) {
        std::vector<Finding> raw;
        if (enabled.count("nondeterminism") > 0) check_nondeterminism(data, raw);
        if (enabled.count("unordered-iteration") > 0)
            check_unordered_iteration(data, names_by_stem[stem_of(data.src->path)],
                                      raw);
        if (enabled.count("score-memo") > 0) check_score_memo(data, raw);
        if (enabled.count("metric-name") > 0) check_metric_name(data, raw);
        if (enabled.count("header-hygiene") > 0) check_pragma_once(data, raw);
        for (Finding& finding : raw)
            if (!suppressed(data, finding)) findings.push_back(std::move(finding));
    }
    if (enabled.count("header-hygiene") > 0) {
        std::vector<Finding> raw;
        check_umbrella(files, raw);
        for (const FileData& data : files)
            if (data.src->path == "src/adiv.hpp")
                for (Finding& finding : raw)
                    if (!suppressed(data, finding))
                        findings.push_back(std::move(finding));
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  if (a.rule != b.rule) return a.rule < b.rule;
                  return a.message < b.message;
              });
    return findings;
}

}  // namespace adiv::lint
