#include "lint/lexer.hpp"

#include <cctype>

namespace adiv::lint {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
public:
    explicit Lexer(std::string_view source) : src_(source) {}

    std::vector<Tok> run() {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                at_line_start_ = true;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++pos_;
                continue;
            }
            if (c == '#' && at_line_start_) {
                preprocessor();
                continue;
            }
            at_line_start_ = false;
            if (c == '/' && peek(1) == '/') {
                line_comment();
            } else if (c == '/' && peek(1) == '*') {
                block_comment();
            } else if (c == '"') {
                string_lit();
            } else if (c == '\'') {
                char_lit();
            } else if (c == 'R' && peek(1) == '"') {
                raw_string();
            } else if (ident_start(c)) {
                identifier();
            } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
                number();
            } else {
                punct();
            }
        }
        return std::move(out_);
    }

private:
    [[nodiscard]] char peek(std::size_t ahead) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    void emit(TokKind kind, std::string text, std::size_t line) {
        out_.push_back(Tok{kind, std::move(text), line});
    }

    void preprocessor() {
        const std::size_t start_line = line_;
        std::string text;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\\' && peek(1) == '\n') {
                text += ' ';
                pos_ += 2;
                ++line_;
                continue;
            }
            if (c == '\n') break;
            text += c;
            ++pos_;
        }
        emit(TokKind::Preprocessor, std::move(text), start_line);
    }

    void line_comment() {
        const std::size_t start_line = line_;
        pos_ += 2;
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != '\n') text += src_[pos_++];
        emit(TokKind::Comment, std::move(text), start_line);
    }

    void block_comment() {
        const std::size_t start_line = line_;
        pos_ += 2;
        std::string text;
        while (pos_ < src_.size()) {
            if (src_[pos_] == '*' && peek(1) == '/') {
                pos_ += 2;
                break;
            }
            if (src_[pos_] == '\n') ++line_;
            text += src_[pos_++];
        }
        emit(TokKind::Comment, std::move(text), start_line);
    }

    void string_lit() {
        const std::size_t start_line = line_;
        ++pos_;  // opening quote
        std::string text;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\\' && pos_ + 1 < src_.size()) {
                text += c;
                text += src_[pos_ + 1];
                if (src_[pos_ + 1] == '\n') ++line_;
                pos_ += 2;
                continue;
            }
            if (c == '"') {
                ++pos_;
                break;
            }
            if (c == '\n') break;  // unterminated; stop at the line end
            text += c;
            ++pos_;
        }
        emit(TokKind::String, std::move(text), start_line);
    }

    void char_lit() {
        const std::size_t start_line = line_;
        ++pos_;  // opening quote
        std::string text;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\\' && pos_ + 1 < src_.size()) {
                text += c;
                text += src_[pos_ + 1];
                pos_ += 2;
                continue;
            }
            if (c == '\'') {
                ++pos_;
                break;
            }
            if (c == '\n') break;
            text += c;
            ++pos_;
        }
        emit(TokKind::CharLit, std::move(text), start_line);
    }

    void raw_string() {
        const std::size_t start_line = line_;
        pos_ += 2;  // R"
        std::string delim;
        while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
        if (pos_ < src_.size()) ++pos_;  // (
        const std::string close = ")" + delim + "\"";
        std::string text;
        while (pos_ < src_.size()) {
            if (src_.compare(pos_, close.size(), close) == 0) {
                pos_ += close.size();
                break;
            }
            if (src_[pos_] == '\n') ++line_;
            text += src_[pos_++];
        }
        emit(TokKind::String, std::move(text), start_line);
    }

    void identifier() {
        const std::size_t start_line = line_;
        std::string text;
        while (pos_ < src_.size() && ident_char(src_[pos_])) text += src_[pos_++];
        // String-literal prefixes glued to a quote (u8"...", L"...").
        if (pos_ < src_.size() && src_[pos_] == '"' &&
            (text == "u8" || text == "u" || text == "U" || text == "L")) {
            string_lit();
            return;
        }
        emit(TokKind::Identifier, std::move(text), start_line);
    }

    void number() {
        const std::size_t start_line = line_;
        std::string text;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (ident_char(c) || c == '.' || c == '\'') {
                text += c;
                ++pos_;
                continue;
            }
            // Exponent signs: 1e+5, 0x1p-3.
            if ((c == '+' || c == '-') && !text.empty()) {
                const char prev = text.back();
                if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
                    text += c;
                    ++pos_;
                    continue;
                }
            }
            break;
        }
        emit(TokKind::Number, std::move(text), start_line);
    }

    void punct() {
        // "::" matters to the rules (std::time vs a range-for ':'); other
        // multi-character operators can stay split without losing meaning.
        if (src_[pos_] == ':' && peek(1) == ':') {
            emit(TokKind::Punct, "::", line_);
            pos_ += 2;
            return;
        }
        emit(TokKind::Punct, std::string(1, src_[pos_]), line_);
        ++pos_;
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    bool at_line_start_ = true;
    std::vector<Tok> out_;
};

}  // namespace

std::vector<Tok> lex_cpp(std::string_view source) { return Lexer(source).run(); }

}  // namespace adiv::lint
