// Model persistence: save a trained detector, load it back, resume scoring.
//
// Format: a one-line envelope `adiv-model 1 <kind>` followed by the
// detector's own body (each detector implements save_model/load_model for
// its body). The format is plain text — diffable, greppable, and exact:
// doubles round-trip via 17-significant-digit decimal.
//
// Typical use:
//   auto detector = make_detector(DetectorKind::Stide, 6);
//   detector->train(corpus.training());
//   save_detector_file(*detector, "stide6.adiv");
//   ...
//   auto restored = load_detector_file("stide6.adiv");
//   restored->score(stream);   // no retraining
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "detect/detector.hpp"
#include "detect/registry.hpp"

namespace adiv {

/// Writes envelope + body. The detector must be trained.
/// Throws InvalidArgument for untrained detectors and for detector types
/// outside the registry (a custom SequenceDetector subclass).
void save_detector(const SequenceDetector& detector, std::ostream& out);

/// Reads envelope + body; returns the reconstructed, ready-to-score
/// detector. Throws DataError on corrupt input or unsupported versions.
std::unique_ptr<SequenceDetector> load_detector(std::istream& in);

/// File-path conveniences. Throw DataError when the file cannot be opened.
void save_detector_file(const SequenceDetector& detector, const std::string& path);
std::unique_ptr<SequenceDetector> load_detector_file(const std::string& path);

}  // namespace adiv
