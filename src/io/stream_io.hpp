// Trace persistence: event streams and named traces as plain text.
//
// Two formats:
//
//   * Raw stream: `adiv-stream 1 <alphabet> <length>` followed by symbol ids
//     (whitespace separated). For corpora and intermediate artifacts.
//
//   * Named trace: `adiv-trace 1 <alphabet> <length>`, one line per alphabet
//     name, then symbol NAMES whitespace separated — the shape of real audit
//     data (system-call or command logs), importable from other tools.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>

#include "seq/alphabet.hpp"
#include "seq/stream.hpp"

namespace adiv {

void save_stream(const EventStream& stream, std::ostream& out);
EventStream load_stream(std::istream& in);

void save_stream_file(const EventStream& stream, const std::string& path);
EventStream load_stream_file(const std::string& path);

void save_trace(const Alphabet& alphabet, const EventStream& stream,
                std::ostream& out);
std::pair<Alphabet, EventStream> load_trace(std::istream& in);

void save_trace_file(const Alphabet& alphabet, const EventStream& stream,
                     const std::string& path);
std::pair<Alphabet, EventStream> load_trace_file(const std::string& path);

}  // namespace adiv
