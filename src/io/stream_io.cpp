#include "io/stream_io.hpp"

#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

namespace {
constexpr int kFormatVersion = 1;

std::ofstream open_out(const std::string& path) {
    std::ofstream out(path);
    require_data(out.good(), "cannot open '" + path + "' for writing");
    return out;
}

std::ifstream open_in(const std::string& path) {
    std::ifstream in(path);
    require_data(in.good(), "cannot open '" + path + "' for reading");
    return in;
}
}  // namespace

void save_stream(const EventStream& stream, std::ostream& out) {
    out << "adiv-stream " << kFormatVersion << ' ' << stream.alphabet_size() << ' '
        << stream.size() << '\n';
    for (std::size_t i = 0; i < stream.size(); ++i) {
        out << stream[i];
        out << ((i + 1) % 20 == 0 ? '\n' : ' ');
    }
    out << '\n';
}

EventStream load_stream(std::istream& in) {
    expect_tag(in, "adiv-stream");
    const std::uint64_t version = read_u64(in, "format version");
    require_data(version == kFormatVersion,
                 "unsupported adiv-stream format version " + std::to_string(version));
    const std::size_t alphabet = read_size(in, "alphabet size");
    const std::size_t length = read_size(in, "stream length");
    Sequence events;
    events.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        events.push_back(static_cast<Symbol>(read_u64(in, "stream symbol")));
    return EventStream(alphabet, std::move(events));
}

void save_stream_file(const EventStream& stream, const std::string& path) {
    auto out = open_out(path);
    save_stream(stream, out);
    require_data(out.good(), "write to '" + path + "' failed");
}

EventStream load_stream_file(const std::string& path) {
    auto in = open_in(path);
    return load_stream(in);
}

void save_trace(const Alphabet& alphabet, const EventStream& stream,
                std::ostream& out) {
    require(alphabet.size() == stream.alphabet_size(),
            "alphabet does not match the stream's alphabet size");
    out << "adiv-trace " << kFormatVersion << ' ' << alphabet.size() << ' '
        << stream.size() << '\n';
    for (std::size_t i = 0; i < alphabet.size(); ++i)
        out << alphabet.name(static_cast<Symbol>(i)) << '\n';
    for (std::size_t i = 0; i < stream.size(); ++i) {
        out << alphabet.name(stream[i]);
        out << ((i + 1) % 10 == 0 ? '\n' : ' ');
    }
    out << '\n';
}

std::pair<Alphabet, EventStream> load_trace(std::istream& in) {
    expect_tag(in, "adiv-trace");
    const std::uint64_t version = read_u64(in, "format version");
    require_data(version == kFormatVersion,
                 "unsupported adiv-trace format version " + std::to_string(version));
    const std::size_t alphabet_size = read_size(in, "alphabet size");
    const std::size_t length = read_size(in, "trace length");
    std::vector<std::string> names;
    names.reserve(alphabet_size);
    for (std::size_t i = 0; i < alphabet_size; ++i)
        names.push_back(read_token(in, "alphabet name"));
    Alphabet alphabet(names);
    Sequence events;
    events.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        events.push_back(alphabet.id(read_token(in, "trace symbol")));
    return {std::move(alphabet), EventStream(alphabet_size, std::move(events))};
}

void save_trace_file(const Alphabet& alphabet, const EventStream& stream,
                     const std::string& path) {
    auto out = open_out(path);
    save_trace(alphabet, stream, out);
    require_data(out.good(), "write to '" + path + "' failed");
}

std::pair<Alphabet, EventStream> load_trace_file(const std::string& path) {
    auto in = open_in(path);
    return load_trace(in);
}

}  // namespace adiv
