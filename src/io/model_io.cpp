#include "io/model_io.hpp"

#include <fstream>
#include <ostream>

#include "detect/hmm_detector.hpp"
#include "detect/instrumented.hpp"
#include "detect/lane_brodley.hpp"
#include "detect/lookahead_pairs.hpp"
#include "detect/markov.hpp"
#include "detect/nn_detector.hpp"
#include "detect/rule_detector.hpp"
#include "detect/stide.hpp"
#include "detect/tstide.hpp"
#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

namespace {
constexpr int kFormatVersion = 1;
}  // namespace

void save_detector(const SequenceDetector& detector, std::ostream& out) {
    // The observability decorator forwards name() but is not the concrete
    // type the casts below expect; persist what it wraps.
    if (const auto* instrumented =
            dynamic_cast<const InstrumentedDetector*>(&detector)) {
        save_detector(instrumented->inner(), out);
        return;
    }
    const DetectorKind kind = detector_kind_from_string(detector.name());
    out << "adiv-model " << kFormatVersion << ' ' << to_string(kind) << '\n';
    switch (kind) {
        case DetectorKind::Stide:
            dynamic_cast<const StideDetector&>(detector).save_model(out);
            return;
        case DetectorKind::TStide:
            dynamic_cast<const TstideDetector&>(detector).save_model(out);
            return;
        case DetectorKind::Markov:
            dynamic_cast<const MarkovDetector&>(detector).save_model(out);
            return;
        case DetectorKind::LaneBrodley:
            dynamic_cast<const LaneBrodleyDetector&>(detector).save_model(out);
            return;
        case DetectorKind::NeuralNet:
            dynamic_cast<const NnDetector&>(detector).save_model(out);
            return;
        case DetectorKind::Hmm:
            dynamic_cast<const HmmDetector&>(detector).save_model(out);
            return;
        case DetectorKind::Rule:
            dynamic_cast<const RuleDetector&>(detector).save_model(out);
            return;
        case DetectorKind::LookaheadPairs:
            dynamic_cast<const LookaheadPairsDetector&>(detector).save_model(out);
            return;
    }
    ADIV_UNREACHABLE("unhandled detector kind");
}

std::unique_ptr<SequenceDetector> load_detector(std::istream& in) {
    expect_tag(in, "adiv-model");
    const std::uint64_t version = read_u64(in, "format version");
    require_data(version == kFormatVersion,
                 "unsupported adiv-model format version " + std::to_string(version));
    const DetectorKind kind =
        detector_kind_from_string(read_token(in, "detector kind"));
    switch (kind) {
        case DetectorKind::Stide:
            return std::make_unique<StideDetector>(StideDetector::load_model(in));
        case DetectorKind::TStide:
            return std::make_unique<TstideDetector>(TstideDetector::load_model(in));
        case DetectorKind::Markov:
            return std::make_unique<MarkovDetector>(MarkovDetector::load_model(in));
        case DetectorKind::LaneBrodley:
            return std::make_unique<LaneBrodleyDetector>(
                LaneBrodleyDetector::load_model(in));
        case DetectorKind::NeuralNet:
            return std::make_unique<NnDetector>(NnDetector::load_model(in));
        case DetectorKind::Hmm:
            return std::make_unique<HmmDetector>(HmmDetector::load_model(in));
        case DetectorKind::Rule:
            return std::make_unique<RuleDetector>(RuleDetector::load_model(in));
        case DetectorKind::LookaheadPairs:
            return std::make_unique<LookaheadPairsDetector>(
                LookaheadPairsDetector::load_model(in));
    }
    ADIV_UNREACHABLE("unhandled detector kind");
}

void save_detector_file(const SequenceDetector& detector, const std::string& path) {
    std::ofstream out(path);
    require_data(out.good(), "cannot open '" + path + "' for writing");
    save_detector(detector, out);
    out.flush();
    require_data(out.good(), "write to '" + path + "' failed");
}

std::unique_ptr<SequenceDetector> load_detector_file(const std::string& path) {
    std::ifstream in(path);
    require_data(in.good(), "cannot open '" + path + "' for reading");
    return load_detector(in);
}

}  // namespace adiv
