// Neural-network detector (Debar, Becker & Siboni 1992).
//
// A multilayer feed-forward network predicts the next symbol from the
// current DW-1 symbols (one-hot encoded); the response for a window is
// derived from the predicted probability of the window's actual last symbol
// through the same quantizer the Markov detector uses. The learning
// mechanism approximates conditional probabilities without computing them
// explicitly — which is why, when well tuned, this detector "mimics" the
// Markov detector, and why its performance hangs on the balance of the
// learning constant, hidden-node count, and momentum constant (Section 7).
//
// Training detail: the stream is compressed to its distinct contexts with
// soft targets (the empirical continuation distribution) and weights that
// grow logarithmically with context frequency. The optimum of this weighted
// cross-entropy is the same conditional table; the log weighting only speeds
// convergence on rare contexts.
#pragma once

#include <iosfwd>

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/detector.hpp"
#include "detect/score_memo.hpp"
#include "nn/mlp.hpp"
#include "seq/ngram.hpp"

namespace adiv {

struct NnDetectorConfig {
    std::size_t hidden_units = 16;   ///< hidden-layer size
    std::size_t epochs = 400;        ///< full-batch epochs
    double learning_rate = 0.5;      ///< Zurada's learning constant
    double momentum = 0.9;           ///< momentum constant
    double init_scale = 0.5;         ///< weight-init range
    double probability_floor = 0.005;///< response quantizer floor
    std::uint64_t seed = 7;          ///< weight-init seed
};

class NnDetector final : public SequenceDetector {
public:
    /// window_length must be >= 2 (one context symbol plus the prediction).
    explicit NnDetector(std::size_t window_length, NnDetectorConfig config = {});

    [[nodiscard]] std::string name() const override { return "neural-net"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static NnDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    [[nodiscard]] const NnDetectorConfig& config() const noexcept { return config_; }

    /// Final training loss (weighted cross-entropy); throws before train().
    [[nodiscard]] double training_loss() const;

    /// Predicted next-symbol distribution for a DW-1 context (diagnostics).
    [[nodiscard]] std::vector<double> predict(SymbolView context) const;

private:
    std::size_t window_length_;
    NnDetectorConfig config_;
    ResponseQuantizer quantizer_;
    std::size_t alphabet_size_ = 0;
    std::optional<Mlp> net_;
    double training_loss_ = 0.0;
    /// Forward passes memoized by context key; test streams repeat contexts
    /// heavily. Cleared on retrain; mutex-guarded, so concurrent score()
    /// calls stay safe.
    mutable ScoreMemo<NgramKey, std::vector<double>, NgramKeyHash> memo_;
};

}  // namespace adiv
