#include "detect/instrumented.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace adiv {

InstrumentedDetector::InstrumentedDetector(std::unique_ptr<SequenceDetector> inner,
                                           MetricsRegistry& metrics)
    : inner_(std::move(inner)),
      train_calls_(metrics.counter("detect.train_calls")),
      train_events_(metrics.counter("detect.train_events")),
      train_us_(metrics.histogram("detect.train_us")),
      score_calls_(metrics.counter("detect.score_calls")),
      score_windows_(metrics.counter("detect.score_windows")),
      score_us_(metrics.histogram("detect.score_us")) {
    require(inner_ != nullptr, "cannot instrument a null detector");
}

void InstrumentedDetector::train(const EventStream& training) {
    TraceSpan span("detect.train");
    span.attr("detector", inner_->name())
        .attr("window", static_cast<std::uint64_t>(inner_->window_length()))
        .attr("events", static_cast<std::uint64_t>(training.size()));
    const Stopwatch sw;
    inner_->train(training);
    train_us_.record(sw.seconds() * 1e6);
    train_calls_.add(1);
    train_events_.add(training.size());
}

std::vector<double> InstrumentedDetector::score(const EventStream& test) const {
    TraceSpan span("detect.score");
    const Stopwatch sw;
    std::vector<double> responses = inner_->score(test);
    score_us_.record(sw.seconds() * 1e6);
    score_calls_.add(1);
    score_windows_.add(responses.size());
    span.attr("detector", inner_->name())
        .attr("windows", static_cast<std::uint64_t>(responses.size()));
    return responses;
}

std::unique_ptr<SequenceDetector> instrument(std::unique_ptr<SequenceDetector> inner,
                                             MetricsRegistry& metrics) {
    return std::make_unique<InstrumentedDetector>(std::move(inner), metrics);
}

}  // namespace adiv
