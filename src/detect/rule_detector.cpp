#include "detect/rule_detector.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

namespace {

/// A training example: one distinct context with its continuation counts.
struct Example {
    Sequence context;
    std::vector<std::uint64_t> next_counts;
    std::uint64_t total = 0;
};

struct ClassStats {
    Symbol best = 0;
    std::uint64_t best_count = 0;
    std::uint64_t total = 0;

    [[nodiscard]] double laplace_precision(std::size_t alphabet) const noexcept {
        return (static_cast<double>(best_count) + 1.0) /
               (static_cast<double>(total) + static_cast<double>(alphabet));
    }
    [[nodiscard]] double raw_precision() const noexcept {
        return total == 0 ? 0.0
                          : static_cast<double>(best_count) /
                                static_cast<double>(total);
    }
};

ClassStats class_stats(const std::vector<const Example*>& covered,
                       std::size_t alphabet) {
    std::vector<std::uint64_t> counts(alphabet, 0);
    for (const Example* e : covered)
        for (std::size_t y = 0; y < alphabet; ++y) counts[y] += e->next_counts[y];
    ClassStats s;
    for (std::size_t y = 0; y < alphabet; ++y) {
        s.total += counts[y];
        if (counts[y] > s.best_count) {
            s.best_count = counts[y];
            s.best = static_cast<Symbol>(y);
        }
    }
    return s;
}

SequenceRule grow_rule(const std::vector<const Example*>& examples,
                       std::size_t context_length, std::size_t alphabet,
                       const RuleDetectorConfig& config) {
    SequenceRule rule;
    std::vector<const Example*> covered = examples;
    std::vector<bool> position_used(context_length, false);

    while (rule.conditions.size() < config.max_conditions) {
        const ClassStats current = class_stats(covered, alphabet);
        if (current.laplace_precision(alphabet) >= config.target_precision) break;

        // Best specialization: the (position, value) test that maximizes the
        // Laplace precision of the covered subset's majority class.
        double best_precision = current.laplace_precision(alphabet);
        std::uint64_t best_support = 0;
        std::optional<RuleCondition> best_condition;
        std::vector<const Example*> best_subset;
        for (std::size_t pos = 0; pos < context_length; ++pos) {
            if (position_used[pos]) continue;
            for (Symbol val = 0; val < alphabet; ++val) {
                std::vector<const Example*> subset;
                for (const Example* e : covered)
                    if (e->context[pos] == val) subset.push_back(e);
                if (subset.empty()) continue;
                const ClassStats s = class_stats(subset, alphabet);
                const double precision = s.laplace_precision(alphabet);
                if (precision > best_precision + 1e-15 ||
                    (precision > best_precision - 1e-15 &&
                     s.total > best_support)) {
                    best_precision = precision;
                    best_support = s.total;
                    best_condition = RuleCondition{pos, val};
                    best_subset = std::move(subset);
                }
            }
        }
        if (!best_condition) break;  // no test improves the rule
        position_used[best_condition->position] = true;
        rule.conditions.push_back(*best_condition);
        covered = std::move(best_subset);
    }

    const ClassStats final_stats = class_stats(covered, alphabet);
    rule.prediction = final_stats.best;
    rule.confidence = final_stats.raw_precision();
    rule.support = final_stats.total;
    return rule;
}

}  // namespace

RuleDetector::RuleDetector(std::size_t window_length, RuleDetectorConfig config)
    : window_length_(window_length), config_(config) {
    require(window_length >= 2,
            "rule detector window length must be at least 2 (one context "
            "symbol plus the predicted symbol)");
    require(config_.target_precision > 0.0 && config_.target_precision <= 1.0,
            "target precision must be in (0,1]");
    require(config_.max_conditions >= 1, "rules need at least one condition slot");
    require(config_.max_rules >= 1, "need room for at least one rule");
    require(config_.probability_floor >= 0.0 && config_.probability_floor < 1.0,
            "probability floor must be in [0,1)");
    quantizer_.probability_floor = config_.probability_floor;
}

void RuleDetector::train(const EventStream& training) {
    alphabet_size_ = training.alphabet_size();
    const std::size_t context_length = window_length_ - 1;
    const ConditionalModel model(training, context_length);

    std::vector<Example> examples;
    std::vector<ContextDistribution> distributions = model.distributions();
    for (ContextDistribution& d : distributions) {
        Example e;
        e.context = std::move(d.context);
        e.next_counts = std::move(d.next_counts);
        e.total = d.total;
        examples.push_back(std::move(e));
    }

    std::vector<const Example*> remaining;
    remaining.reserve(examples.size());
    for (const Example& e : examples) remaining.push_back(&e);

    std::vector<SequenceRule> rules;
    while (!remaining.empty() && rules.size() + 1 < config_.max_rules) {
        SequenceRule rule =
            grow_rule(remaining, context_length, alphabet_size_, config_);
        if (rule.conditions.empty()) break;  // would duplicate the default rule
        std::vector<const Example*> uncovered;
        for (const Example* e : remaining)
            if (!rule.matches(e->context)) uncovered.push_back(e);
        ADIV_ASSERT(uncovered.size() < remaining.size());
        remaining = std::move(uncovered);
        rules.push_back(std::move(rule));
    }

    // Default rule: majority over whatever the list does not cover (or over
    // everything when the list covers all training contexts).
    std::vector<const Example*> default_basis = remaining;
    if (default_basis.empty())
        for (const Example& e : examples) default_basis.push_back(&e);
    const ClassStats s = class_stats(default_basis, alphabet_size_);
    SequenceRule default_rule;
    default_rule.prediction = s.best;
    default_rule.confidence = s.raw_precision();
    default_rule.support = s.total;
    rules.push_back(std::move(default_rule));

    rules_.emplace(std::move(rules));
}

const std::vector<SequenceRule>& RuleDetector::rules() const {
    require(rules_.has_value(), "rule detector is not trained");
    return *rules_;
}

const SequenceRule& RuleDetector::rule_for(SymbolView context) const {
    require(rules_.has_value(), "rule detector is not trained");
    require(context.size() == window_length_ - 1, "context length mismatch");
    for (const SequenceRule& rule : *rules_)
        if (rule.matches(context)) return rule;
    ADIV_UNREACHABLE("default rule must match every context");
}

std::vector<double> RuleDetector::score(const EventStream& test) const {
    require(rules_.has_value(), "rule detector must be trained before scoring");
    require(test.alphabet_size() == alphabet_size_,
            "test alphabet does not match training alphabet");
    const std::size_t context_length = window_length_ - 1;
    std::vector<double> responses;
    responses.reserve(test.window_count(window_length_));
    for_each_window(test, window_length_, [&](std::size_t, SymbolView w) {
        const SequenceRule& rule = rule_for(w.subspan(0, context_length));
        const Symbol next = w[context_length];
        if (next == rule.prediction) {
            responses.push_back(0.0);
        } else {
            // The rule's confidence bounds the observed symbol's probability
            // at 1 - confidence; quantize that bound like the other
            // probabilistic detectors.
            responses.push_back(
                quantizer_.response_for_probability(1.0 - rule.confidence));
        }
    });
    return responses;
}


void RuleDetector::save_model(std::ostream& out) const {
    require(rules_.has_value(), "cannot save an untrained rule model");
    out << window_length_ << ' ' << alphabet_size_ << ' ';
    write_double(out, config_.target_precision);
    out << ' ' << config_.max_conditions << ' ' << config_.max_rules << ' ';
    write_double(out, config_.probability_floor);
    out << ' ' << rules_->size() << '\n';
    for (const SequenceRule& rule : *rules_) {
        out << rule.conditions.size() << ' ';
        for (const RuleCondition& c : rule.conditions)
            out << c.position << ' ' << c.value << ' ';
        out << rule.prediction << ' ';
        write_double(out, rule.confidence);
        out << ' ' << rule.support << '\n';
    }
}

RuleDetector RuleDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    RuleDetectorConfig config;
    config.target_precision = read_double(in, "target precision");
    config.max_conditions = read_size(in, "max conditions");
    config.max_rules = read_size(in, "max rules");
    config.probability_floor = read_double(in, "probability floor");
    const std::size_t rule_count = read_size(in, "rule count");
    require_data(rule_count >= 1, "rule list must contain the default rule");
    RuleDetector detector(window, config);
    detector.alphabet_size_ = alphabet;

    std::vector<SequenceRule> rules(rule_count);
    for (SequenceRule& rule : rules) {
        const std::size_t conditions = read_size(in, "condition count");
        rule.conditions.resize(conditions);
        for (RuleCondition& c : rule.conditions) {
            c.position = read_size(in, "condition position");
            require_data(c.position < window - 1, "condition position outside context");
            c.value = static_cast<Symbol>(read_u64(in, "condition value"));
            require_data(c.value < alphabet, "condition value outside alphabet");
        }
        rule.prediction = static_cast<Symbol>(read_u64(in, "rule prediction"));
        require_data(rule.prediction < alphabet, "rule prediction outside alphabet");
        rule.confidence = read_double(in, "rule confidence");
        rule.support = read_u64(in, "rule support");
    }
    require_data(rules.back().conditions.empty(),
                 "rule list must end with the unconditional default rule");
    detector.rules_.emplace(std::move(rules));
    return detector;
}

std::size_t RuleDetector::alphabet_size() const {
    require(rules_.has_value(), "rule detector is not trained");
    return alphabet_size_;
}

}  // namespace adiv
