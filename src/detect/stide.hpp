// Stide (Forrest et al. 1996; Warrender et al. 1999).
//
// Normal behaviour is the set of distinct DW-length sequences in the training
// data. A test window scores 1 when it does not occur in that database and 0
// when it does. No frequencies, no probabilities: Stide is blind to rare
// sequences and, by the study's results, to any minimal foreign sequence
// longer than its detector window.
#pragma once

#include <iosfwd>

#include <optional>

#include "detect/detector.hpp"
#include "seq/ngram_table.hpp"

namespace adiv {

class StideDetector final : public SequenceDetector {
public:
    /// window_length must be >= 1 (the study uses >= 2; see Section 6).
    explicit StideDetector(std::size_t window_length);

    [[nodiscard]] std::string name() const override { return "stide"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static StideDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    /// Size of the normal database (distinct training windows).
    [[nodiscard]] std::size_t normal_database_size() const;

private:
    std::size_t window_length_;
    std::optional<NgramTable> normal_;
};


}  // namespace adiv
