// Detector registry: one place that knows how to construct each detector
// kind, so the evaluation harness, benches, and examples configure detectors
// uniformly.
#pragma once

#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "detect/hmm_detector.hpp"
#include "detect/markov.hpp"
#include "detect/nn_detector.hpp"
#include "detect/rule_detector.hpp"
#include "detect/tstide.hpp"

namespace adiv {

enum class DetectorKind {
    // The four detectors of the study (Section 5.2).
    Stide,
    Markov,
    LaneBrodley,
    NeuralNet,
    // Extension detectors from the study's reference list (Warrender 1999).
    TStide,
    Hmm,
    Rule,
    LookaheadPairs,
};

/// Every detector kind this library implements, in a stable order.
std::vector<DetectorKind> all_detectors();

/// The four detectors of the study, in the paper's presentation order
/// (Figures 3-6 are L&B, Markov, Stide, NN; this list is construction order).
std::vector<DetectorKind> paper_detectors();

/// Stable identifier ("stide", "markov", ...).
std::string to_string(DetectorKind kind);

/// Inverse of to_string. Throws InvalidArgument for unknown names.
DetectorKind detector_kind_from_string(const std::string& name);

/// Per-kind settings consumed by make_detector.
struct DetectorSettings {
    TstideConfig tstide;
    MarkovConfig markov;
    NnDetectorConfig nn;
    HmmDetectorConfig hmm;
    RuleDetectorConfig rule;
};

/// Constructs a detector of the given kind for window length `window_length`.
std::unique_ptr<SequenceDetector> make_detector(DetectorKind kind,
                                                std::size_t window_length,
                                                const DetectorSettings& settings = {});

/// Factory closure over (kind, settings) for the evaluation harness.
DetectorFactory factory_for(DetectorKind kind, DetectorSettings settings = {});

/// Like factory_for, but each detector is wrapped in the observability
/// decorator (detect/instrumented.hpp): train/score spans + metrics in the
/// global registry.
DetectorFactory instrumented_factory_for(DetectorKind kind,
                                         DetectorSettings settings = {});

}  // namespace adiv
