// ScoreMemo: a mutex-guarded memo for detector score() paths.
//
// Several detectors cache expensive per-window computations behind a
// `mutable` member so that the const score() stays fast on test streams that
// repeat windows heavily. A bare unordered_map would make those detectors
// unsafe for the concurrent score() calls the experiment engine performs
// (see detector.hpp, "Concurrency contract"); this wrapper serializes the
// cache accesses while leaving the expensive compute outside the lock.
//
// On a concurrent miss two workers may compute the same value; both store an
// identical (deterministic) result, so last-writer-wins is harmless and the
// memo never changes observable scores.
//
// Copy and move transfer the entries but not the mutex, so detectors that
// own a ScoreMemo stay copyable and movable (load_model returns by value).
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace adiv {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ScoreMemo {
public:
    ScoreMemo() = default;

    ScoreMemo(const ScoreMemo& other) : entries_(other.snapshot()) {}
    ScoreMemo(ScoreMemo&& other) noexcept : entries_(other.take()) {}
    ScoreMemo& operator=(const ScoreMemo& other) {
        if (this != &other) replace(other.snapshot());
        return *this;
    }
    ScoreMemo& operator=(ScoreMemo&& other) noexcept {
        if (this != &other) replace(other.take());
        return *this;
    }

    /// Returns a copy of the memoized value, or nullopt on a miss. Copies —
    /// a reference into the map would dangle across a concurrent rehash.
    [[nodiscard]] std::optional<Value> find(const Key& key) const {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it == entries_.end()) return std::nullopt;
        return it->second;
    }

    /// Stores one entry (overwriting a concurrent identical recomputation).
    void store(const Key& key, Value value) {
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_.insert_or_assign(key, std::move(value));
    }

    void clear() {
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }

    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

private:
    using Map = std::unordered_map<Key, Value, Hash>;

    [[nodiscard]] Map snapshot() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return entries_;
    }

    [[nodiscard]] Map take() noexcept {
        const std::lock_guard<std::mutex> lock(mutex_);
        return std::move(entries_);
    }

    void replace(Map entries) {
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_ = std::move(entries);
    }

    mutable std::mutex mutex_;
    Map entries_;
};

}  // namespace adiv
