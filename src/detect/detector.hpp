// The common shape of a sequence-based anomaly detector (Section 4.2).
//
// Every detector in the study consists of (1) a mechanism for modeling
// normal behaviour, acquired by sliding a fixed-length detector window (DW)
// over training data; (2) a similarity metric measuring how far a test
// window deviates from normal — the ONE component in which the four
// detectors differ; and (3) a user-set thresholding mechanism. The interface
// mirrors that decomposition: train() builds the normal model, score()
// emits one response in [0,1] per window position of the test stream
// (0 = completely normal, 1 = maximally anomalous), and thresholding is the
// caller's concern (core/response.hpp applies the paper's "threshold = 1"
// rule uniformly).
//
// Response alignment: score(test)[p] is the response for the window starting
// at element p, i.e. covering elements [p, p + DW). Detectors that predict a
// continuation (Markov, neural net) treat the window's first DW-1 elements
// as context and its last element as the predicted event, so their response
// for position p is about the same DW elements as Stide's and L&B's.
//
// Concurrency contract: train() is exclusive — no other call may run on the
// instance while it trains. After train() returns, score() and the const
// observers (name, window_length, alphabet_size) are safe to call
// concurrently from multiple threads on the same instance; the experiment
// engine (src/engine) relies on this to fan one trained model out across
// scoring workers. Implementations must not mutate unguarded state inside
// score() — caches behind `mutable` members must be internally synchronized
// (see score_memo.hpp) and must never change observable responses.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "seq/stream.hpp"

namespace adiv {

class SequenceDetector {
public:
    virtual ~SequenceDetector() = default;

    /// Short stable identifier, e.g. "stide", "markov".
    [[nodiscard]] virtual std::string name() const = 0;

    /// The detector window size DW this instance was built for.
    [[nodiscard]] virtual std::size_t window_length() const = 0;

    /// Builds the normal-behaviour model from the training stream. May be
    /// called again to retrain from scratch.
    virtual void train(const EventStream& training) = 0;

    /// Alphabet size of the training stream. Throws before train().
    [[nodiscard]] virtual std::size_t alphabet_size() const = 0;

    /// Responses in [0,1], one per window position (test.window_count(DW)
    /// entries). Must be called after train(); throws otherwise. Safe for
    /// concurrent calls on a trained instance (see the concurrency contract
    /// in the file header).
    [[nodiscard]] virtual std::vector<double> score(const EventStream& test) const = 0;

    /// True when score(test)[p] depends only on the DW elements of window p —
    /// which lets callers score a stream in overlapping chunks and splice the
    /// responses (tools/adiv_score --jobs does exactly that). Detectors that
    /// condition on the whole prefix (e.g. the HMM's forward filter) return
    /// false and must be scored in one pass.
    [[nodiscard]] virtual bool window_local() const noexcept { return true; }

protected:
    SequenceDetector() = default;
    SequenceDetector(const SequenceDetector&) = default;
    SequenceDetector& operator=(const SequenceDetector&) = default;
};

/// Builds a detector for a given window length; the unit of configuration the
/// evaluation harness consumes.
using DetectorFactory =
    std::function<std::unique_ptr<SequenceDetector>(std::size_t window_length)>;

/// Response mapping shared by the probabilistic detectors (Markov, NN).
///
/// Their raw output is a continuation probability p: 0 = impossible
/// (maximally anomalous) and 1 = certain (normal). At the detector's
/// resolution, a continuation at or below the probability floor is
/// indistinguishable from impossible, so it scores a full 1.0 — this is how
/// the study's "detection threshold = 1" rule coexists with anomalies whose
/// every sub-sequence occurs (rarely) in training. The default floor is the
/// paper's own rarity cutoff of 0.5%; the response-policy ablation sweeps it.
struct ResponseQuantizer {
    double probability_floor = 0.005;

    [[nodiscard]] double response_for_probability(double p) const noexcept {
        if (p <= probability_floor) return 1.0;
        return 1.0 - p;
    }
};

/// Response value treated as "maximally anomalous" by classification; allows
/// for floating-point slack in detectors that compute 1.0 arithmetically.
inline constexpr double kMaximalResponse = 1.0 - 1e-9;

/// Responses at or below this are "completely normal".
inline constexpr double kZeroResponse = 1e-12;

}  // namespace adiv
