// Rule-learning detector — an extension detector modeled on the RIPPER-based
// data model of Warrender et al. 1999 (the study's reference [20]).
//
// Training compresses the stream into distinct (context -> next-symbol)
// distributions and then learns an ordered rule list by sequential covering:
// each rule is a conjunction of (context position == symbol) conditions
// predicting the most likely next symbol among the contexts it covers, grown
// greedily by Laplace-corrected precision. A default rule (global majority)
// closes the list.
//
// At test time the first matching rule fires. If its prediction matches the
// observed next symbol the response is 0; if it is violated, the rule's
// confidence bounds the probability of what was seen instead (p <= 1 -
// confidence), and the response is quantized exactly like the other
// probabilistic detectors: a violated high-confidence rule (1 - confidence
// at or below the floor) is maximally anomalous, weaker rules yield weak
// responses equal to their confidence.
#pragma once

#include <iosfwd>

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/detector.hpp"
#include "seq/conditional_model.hpp"

namespace adiv {

/// One conjunct: context[position] == value.
struct RuleCondition {
    std::size_t position = 0;
    Symbol value = 0;
};

/// An ordered classification rule over a DW-1 context.
struct SequenceRule {
    std::vector<RuleCondition> conditions;  ///< empty = always matches
    Symbol prediction = 0;                  ///< expected next symbol
    double confidence = 0.0;                ///< covered-weight precision
    std::uint64_t support = 0;              ///< training observations covered

    [[nodiscard]] bool matches(SymbolView context) const noexcept {
        for (const RuleCondition& c : conditions)
            if (context[c.position] != c.value) return false;
        return true;
    }
};

struct RuleDetectorConfig {
    /// Stop growing a rule once its Laplace precision reaches this.
    double target_precision = 0.999;
    /// Maximum conditions per rule (cap on specialization).
    std::size_t max_conditions = 4;
    /// Maximum rules before the default rule closes the list.
    std::size_t max_rules = 256;
    /// Response quantizer floor (see detect/detector.hpp).
    double probability_floor = 0.005;
};

class RuleDetector final : public SequenceDetector {
public:
    explicit RuleDetector(std::size_t window_length, RuleDetectorConfig config = {});

    [[nodiscard]] std::string name() const override { return "rule"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static RuleDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    [[nodiscard]] const RuleDetectorConfig& config() const noexcept { return config_; }

    /// The learned ordered rule list (last entry is the default rule).
    [[nodiscard]] const std::vector<SequenceRule>& rules() const;

    /// The first rule matching a DW-1 context (always exists after train()).
    [[nodiscard]] const SequenceRule& rule_for(SymbolView context) const;

private:
    std::size_t window_length_;
    RuleDetectorConfig config_;
    ResponseQuantizer quantizer_;
    std::size_t alphabet_size_ = 0;
    std::optional<std::vector<SequenceRule>> rules_;
};

}  // namespace adiv
