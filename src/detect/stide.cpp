#include "detect/stide.hpp"

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

StideDetector::StideDetector(std::size_t window_length)
    : window_length_(window_length) {
    require(window_length >= 1, "stide window length must be at least 1");
}

void StideDetector::train(const EventStream& training) {
    normal_.emplace(NgramTable::from_stream(training, window_length_));
}

std::vector<double> StideDetector::score(const EventStream& test) const {
    require(normal_.has_value(), "stide must be trained before scoring");
    require(test.alphabet_size() == normal_->alphabet_size(),
            "test alphabet does not match training alphabet");
    const std::size_t windows = test.window_count(window_length_);
    std::vector<double> responses;
    responses.reserve(windows);
    if (windows == 0) return responses;

    const NgramCodec& codec = normal_->codec();
    const SymbolView all = test.view();
    const NgramKey mask = codec.mask_for(window_length_);
    NgramKey key = codec.encode(all.subspan(0, window_length_));
    responses.push_back(normal_->contains_key(key) ? 0.0 : 1.0);
    for (std::size_t pos = window_length_; pos < all.size(); ++pos) {
        key = codec.slide(key, all[pos], mask);
        responses.push_back(normal_->contains_key(key) ? 0.0 : 1.0);
    }
    return responses;
}

std::size_t StideDetector::normal_database_size() const {
    require(normal_.has_value(), "stide is not trained");
    return normal_->distinct();
}


void StideDetector::save_model(std::ostream& out) const {
    require(normal_.has_value(), "cannot save an untrained stide model");
    out << window_length_ << ' ' << normal_->alphabet_size() << ' '
        << normal_->distinct() << '\n';
    for (const auto& [gram, count] : normal_->items_by_count()) {
        for (Symbol s : gram) out << s << ' ';
        out << count << '\n';
    }
}

StideDetector StideDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    const std::size_t distinct = read_size(in, "gram count");
    StideDetector detector(window);
    NgramTable table(alphabet, window);
    Sequence gram(window);
    for (std::size_t i = 0; i < distinct; ++i) {
        for (Symbol& s : gram) {
            s = static_cast<Symbol>(read_u64(in, "gram symbol"));
            require_data(s < alphabet, "gram symbol outside alphabet");
        }
        table.add(gram, read_u64(in, "gram count value"));
    }
    detector.normal_.emplace(std::move(table));
    return detector;
}

std::size_t StideDetector::alphabet_size() const {
    require(normal_.has_value(), "stide detector is not trained");
    return normal_->alphabet_size();
}

}  // namespace adiv
