// t-Stide ("stide with frequency threshold", Warrender et al. 1999).
//
// An extension detector, not one of the paper's four: like Stide it matches
// test windows against the normal database, but windows whose training
// frequency falls below a rarity threshold are treated as anomalous too.
// Its coverage therefore sits between Stide's (foreign sequences only) and
// the Markov detector's (foreign + conditionally rare); the ablation bench
// measures exactly that.
#pragma once

#include <iosfwd>

#include <optional>

#include "detect/detector.hpp"
#include "seq/ngram_table.hpp"

namespace adiv {

struct TstideConfig {
    /// Windows with relative training frequency below this are anomalous.
    double rare_threshold = 0.005;
};

class TstideDetector final : public SequenceDetector {
public:
    explicit TstideDetector(std::size_t window_length, TstideConfig config = {});

    [[nodiscard]] std::string name() const override { return "t-stide"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static TstideDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    [[nodiscard]] const TstideConfig& config() const noexcept { return config_; }

private:
    std::size_t window_length_;
    TstideConfig config_;
    std::optional<NgramTable> normal_;
};

}  // namespace adiv
