// Markov-based detector (Jha, Tan & Maxion 2001; Teng et al. 1990).
//
// For each DW-window of the test data the detector conditions on the first
// DW-1 symbols and asks how probable the DW-th symbol is, using conditional
// probabilities estimated from training. The smallest usable window is 2 —
// the Markov assumption's "next state depends only on the current state"
// (Section 6). The raw probability maps to a response through the shared
// ResponseQuantizer: impossible or below-floor continuations score 1
// (maximally anomalous), probable continuations score near 0.
//
// Optional Laplace smoothing (laplace_alpha > 0) fills zero-probability
// continuations with small mass; the ablation bench shows how smoothing
// erodes the detector's ability to register maximal responses.
#pragma once

#include <iosfwd>

#include <optional>

#include "detect/detector.hpp"
#include "seq/conditional_model.hpp"

namespace adiv {

struct MarkovConfig {
    /// Probabilities at or below this quantize to the maximal response.
    double probability_floor = 0.005;
    /// Laplace pseudo-count; 0 disables smoothing.
    double laplace_alpha = 0.0;
};

class MarkovDetector final : public SequenceDetector {
public:
    /// window_length must be >= 2 (context of DW-1 >= 1 symbols).
    explicit MarkovDetector(std::size_t window_length, MarkovConfig config = {});

    [[nodiscard]] std::string name() const override { return "markov"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static MarkovDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    [[nodiscard]] const MarkovConfig& config() const noexcept { return config_; }

    /// The trained conditional model; throws before train().
    [[nodiscard]] const ConditionalModel& model() const;

private:
    std::size_t window_length_;
    MarkovConfig config_;
    ResponseQuantizer quantizer_;
    std::optional<ConditionalModel> model_;
};

}  // namespace adiv
