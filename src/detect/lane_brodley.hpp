// Lane & Brodley detector (Lane & Brodley 1997).
//
// Normal behaviour is the set of distinct DW-windows of the training data. A
// test window is compared position-by-position against each stored window;
// matching elements earn a weight that grows with the length of the adjacent
// run of matches (1, 2, 3, ... within a run), mismatches earn 0 and reset the
// run. Two identical size-5 windows score 1+2+3+4+5 = 15 = DW(DW+1)/2; a
// window differing only in its last element scores 1+2+3+4 = 10 (Figure 7 of
// the paper). The detector's similarity to normal is the maximum over the
// database; the response is 1 - similarity / Sim_max, so 0 means identical to
// some normal window and 1 means no element of any normal window matched.
//
// The run-length bias is exactly what blinds this detector to minimal
// foreign sequences: a foreign window mismatching a normal one in a single
// edge element still scores DW(DW-1)/2, a "slight dip" from normal.
#pragma once

#include <iosfwd>

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/detector.hpp"
#include "detect/score_memo.hpp"
#include "seq/ngram.hpp"

namespace adiv {

/// The L&B run-weighted similarity between two same-length windows.
/// Range [0, n(n+1)/2] for length n. Requires a.size() == b.size().
std::uint64_t lane_brodley_similarity(SymbolView a, SymbolView b);

/// Maximum similarity value for windows of the given length: n(n+1)/2.
constexpr std::uint64_t lane_brodley_max_similarity(std::size_t n) noexcept {
    return static_cast<std::uint64_t>(n) * (n + 1) / 2;
}

class LaneBrodleyDetector final : public SequenceDetector {
public:
    explicit LaneBrodleyDetector(std::size_t window_length);

    [[nodiscard]] std::string name() const override { return "lane-brodley"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static LaneBrodleyDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    /// Similarity of one window to the closest normal window (the detector's
    /// raw metric, before conversion to a response). Throws before train().
    [[nodiscard]] std::uint64_t max_similarity_to_normal(SymbolView window) const;

    /// Number of distinct normal windows stored.
    [[nodiscard]] std::size_t normal_database_size() const;

private:
    std::size_t window_length_;
    std::optional<NgramCodec> codec_;
    /// Distinct normal windows, concatenated (each window_length_ long).
    std::vector<Symbol> database_;
    /// Memo of window key -> max similarity; test streams repeat windows
    /// heavily, so this turns the database scan into a hash lookup. Cleared
    /// on retrain; mutex-guarded, so concurrent score() calls stay safe.
    mutable ScoreMemo<NgramKey, std::uint64_t, NgramKeyHash> memo_;
};

}  // namespace adiv
