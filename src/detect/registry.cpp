#include "detect/registry.hpp"

#include "detect/instrumented.hpp"
#include "detect/lane_brodley.hpp"
#include "detect/lookahead_pairs.hpp"
#include "detect/stide.hpp"
#include "util/error.hpp"

namespace adiv {

std::vector<DetectorKind> paper_detectors() {
    return {DetectorKind::LaneBrodley, DetectorKind::Markov, DetectorKind::Stide,
            DetectorKind::NeuralNet};
}

std::vector<DetectorKind> all_detectors() {
    return {DetectorKind::Stide,       DetectorKind::Markov,
            DetectorKind::LaneBrodley, DetectorKind::NeuralNet,
            DetectorKind::TStide,      DetectorKind::Hmm,
            DetectorKind::Rule,        DetectorKind::LookaheadPairs};
}

std::string to_string(DetectorKind kind) {
    switch (kind) {
        case DetectorKind::Stide: return "stide";
        case DetectorKind::TStide: return "t-stide";
        case DetectorKind::Markov: return "markov";
        case DetectorKind::LaneBrodley: return "lane-brodley";
        case DetectorKind::NeuralNet: return "neural-net";
        case DetectorKind::Hmm: return "hmm";
        case DetectorKind::Rule: return "rule";
        case DetectorKind::LookaheadPairs: return "lookahead-pairs";
    }
    ADIV_UNREACHABLE("unhandled detector kind");
}

DetectorKind detector_kind_from_string(const std::string& name) {
    for (DetectorKind kind : all_detectors()) {
        if (to_string(kind) == name) return kind;
    }
    throw InvalidArgument("unknown detector kind: " + name);
}

std::unique_ptr<SequenceDetector> make_detector(DetectorKind kind,
                                                std::size_t window_length,
                                                const DetectorSettings& settings) {
    switch (kind) {
        case DetectorKind::Stide:
            return std::make_unique<StideDetector>(window_length);
        case DetectorKind::TStide:
            return std::make_unique<TstideDetector>(window_length, settings.tstide);
        case DetectorKind::Markov:
            return std::make_unique<MarkovDetector>(window_length, settings.markov);
        case DetectorKind::LaneBrodley:
            return std::make_unique<LaneBrodleyDetector>(window_length);
        case DetectorKind::NeuralNet:
            return std::make_unique<NnDetector>(window_length, settings.nn);
        case DetectorKind::Hmm:
            return std::make_unique<HmmDetector>(window_length, settings.hmm);
        case DetectorKind::Rule:
            return std::make_unique<RuleDetector>(window_length, settings.rule);
        case DetectorKind::LookaheadPairs:
            return std::make_unique<LookaheadPairsDetector>(window_length);
    }
    ADIV_UNREACHABLE("unhandled detector kind");
}

DetectorFactory factory_for(DetectorKind kind, DetectorSettings settings) {
    return [kind, settings](std::size_t window_length) {
        return make_detector(kind, window_length, settings);
    };
}

DetectorFactory instrumented_factory_for(DetectorKind kind,
                                         DetectorSettings settings) {
    return [kind, settings](std::size_t window_length) {
        return instrument(make_detector(kind, window_length, settings));
    };
}

}  // namespace adiv
