// Instrumented decorator: wraps any SequenceDetector with trace spans and
// metrics, leaving the wrapped algorithm untouched.
//
// Per train() call: a "detect.train" span plus `detect.train_calls` /
// `detect.train_events` counters and a `detect.train_us` latency histogram.
// Per score() call: a "detect.score" span plus `detect.score_calls` /
// `detect.score_windows` counters and a `detect.score_us` histogram. With
// the default null trace sink the spans cost two thread-local increments
// and a clock read, so the decorator is safe to leave on hot paths.
//
// Persistence: io/model_io unwraps the decorator and saves the inner
// detector, so an instrumented detector round-trips like a bare one.
#pragma once

#include <memory>

#include "detect/detector.hpp"
#include "obs/metrics.hpp"

namespace adiv {

class InstrumentedDetector final : public SequenceDetector {
public:
    /// The decorator owns the inner detector. Metrics go to `metrics`
    /// (default: the process-global registry).
    explicit InstrumentedDetector(std::unique_ptr<SequenceDetector> inner,
                                  MetricsRegistry& metrics = global_metrics());

    [[nodiscard]] std::string name() const override { return inner_->name(); }
    [[nodiscard]] std::size_t window_length() const override {
        return inner_->window_length();
    }
    [[nodiscard]] std::size_t alphabet_size() const override {
        return inner_->alphabet_size();
    }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;
    [[nodiscard]] bool window_local() const noexcept override {
        return inner_->window_local();
    }

    [[nodiscard]] const SequenceDetector& inner() const noexcept { return *inner_; }

private:
    std::unique_ptr<SequenceDetector> inner_;
    Counter& train_calls_;
    Counter& train_events_;
    Histogram& train_us_;
    Counter& score_calls_;
    Counter& score_windows_;
    Histogram& score_us_;
};

/// Convenience wrapper: instrument(make_detector(...)).
std::unique_ptr<SequenceDetector> instrument(
    std::unique_ptr<SequenceDetector> inner,
    MetricsRegistry& metrics = global_metrics());

}  // namespace adiv
