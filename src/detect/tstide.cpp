#include "detect/tstide.hpp"

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

TstideDetector::TstideDetector(std::size_t window_length, TstideConfig config)
    : window_length_(window_length), config_(config) {
    require(window_length >= 1, "t-stide window length must be at least 1");
    require(config_.rare_threshold > 0.0 && config_.rare_threshold < 1.0,
            "t-stide rare threshold must be in (0,1)");
}

void TstideDetector::train(const EventStream& training) {
    normal_.emplace(NgramTable::from_stream(training, window_length_));
}

std::vector<double> TstideDetector::score(const EventStream& test) const {
    require(normal_.has_value(), "t-stide must be trained before scoring");
    require(test.alphabet_size() == normal_->alphabet_size(),
            "test alphabet does not match training alphabet");
    const std::size_t windows = test.window_count(window_length_);
    std::vector<double> responses;
    responses.reserve(windows);
    if (windows == 0) return responses;

    const NgramCodec& codec = normal_->codec();
    const SymbolView all = test.view();
    const NgramKey mask = codec.mask_for(window_length_);
    auto respond = [this](NgramKey key) {
        return normal_->relative_frequency_key(key) < config_.rare_threshold ? 1.0
                                                                             : 0.0;
    };
    NgramKey key = codec.encode(all.subspan(0, window_length_));
    responses.push_back(respond(key));
    for (std::size_t pos = window_length_; pos < all.size(); ++pos) {
        key = codec.slide(key, all[pos], mask);
        responses.push_back(respond(key));
    }
    return responses;
}


void TstideDetector::save_model(std::ostream& out) const {
    require(normal_.has_value(), "cannot save an untrained t-stide model");
    write_double(out, config_.rare_threshold);
    out << ' ' << window_length_ << ' ' << normal_->alphabet_size() << ' '
        << normal_->distinct() << '\n';
    for (const auto& [gram, count] : normal_->items_by_count()) {
        for (Symbol s : gram) out << s << ' ';
        out << count << '\n';
    }
}

TstideDetector TstideDetector::load_model(std::istream& in) {
    TstideConfig config;
    config.rare_threshold = read_double(in, "rare threshold");
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    const std::size_t distinct = read_size(in, "gram count");
    TstideDetector detector(window, config);
    NgramTable table(alphabet, window);
    Sequence gram(window);
    for (std::size_t i = 0; i < distinct; ++i) {
        for (Symbol& s : gram) {
            s = static_cast<Symbol>(read_u64(in, "gram symbol"));
            require_data(s < alphabet, "gram symbol outside alphabet");
        }
        table.add(gram, read_u64(in, "gram count value"));
    }
    detector.normal_.emplace(std::move(table));
    return detector;
}

std::size_t TstideDetector::alphabet_size() const {
    require(normal_.has_value(), "t-stide detector is not trained");
    return normal_->alphabet_size();
}

}  // namespace adiv
