#include "detect/lfc.hpp"

#include "util/error.hpp"

namespace adiv {

std::vector<double> locality_frame_filter(std::span<const double> responses,
                                          const LocalityFrameConfig& config) {
    require(config.frame_size >= 1, "locality frame must hold at least 1 window");
    require(config.threshold >= 1, "locality frame threshold must be at least 1");
    require(config.threshold <= config.frame_size,
            "threshold cannot exceed the frame size");

    std::vector<double> alarms(responses.size(), 0.0);
    std::size_t in_frame = 0;
    for (std::size_t i = 0; i < responses.size(); ++i) {
        if (responses[i] >= config.binarize_at) ++in_frame;
        if (i >= config.frame_size &&
            responses[i - config.frame_size] >= config.binarize_at)
            --in_frame;
        alarms[i] = in_frame >= config.threshold ? 1.0 : 0.0;
    }
    return alarms;
}

}  // namespace adiv
