// HMM-based detector — an extension detector from the study's own reference
// list (Warrender et al. 1999 evaluated an HMM against Stide and t-Stide as
// an "alternative data model").
//
// A discrete HMM is trained with Baum-Welch on (a prefix of) the training
// stream; at test time a forward filter tracks the state belief and the
// response for a window is derived from the one-step-ahead predictive
// probability of the window's last symbol, quantized like the other
// probabilistic detectors. The hidden state carries the temporal context, so
// — unlike the Markov detector — the model's conditioning is not tied to the
// window length; DW only sets the response alignment.
#pragma once

#include <iosfwd>

#include <cstdint>
#include <optional>

#include "detect/detector.hpp"
#include "nn/hmm.hpp"

namespace adiv {

struct HmmDetectorConfig {
    std::size_t states = 8;               ///< hidden states (~alphabet size)
    std::size_t iterations = 30;          ///< Baum-Welch iterations
    /// Baum-Welch cost is linear in sequence length x states^2; training uses
    /// at most this many observations from the front of the training stream.
    std::size_t max_training_observations = 20'000;
    double probability_floor = 0.005;     ///< response quantizer floor
    std::uint64_t seed = 7;
};

class HmmDetector final : public SequenceDetector {
public:
    explicit HmmDetector(std::size_t window_length, HmmDetectorConfig config = {});

    [[nodiscard]] std::string name() const override { return "hmm"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// The forward filter conditions every response on the whole stream
    /// prefix, so chunked scoring would change responses at chunk seams.
    [[nodiscard]] bool window_local() const noexcept override { return false; }

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model. Throws DataError on corrupt,
    /// truncated, or inconsistent input.
    static HmmDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    [[nodiscard]] const HmmDetectorConfig& config() const noexcept { return config_; }

    /// Training log-likelihood per observation; throws before train().
    [[nodiscard]] double training_log_likelihood() const;

    /// The trained model; throws before train().
    [[nodiscard]] const Hmm& model() const;

private:
    std::size_t window_length_;
    HmmDetectorConfig config_;
    ResponseQuantizer quantizer_;
    std::optional<Hmm> model_;
    double training_ll_ = 0.0;
};

}  // namespace adiv
