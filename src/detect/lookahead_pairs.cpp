#include "detect/lookahead_pairs.hpp"

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

LookaheadPairsDetector::LookaheadPairsDetector(std::size_t window_length)
    : window_length_(window_length) {
    require(window_length >= 2,
            "lookahead-pairs window length must be at least 2 (one offset)");
}

void LookaheadPairsDetector::train(const EventStream& training) {
    alphabet_size_ = training.alphabet_size();
    seen_.assign((window_length_ - 1) * alphabet_size_ * alphabet_size_, false);
    for_each_window(training, window_length_, [&](std::size_t, SymbolView w) {
        for (std::size_t k = 1; k < window_length_; ++k)
            seen_[index(k, w[0], w[k])] = true;
    });
    trained_ = true;
}

std::vector<double> LookaheadPairsDetector::score(const EventStream& test) const {
    require(trained_, "lookahead-pairs detector must be trained before scoring");
    require(test.alphabet_size() == alphabet_size_,
            "test alphabet does not match training alphabet");
    std::vector<double> responses;
    responses.reserve(test.window_count(window_length_));
    for_each_window(test, window_length_, [&](std::size_t, SymbolView w) {
        double response = 0.0;
        for (std::size_t k = 1; k < window_length_; ++k) {
            if (!seen_[index(k, w[0], w[k])]) {
                response = 1.0;
                break;
            }
        }
        responses.push_back(response);
    });
    return responses;
}

std::size_t LookaheadPairsDetector::alphabet_size() const {
    require(trained_, "lookahead-pairs detector is not trained");
    return alphabet_size_;
}

std::size_t LookaheadPairsDetector::pair_count() const {
    require(trained_, "lookahead-pairs detector is not trained");
    std::size_t count = 0;
    for (bool b : seen_)
        if (b) ++count;
    return count;
}

void LookaheadPairsDetector::save_model(std::ostream& out) const {
    require(trained_, "cannot save an untrained lookahead-pairs model");
    out << window_length_ << ' ' << alphabet_size_ << ' ' << pair_count() << '\n';
    for (std::size_t k = 1; k < window_length_; ++k)
        for (Symbol first = 0; first < alphabet_size_; ++first)
            for (Symbol follower = 0; follower < alphabet_size_; ++follower)
                if (seen_[index(k, first, follower)])
                    out << k << ' ' << first << ' ' << follower << '\n';
}

LookaheadPairsDetector LookaheadPairsDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    const std::size_t pairs = read_size(in, "pair count");
    LookaheadPairsDetector detector(window);
    detector.alphabet_size_ = alphabet;
    detector.seen_.assign((window - 1) * alphabet * alphabet, false);
    for (std::size_t i = 0; i < pairs; ++i) {
        const std::size_t k = read_size(in, "pair offset");
        require_data(k >= 1 && k < window, "pair offset outside window");
        const auto first = static_cast<Symbol>(read_u64(in, "pair first symbol"));
        const auto follower =
            static_cast<Symbol>(read_u64(in, "pair follower symbol"));
        require_data(first < alphabet && follower < alphabet,
                     "pair symbol outside alphabet");
        detector.seen_[detector.index(k, first, follower)] = true;
    }
    detector.trained_ = true;
    return detector;
}

}  // namespace adiv
