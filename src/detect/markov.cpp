#include "detect/markov.hpp"

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

MarkovDetector::MarkovDetector(std::size_t window_length, MarkovConfig config)
    : window_length_(window_length), config_(config) {
    require(window_length >= 2,
            "markov window length must be at least 2 (one context symbol plus "
            "the predicted symbol)");
    require(config_.probability_floor >= 0.0 && config_.probability_floor < 1.0,
            "probability floor must be in [0,1)");
    require(config_.laplace_alpha >= 0.0, "laplace alpha must be non-negative");
    quantizer_.probability_floor = config_.probability_floor;
}

void MarkovDetector::train(const EventStream& training) {
    model_.emplace(training, window_length_ - 1);
}

std::vector<double> MarkovDetector::score(const EventStream& test) const {
    require(model_.has_value(), "markov detector must be trained before scoring");
    require(test.alphabet_size() == model_->alphabet_size(),
            "test alphabet does not match training alphabet");
    const std::size_t windows = test.window_count(window_length_);
    std::vector<double> responses;
    responses.reserve(windows);
    const std::size_t context_len = window_length_ - 1;
    for_each_window(test, window_length_, [&](std::size_t, SymbolView w) {
        const SymbolView context = w.subspan(0, context_len);
        const Symbol next = w[context_len];
        const double p =
            config_.laplace_alpha > 0.0
                ? model_->probability_smoothed(context, next, config_.laplace_alpha)
                : model_->probability(context, next);
        responses.push_back(quantizer_.response_for_probability(p));
    });
    return responses;
}

const ConditionalModel& MarkovDetector::model() const {
    require(model_.has_value(), "markov detector is not trained");
    return *model_;
}


void MarkovDetector::save_model(std::ostream& out) const {
    require(model_.has_value(), "cannot save an untrained markov model");
    out << window_length_ << ' ' << model_->alphabet_size() << ' ';
    write_double(out, config_.probability_floor);
    out << ' ';
    write_double(out, config_.laplace_alpha);
    const auto distributions = model_->distributions();
    out << ' ' << distributions.size() << '\n';
    for (const ContextDistribution& dist : distributions) {
        for (Symbol s : dist.context) out << s << ' ';
        for (std::uint64_t c : dist.next_counts) out << c << ' ';
        out << '\n';
    }
}

MarkovDetector MarkovDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    MarkovConfig config;
    config.probability_floor = read_double(in, "probability floor");
    config.laplace_alpha = read_double(in, "laplace alpha");
    const std::size_t contexts = read_size(in, "context count");
    MarkovDetector detector(window, config);

    std::vector<ContextDistribution> distributions(contexts);
    for (ContextDistribution& dist : distributions) {
        dist.context.resize(window - 1);
        for (Symbol& s : dist.context) {
            s = static_cast<Symbol>(read_u64(in, "context symbol"));
            require_data(s < alphabet, "context symbol outside alphabet");
        }
        dist.next_counts.resize(alphabet);
        dist.total = 0;
        for (std::uint64_t& c : dist.next_counts) {
            c = read_u64(in, "continuation count");
            dist.total += c;
        }
    }
    detector.model_.emplace(alphabet, window - 1, distributions);
    return detector;
}

std::size_t MarkovDetector::alphabet_size() const {
    require(model_.has_value(), "markov detector is not trained");
    return model_->alphabet_size();
}

}  // namespace adiv
