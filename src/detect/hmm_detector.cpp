#include "detect/hmm_detector.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

HmmDetector::HmmDetector(std::size_t window_length, HmmDetectorConfig config)
    : window_length_(window_length), config_(config) {
    require(window_length >= 2,
            "hmm detector window length must be at least 2 (the response "
            "predicts the window's last symbol)");
    require(config_.states >= 1, "hmm detector needs at least one state");
    require(config_.max_training_observations >= 2,
            "hmm detector needs at least 2 training observations");
    require(config_.probability_floor >= 0.0 && config_.probability_floor < 1.0,
            "probability floor must be in [0,1)");
    quantizer_.probability_floor = config_.probability_floor;
}

void HmmDetector::train(const EventStream& training) {
    require_data(training.size() >= 2, "training stream too short for the HMM");
    HmmConfig hmm_config;
    hmm_config.states = config_.states;
    hmm_config.iterations = config_.iterations;
    hmm_config.seed = config_.seed;
    model_.emplace(training.alphabet_size(), hmm_config);
    const std::size_t used =
        std::min(training.size(), config_.max_training_observations);
    training_ll_ = model_->fit(training.view().subspan(0, used));
}

std::vector<double> HmmDetector::score(const EventStream& test) const {
    require(model_.has_value(), "hmm detector must be trained before scoring");
    require(test.alphabet_size() == model_->alphabet_size(),
            "test alphabet does not match training alphabet");
    const std::size_t windows = test.window_count(window_length_);
    std::vector<double> responses;
    responses.reserve(windows);
    if (windows == 0) return responses;

    // One filtering pass over the stream yields P(x_t | x_0..t-1) for every
    // position; the response for the window at p concerns its last element.
    const std::vector<double> probs = model_->predictive_probabilities(test.view());
    for (std::size_t p = 0; p < windows; ++p)
        responses.push_back(
            quantizer_.response_for_probability(probs[p + window_length_ - 1]));
    return responses;
}

double HmmDetector::training_log_likelihood() const {
    require(model_.has_value(), "hmm detector is not trained");
    return training_ll_;
}

const Hmm& HmmDetector::model() const {
    require(model_.has_value(), "hmm detector is not trained");
    return *model_;
}


void HmmDetector::save_model(std::ostream& out) const {
    require(model_.has_value(), "cannot save an untrained hmm model");
    out << window_length_ << ' ' << model_->alphabet_size() << ' '
        << config_.states << ' ' << config_.iterations << ' '
        << config_.max_training_observations << ' ';
    write_double(out, config_.probability_floor);
    out << ' ' << config_.seed << ' ';
    write_double(out, training_ll_);
    out << '\n';
    for (double v : model_->initial()) {
        write_double(out, v);
        out << ' ';
    }
    out << '\n';
    for (std::size_t i = 0; i < config_.states; ++i) {
        for (std::size_t j = 0; j < config_.states; ++j) {
            write_double(out, model_->transitions().at(i, j));
            out << ' ';
        }
        out << '\n';
    }
    for (std::size_t i = 0; i < config_.states; ++i) {
        for (std::size_t k = 0; k < model_->alphabet_size(); ++k) {
            write_double(out, model_->emissions().at(i, k));
            out << ' ';
        }
        out << '\n';
    }
}

HmmDetector HmmDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    HmmDetectorConfig config;
    config.states = read_size(in, "state count");
    config.iterations = read_size(in, "iteration count");
    config.max_training_observations = read_size(in, "training cap");
    config.probability_floor = read_double(in, "probability floor");
    config.seed = read_u64(in, "seed");
    HmmDetector detector(window, config);
    detector.training_ll_ = read_double(in, "training log-likelihood");

    std::vector<double> pi(config.states);
    for (double& v : pi) v = read_double(in, "initial probability");
    Matrix a(config.states, config.states);
    for (std::size_t i = 0; i < config.states; ++i)
        for (std::size_t j = 0; j < config.states; ++j)
            a.at(i, j) = read_double(in, "transition probability");
    Matrix b(config.states, alphabet);
    for (std::size_t i = 0; i < config.states; ++i)
        for (std::size_t k = 0; k < alphabet; ++k)
            b.at(i, k) = read_double(in, "emission probability");

    HmmConfig hmm_config;
    hmm_config.states = config.states;
    hmm_config.iterations = config.iterations;
    hmm_config.seed = config.seed;
    detector.model_.emplace(alphabet, hmm_config);
    detector.model_->set_parameters(std::move(pi), std::move(a), std::move(b));
    return detector;
}

std::size_t HmmDetector::alphabet_size() const {
    require(model_.has_value(), "hmm detector is not trained");
    return model_->alphabet_size();
}

}  // namespace adiv
