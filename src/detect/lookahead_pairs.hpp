// Lookahead-pairs detector (Forrest, Hofmeyr, Somayaji & Longstaff 1996 —
// the paper's reference [7], in its ORIGINAL "sense of self" form).
//
// Where Stide stores whole DW-windows, the original sense-of-self monitor
// stored pairs: for each window it records (first symbol, k-th symbol) for
// every lookahead offset k in 1..DW-1. A test window is anomalous when some
// pair at some offset was never seen in training. This generalizes over the
// training windows — different training windows can mix and match to cover a
// test window pair-by-pair — so its normal model is strictly more permissive
// than Stide's:
//
//     capable(lookahead-pairs)  ⊆  capable(stide)
//
// which makes it the one detector in this library whose coverage sits BELOW
// the paper's Stide diagonal: yet another point on the diversity map, and a
// warning that "sequence-based" does not mean "Stide-equivalent".
#pragma once

#include <iosfwd>
#include <vector>

#include "detect/detector.hpp"

namespace adiv {

class LookaheadPairsDetector final : public SequenceDetector {
public:
    /// window_length must be >= 2 (at least one lookahead offset).
    explicit LookaheadPairsDetector(std::size_t window_length);

    [[nodiscard]] std::string name() const override { return "lookahead-pairs"; }
    [[nodiscard]] std::size_t window_length() const override { return window_length_; }

    void train(const EventStream& training) override;
    [[nodiscard]] std::vector<double> score(const EventStream& test) const override;

    /// Writes the trained model body in the adiv text format; pair with
    /// load_model. Most callers use io/model_io, which adds a typed envelope.
    void save_model(std::ostream& out) const;
    /// Restores a model written by save_model.
    static LookaheadPairsDetector load_model(std::istream& in);

    /// Alphabet size of the training data; throws before train().
    [[nodiscard]] std::size_t alphabet_size() const override;

    /// Distinct (offset, first, follower) pairs stored.
    [[nodiscard]] std::size_t pair_count() const;

private:
    std::size_t window_length_;
    std::size_t alphabet_size_ = 0;
    bool trained_ = false;
    /// seen_[(k-1) * A * A + first * A + follower] — pair (first, w[k]) seen
    /// at lookahead offset k. Dense: (DW-1) * A^2 bits.
    std::vector<bool> seen_;

    [[nodiscard]] std::size_t index(std::size_t offset, Symbol first,
                                    Symbol follower) const noexcept {
        return ((offset - 1) * alphabet_size_ + first) * alphabet_size_ + follower;
    }
};

}  // namespace adiv
