#include "detect/nn_detector.hpp"

#include <cmath>

#include "nn/encoding.hpp"
#include "seq/conditional_model.hpp"
#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

NnDetector::NnDetector(std::size_t window_length, NnDetectorConfig config)
    : window_length_(window_length), config_(config) {
    require(window_length >= 2,
            "neural-net window length must be at least 2 (one context symbol "
            "plus the predicted symbol)");
    require(config_.hidden_units >= 1, "need at least one hidden unit");
    require(config_.epochs >= 1, "need at least one training epoch");
    require(config_.probability_floor >= 0.0 && config_.probability_floor < 1.0,
            "probability floor must be in [0,1)");
    quantizer_.probability_floor = config_.probability_floor;
}

void NnDetector::train(const EventStream& training) {
    alphabet_size_ = training.alphabet_size();
    memo_.clear();

    const std::size_t context_len = window_length_ - 1;
    const ConditionalModel model(training, context_len);

    std::vector<MlpSample> batch;
    const auto distributions = model.distributions();
    batch.reserve(distributions.size());
    for (const ContextDistribution& dist : distributions) {
        MlpSample sample;
        sample.input = one_hot_context(dist.context, alphabet_size_);
        sample.target.resize(alphabet_size_);
        for (std::size_t c = 0; c < alphabet_size_; ++c)
            sample.target[c] = static_cast<double>(dist.next_counts[c]) /
                               static_cast<double>(dist.total);
        sample.weight = std::log2(1.0 + static_cast<double>(dist.total));
        batch.push_back(std::move(sample));
    }

    MlpConfig net_config;
    net_config.layer_sizes = {one_hot_size(context_len, alphabet_size_),
                              config_.hidden_units, alphabet_size_};
    net_config.learning_rate = config_.learning_rate;
    net_config.momentum = config_.momentum;
    net_config.init_scale = config_.init_scale;
    net_config.seed = config_.seed;
    net_.emplace(net_config);
    training_loss_ = net_->train(batch, config_.epochs);
}

std::vector<double> NnDetector::predict(SymbolView context) const {
    require(net_.has_value(), "neural-net detector must be trained before use");
    require(context.size() == window_length_ - 1, "context length mismatch");
    const NgramCodec codec(alphabet_size_);
    const NgramKey key = codec.encode(context);
    if (auto cached = memo_.find(key)) return *std::move(cached);
    std::vector<double> probs = net_->forward(one_hot_context(context, alphabet_size_));
    memo_.store(key, probs);
    return probs;
}

std::vector<double> NnDetector::score(const EventStream& test) const {
    require(net_.has_value(), "neural-net detector must be trained before scoring");
    require(test.alphabet_size() == alphabet_size_,
            "test alphabet does not match training alphabet");
    const std::size_t context_len = window_length_ - 1;
    std::vector<double> responses;
    responses.reserve(test.window_count(window_length_));
    for_each_window(test, window_length_, [&](std::size_t, SymbolView w) {
        const std::vector<double> probs = predict(w.subspan(0, context_len));
        const double p = probs[w[context_len]];
        responses.push_back(quantizer_.response_for_probability(p));
    });
    return responses;
}

double NnDetector::training_loss() const {
    require(net_.has_value(), "neural-net detector is not trained");
    return training_loss_;
}


void NnDetector::save_model(std::ostream& out) const {
    require(net_.has_value(), "cannot save an untrained neural-net model");
    out << window_length_ << ' ' << alphabet_size_ << ' ' << config_.hidden_units
        << ' ' << config_.epochs << ' ';
    write_double(out, config_.learning_rate);
    out << ' ';
    write_double(out, config_.momentum);
    out << ' ';
    write_double(out, config_.init_scale);
    out << ' ';
    write_double(out, config_.probability_floor);
    out << ' ' << config_.seed << ' ';
    write_double(out, training_loss_);
    const std::vector<double> params = net_->parameters();
    out << ' ' << params.size() << '\n';
    for (double p : params) {
        write_double(out, p);
        out << '\n';
    }
}

NnDetector NnDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    NnDetectorConfig config;
    config.hidden_units = read_size(in, "hidden units");
    config.epochs = read_size(in, "epochs");
    config.learning_rate = read_double(in, "learning rate");
    config.momentum = read_double(in, "momentum");
    config.init_scale = read_double(in, "init scale");
    config.probability_floor = read_double(in, "probability floor");
    config.seed = read_u64(in, "seed");
    NnDetector detector(window, config);
    detector.alphabet_size_ = alphabet;
    detector.training_loss_ = read_double(in, "training loss");

    MlpConfig net_config;
    net_config.layer_sizes = {one_hot_size(window - 1, alphabet),
                              config.hidden_units, alphabet};
    net_config.learning_rate = config.learning_rate;
    net_config.momentum = config.momentum;
    net_config.init_scale = config.init_scale;
    net_config.seed = config.seed;
    detector.net_.emplace(net_config);

    const std::size_t param_count = read_size(in, "parameter count");
    std::vector<double> params(param_count);
    for (double& p : params) p = read_double(in, "parameter");
    detector.net_->set_parameters(params);
    return detector;
}

std::size_t NnDetector::alphabet_size() const {
    require(net_.has_value(), "neural-net detector is not trained");
    return alphabet_size_;
}

}  // namespace adiv
