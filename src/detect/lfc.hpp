// Locality frame count (LFC) post-filter.
//
// Real Stide deployments smooth window responses with a locality frame: an
// alarm is raised only when at least `threshold` of the last `frame_size`
// windows were anomalous (Warrender et al. 1999). The study deliberately
// IGNORES this stage — it evaluates a detector's intrinsic ability, not its
// noise suppression (Section 5.5) — so the filter lives outside the
// detectors as an optional post-processor, exercised by the LFC ablation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "detect/detector.hpp"

namespace adiv {

struct LocalityFrameConfig {
    std::size_t frame_size = 20;  ///< sliding frame of recent windows
    std::size_t threshold = 4;    ///< anomalies within frame needed to alarm
    /// Responses at or above this count as anomalous inside the frame.
    double binarize_at = kMaximalResponse;
};

/// Applies the LFC to per-window responses; returns 0/1 alarms, one per input
/// response. Position i considers responses [max(0, i-frame+1) .. i].
std::vector<double> locality_frame_filter(std::span<const double> responses,
                                          const LocalityFrameConfig& config);

}  // namespace adiv
