#include "detect/lane_brodley.hpp"

#include <unordered_set>

#include "seq/ngram_table.hpp"
#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv {

std::uint64_t lane_brodley_similarity(SymbolView a, SymbolView b) {
    require(a.size() == b.size(), "L&B similarity needs equal-length windows");
    std::uint64_t total = 0;
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == b[i]) {
            ++run;
            total += run;
        } else {
            run = 0;
        }
    }
    return total;
}

LaneBrodleyDetector::LaneBrodleyDetector(std::size_t window_length)
    : window_length_(window_length) {
    require(window_length >= 1, "L&B window length must be at least 1");
}

void LaneBrodleyDetector::train(const EventStream& training) {
    codec_.emplace(training.alphabet_size());
    require(window_length_ <= codec_->max_length(),
            "window length exceeds codec capacity");
    database_.clear();
    memo_.clear();

    const NgramTable normal = NgramTable::from_stream(training, window_length_);
    database_.reserve(normal.distinct() * window_length_);
    // Deterministic database order (by descending count) so scores do not
    // depend on hash-iteration order; the max-over-database is order
    // independent anyway, but determinism keeps debugging sane.
    for (auto& [gram, count] : normal.items_by_count()) {
        (void)count;
        database_.insert(database_.end(), gram.begin(), gram.end());
    }
}

std::uint64_t LaneBrodleyDetector::max_similarity_to_normal(SymbolView window) const {
    require(codec_.has_value(), "L&B detector must be trained before scoring");
    require(window.size() == window_length_, "window length mismatch");
    require_data(!database_.empty(), "L&B normal database is empty");

    const NgramKey key = codec_->encode(window);
    if (const auto cached = memo_.find(key)) return *cached;

    const std::uint64_t best_possible = lane_brodley_max_similarity(window_length_);
    std::uint64_t best = 0;
    for (std::size_t offset = 0; offset < database_.size();
         offset += window_length_) {
        const SymbolView normal_window(&database_[offset], window_length_);
        best = std::max(best, lane_brodley_similarity(window, normal_window));
        if (best == best_possible) break;
    }
    memo_.store(key, best);
    return best;
}

std::vector<double> LaneBrodleyDetector::score(const EventStream& test) const {
    require(codec_.has_value(), "L&B detector must be trained before scoring");
    const double sim_max =
        static_cast<double>(lane_brodley_max_similarity(window_length_));
    std::vector<double> responses;
    responses.reserve(test.window_count(window_length_));
    for_each_window(test, window_length_, [&](std::size_t, SymbolView w) {
        const double sim = static_cast<double>(max_similarity_to_normal(w));
        responses.push_back(1.0 - sim / sim_max);
    });
    return responses;
}

std::size_t LaneBrodleyDetector::normal_database_size() const {
    require(codec_.has_value(), "L&B detector is not trained");
    return database_.size() / window_length_;
}


void LaneBrodleyDetector::save_model(std::ostream& out) const {
    require(codec_.has_value(), "cannot save an untrained L&B model");
    out << window_length_ << ' ' << codec_->alphabet_size() << ' '
        << normal_database_size() << '\n';
    for (std::size_t offset = 0; offset < database_.size();
         offset += window_length_) {
        for (std::size_t i = 0; i < window_length_; ++i)
            out << database_[offset + i] << ' ';
        out << '\n';
    }
}

LaneBrodleyDetector LaneBrodleyDetector::load_model(std::istream& in) {
    const std::size_t window = read_size(in, "window length");
    const std::size_t alphabet = read_size(in, "alphabet size");
    const std::size_t windows = read_size(in, "window count");
    LaneBrodleyDetector detector(window);
    detector.codec_.emplace(alphabet);
    require(window <= detector.codec_->max_length(),
            "window length exceeds codec capacity");
    detector.database_.reserve(windows * window);
    for (std::size_t i = 0; i < windows * window; ++i) {
        const auto s = static_cast<Symbol>(read_u64(in, "database symbol"));
        require_data(s < alphabet, "database symbol outside alphabet");
        detector.database_.push_back(s);
    }
    return detector;
}

std::size_t LaneBrodleyDetector::alphabet_size() const {
    require(codec_.has_value(), "L&B detector is not trained");
    return codec_->alphabet_size();
}

}  // namespace adiv
