#include "datagen/markov_chain.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace adiv {

TransitionMatrix::TransitionMatrix(std::size_t alphabet_size)
    : size_(alphabet_size), rows_(alphabet_size * alphabet_size, 0.0) {
    require(alphabet_size > 0, "alphabet size must be positive");
}

double TransitionMatrix::probability(Symbol from, Symbol to) const {
    require(from < size_ && to < size_, "symbol outside alphabet");
    return rows_[from * size_ + to];
}

void TransitionMatrix::set(Symbol from, Symbol to, double p) {
    require(from < size_ && to < size_, "symbol outside alphabet");
    require(p >= 0.0, "transition probability must be non-negative");
    rows_[from * size_ + to] = p;
}

void TransitionMatrix::normalize_rows() {
    for (std::size_t from = 0; from < size_; ++from) {
        double sum = 0.0;
        for (std::size_t to = 0; to < size_; ++to) sum += rows_[from * size_ + to];
        require_data(sum > 0.0, "transition matrix row " + std::to_string(from) +
                                    " is all zero; cannot normalize");
        for (std::size_t to = 0; to < size_; ++to) rows_[from * size_ + to] /= sum;
    }
}

bool TransitionMatrix::row_stochastic(double tolerance) const noexcept {
    for (std::size_t from = 0; from < size_; ++from) {
        double sum = 0.0;
        for (std::size_t to = 0; to < size_; ++to) sum += rows_[from * size_ + to];
        if (std::abs(sum - 1.0) > tolerance) return false;
    }
    return true;
}

Symbol TransitionMatrix::sample_next(Symbol from, Rng& rng) const {
    require(from < size_, "symbol outside alphabet");
    double target = rng.uniform();
    const double* probs = row(from);
    for (std::size_t to = 0; to < size_; ++to) {
        target -= probs[to];
        if (target < 0.0) return static_cast<Symbol>(to);
    }
    // Floating-point slack: return the last symbol with nonzero probability.
    for (std::size_t to = size_; to > 0; --to)
        if (probs[to - 1] > 0.0) return static_cast<Symbol>(to - 1);
    return static_cast<Symbol>(size_ - 1);
}

EventStream TransitionMatrix::generate(std::size_t length, Symbol start, Rng& rng) const {
    require(start < size_, "start symbol outside alphabet");
    require_data(row_stochastic(1e-6), "transition matrix rows must sum to 1");
    Sequence events;
    events.reserve(length);
    if (length == 0) return EventStream(size_, std::move(events));
    events.push_back(start);
    Symbol current = start;
    for (std::size_t i = 1; i < length; ++i) {
        current = sample_next(current, rng);
        events.push_back(current);
    }
    global_metrics().counter("datagen.symbols_generated").add(events.size());
    return EventStream(size_, std::move(events));
}

std::vector<Symbol> TransitionMatrix::forbidden_successors(Symbol from) const {
    require(from < size_, "symbol outside alphabet");
    std::vector<Symbol> out;
    const double* probs = row(from);
    for (std::size_t to = 0; to < size_; ++to)
        if (probs[to] == 0.0) out.push_back(static_cast<Symbol>(to));
    return out;
}

}  // namespace adiv
