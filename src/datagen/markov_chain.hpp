// First-order Markov chain model used to synthesize evaluation corpora.
//
// The paper's training data (Section 5.3) is produced by a Markov-model
// transition matrix whose probabilities are mostly deterministic (a base
// cycle) with a small amount of nondeterminism that yields rare sequences.
// TransitionMatrix is the general substrate: a row-stochastic matrix over the
// alphabet plus a reproducible sampler.
#pragma once

#include <cstddef>
#include <vector>

#include "seq/stream.hpp"
#include "seq/types.hpp"
#include "util/rng.hpp"

namespace adiv {

class TransitionMatrix {
public:
    /// Zero matrix over an alphabet of the given size; rows must be filled
    /// (set/normalize) before sampling.
    explicit TransitionMatrix(std::size_t alphabet_size);

    [[nodiscard]] std::size_t alphabet_size() const noexcept { return size_; }

    /// P(to | from). No bounds slack: both symbols must be in the alphabet.
    [[nodiscard]] double probability(Symbol from, Symbol to) const;

    void set(Symbol from, Symbol to, double p);

    /// Scales every row to sum to 1. Throws DataError for all-zero rows.
    void normalize_rows();

    /// True when every row sums to 1 within tolerance.
    [[nodiscard]] bool row_stochastic(double tolerance = 1e-9) const noexcept;

    /// Samples the successor of `from`.
    [[nodiscard]] Symbol sample_next(Symbol from, Rng& rng) const;

    /// Generates a stream of `length` symbols starting from `start`
    /// (inclusive). Throws DataError if the matrix is not row-stochastic.
    [[nodiscard]] EventStream generate(std::size_t length, Symbol start, Rng& rng) const;

    /// Symbols `to` with probability(from, to) == 0 — transitions the model
    /// can never produce. Foreign 2-grams are drawn from these.
    [[nodiscard]] std::vector<Symbol> forbidden_successors(Symbol from) const;

private:
    std::size_t size_;
    std::vector<double> rows_;  // row-major [from * size_ + to]

    [[nodiscard]] const double* row(Symbol from) const { return &rows_[from * size_]; }
};

}  // namespace adiv
