#include "datagen/trace_model.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace adiv {

TraceModel::TraceModel(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

void TraceModel::add_routine(const std::string& name,
                             const std::vector<std::string>& symbols, double weight) {
    require(!symbols.empty(), "routine must contain at least one symbol");
    require(weight > 0.0, "routine weight must be positive");
    Routine r;
    r.name = name;
    r.symbols.reserve(symbols.size());
    for (const auto& s : symbols) r.symbols.push_back(alphabet_.id(s));
    r.weight = weight;
    routines_.push_back(std::move(r));
}

EventStream TraceModel::generate(std::size_t length, std::uint64_t seed) const {
    require(!routines_.empty(), "trace model has no routines");
    std::vector<double> weights;
    weights.reserve(routines_.size());
    for (const auto& r : routines_) weights.push_back(r.weight);

    Rng rng(seed);
    Sequence events;
    events.reserve(length + 64);
    while (events.size() < length) {
        const Routine& r = routines_[rng.weighted_pick(weights)];
        events.insert(events.end(), r.symbols.begin(), r.symbols.end());
    }
    events.resize(length);
    global_metrics().counter("datagen.symbols_generated").add(events.size());
    return EventStream(alphabet_.size(), std::move(events));
}

const Sequence& TraceModel::routine(const std::string& name) const {
    for (const auto& r : routines_)
        if (r.name == name) return r.symbols;
    throw InvalidArgument("unknown routine: " + name);
}

TraceModel make_syscall_model() {
    Alphabet alphabet(std::vector<std::string>{
        "open",   "read",   "write",  "close",  "stat",   "mmap",  "brk",
        "socket", "accept", "recv",   "send",   "select", "fork",  "execve",
        "wait",   "exit",   "chmod",  "unlink", "getpid", "ioctl"});
    TraceModel model(std::move(alphabet));
    // The daemon's steady-state request loop dominates the trace.
    model.add_routine("serve_request",
                      {"accept", "recv", "stat", "open", "read", "send", "close"},
                      60.0);
    model.add_routine("serve_cached", {"accept", "recv", "send"}, 25.0);
    model.add_routine("log_entry", {"open", "write", "close"}, 8.0);
    model.add_routine("poll_idle", {"select", "getpid"}, 4.0);
    model.add_routine("reload_config", {"stat", "open", "read", "close", "brk"}, 1.5);
    model.add_routine("spawn_worker", {"fork", "execve", "wait"}, 1.0);
    model.add_routine("cleanup_tmp", {"stat", "unlink"}, 0.5);
    return model;
}

TraceModel make_command_model() {
    Alphabet alphabet(std::vector<std::string>{
        "cd", "ls", "cat", "vi", "make", "gcc", "run", "gdb", "grep", "man",
        "cp", "mv", "rm", "mail", "lpr", "who", "ps", "kill", "tar", "ssh"});
    TraceModel model(std::move(alphabet));
    model.add_routine("edit_compile", {"vi", "make", "gcc", "run"}, 40.0);
    model.add_routine("browse", {"cd", "ls", "cat"}, 30.0);
    model.add_routine("debug", {"gdb", "run", "vi"}, 10.0);
    model.add_routine("search", {"grep", "cat", "vi"}, 8.0);
    model.add_routine("docs", {"man", "vi"}, 5.0);
    model.add_routine("mail_check", {"mail", "who"}, 3.0);
    model.add_routine("housekeeping", {"cp", "mv", "ls"}, 2.5);
    model.add_routine("print", {"lpr", "ls"}, 1.0);
    model.add_routine("archive", {"tar", "cp", "ls"}, 0.5);
    return model;
}

}  // namespace adiv
