// The paper's evaluation corpus (Section 5.3), regenerated.
//
// Characteristics reproduced:
//   * training stream of 1,000,000 categorical elements over an alphabet of 8;
//   * ~98% of the stream is repetitions of the base cycle 0 1 2 3 4 5 6 7
//     (the paper's "1 2 3 4 5 6 7 8");
//   * the remaining ~2% stems from a small nondeterminism in the transition
//     matrix, producing rare sequences (relative frequency < 0.5%);
//   * some transitions never occur at all, so foreign sequences of every
//     length >= 2 exist and can be synthesized.
//
// Concretely, from each symbol s the chain moves to the cycle successor
// (s+1 mod n) with probability 1 - deviation_rate and otherwise jumps to one
// of `deviation_targets` designated non-cycle successors (s+2, s+4, s+6 for
// the default alphabet of 8). The remaining successors have probability zero;
// those zero-probability transitions are what make foreign 2-grams possible.
// With the default deviation_rate of 0.0025, the fraction of clean length-8
// cycle windows is (1 - 0.0025)^8 ~= 98%, matching the paper's figure.
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/markov_chain.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"

namespace adiv {

struct CorpusSpec {
    std::size_t alphabet_size = 8;
    std::size_t training_length = 1'000'000;
    /// Per-transition probability of leaving the base cycle.
    double deviation_rate = 0.0025;
    /// Number of designated non-cycle successors each symbol may jump to.
    std::size_t deviation_targets = 3;
    /// Rarity cutoff used throughout the study (Warrender's 0.5%).
    double rare_threshold = 0.005;
    std::uint64_t seed = 20050628;
};

class TrainingCorpus {
public:
    /// Builds the transition matrix from the spec and generates the training
    /// stream. Throws InvalidArgument for specs that cannot host the required
    /// structure (alphabet too small for the deviation-target layout).
    static TrainingCorpus generate(const CorpusSpec& spec);

    [[nodiscard]] const CorpusSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] const EventStream& training() const noexcept { return training_; }
    [[nodiscard]] const TransitionMatrix& matrix() const noexcept { return matrix_; }

    /// The base cycle 0..n-1.
    [[nodiscard]] const Sequence& cycle() const noexcept { return cycle_; }

    /// Successor of s on the base cycle: (s+1) mod n.
    [[nodiscard]] Symbol cycle_successor(Symbol s) const noexcept {
        return static_cast<Symbol>((s + 1) % spec_.alphabet_size);
    }

    /// The designated non-cycle successors of s (probability > 0, != cycle).
    [[nodiscard]] std::vector<Symbol> deviation_successors(Symbol s) const;

    /// Successors of s with probability zero — candidates for foreign pairs.
    [[nodiscard]] std::vector<Symbol> forbidden_successors(Symbol s) const {
        return matrix_.forbidden_successors(s);
    }

    /// Pure cycle repetitions of `length` symbols, starting at `start_phase`.
    /// This is the paper's clean background test data: every window of any
    /// length that fits is a common training sequence.
    [[nodiscard]] EventStream background(std::size_t length, Symbol start_phase) const;

    /// A held-out stream drawn from the same transition matrix with an
    /// independent seed — "more normal data", including fresh rare sequences;
    /// used by the false-alarm experiments.
    [[nodiscard]] EventStream generate_heldout(std::size_t length,
                                               std::uint64_t seed) const;

private:
    TrainingCorpus(CorpusSpec spec, TransitionMatrix matrix, EventStream training,
                   Sequence cycle);

    CorpusSpec spec_;
    TransitionMatrix matrix_;
    EventStream training_;
    Sequence cycle_;
};

/// The transition matrix described above, exposed separately so tests and
/// ablations can generate variants without a full corpus.
TransitionMatrix make_cycle_matrix(const CorpusSpec& spec);

}  // namespace adiv
