// Natural-looking categorical traces for the example applications.
//
// The study itself uses the controlled synthetic corpus (datagen/corpus), but
// the examples motivate the detectors with host-monitoring workloads: system
// call traces (a "sense of self" style process monitor, Forrest et al.) and
// user command streams (the masquerade setting of Lane & Brodley). The
// TraceModel composes a trace by stochastically concatenating behavioural
// routines — short, named symbol sequences with mixing weights — which yields
// data that is regular enough to train on yet irregular enough to contain
// rare patterns, like real audit data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"
#include "util/rng.hpp"

namespace adiv {

class TraceModel {
public:
    explicit TraceModel(Alphabet alphabet);

    /// Registers a behavioural routine given as symbol names. Weight is the
    /// relative sampling frequency (> 0).
    void add_routine(const std::string& name, const std::vector<std::string>& symbols,
                     double weight);

    /// Generates a trace of at least `length` symbols (whole routines are
    /// appended; the stream is truncated to exactly `length`).
    [[nodiscard]] EventStream generate(std::size_t length, std::uint64_t seed) const;

    [[nodiscard]] const Alphabet& alphabet() const noexcept { return alphabet_; }
    [[nodiscard]] std::size_t routine_count() const noexcept { return routines_.size(); }

    /// Symbol sequence of a named routine. Throws for unknown names.
    [[nodiscard]] const Sequence& routine(const std::string& name) const;

private:
    struct Routine {
        std::string name;
        Sequence symbols;
        double weight;
    };

    Alphabet alphabet_;
    std::vector<Routine> routines_;
};

/// A simulated server process: ~20 system calls, routines for request
/// handling, file serving, logging, and housekeeping.
TraceModel make_syscall_model();

/// A simulated interactive user: shell commands with editing, build, and
/// browsing habits; used by the masquerade example.
TraceModel make_command_model();

}  // namespace adiv
