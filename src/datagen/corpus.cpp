#include "datagen/corpus.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace adiv {

TransitionMatrix make_cycle_matrix(const CorpusSpec& spec) {
    const std::size_t n = spec.alphabet_size;
    require(n >= 2, "corpus alphabet must have at least 2 symbols");
    require(spec.deviation_rate >= 0.0 && spec.deviation_rate < 1.0,
            "deviation rate must be in [0,1)");
    require(spec.deviation_targets >= 1, "need at least one deviation target");
    // Targets are s+2, s+4, ... (mod n); they must avoid both s (self-loop)
    // and s+1 (the cycle successor), which requires 2*(targets+1) <= n... the
    // k-th target is s+2k, so the largest is s+2*deviation_targets, and all
    // of s+2..s+2t must differ from s and s+1 modulo n.
    require(2 * spec.deviation_targets + 1 < n,
            "alphabet too small for the requested number of deviation targets");

    TransitionMatrix m(n);
    for (Symbol s = 0; s < n; ++s) {
        m.set(s, static_cast<Symbol>((s + 1) % n), 1.0 - spec.deviation_rate);
        for (std::size_t k = 1; k <= spec.deviation_targets; ++k) {
            const auto target = static_cast<Symbol>((s + 2 * k) % n);
            m.set(s, target, spec.deviation_rate / static_cast<double>(spec.deviation_targets));
        }
    }
    ADIV_ASSERT(m.row_stochastic(1e-9));
    return m;
}

TrainingCorpus TrainingCorpus::generate(const CorpusSpec& spec) {
    require(spec.training_length >= spec.alphabet_size,
            "training stream must cover at least one full cycle");
    require(spec.rare_threshold > 0.0 && spec.rare_threshold < 1.0,
            "rare threshold must be in (0,1)");
    TransitionMatrix matrix = make_cycle_matrix(spec);
    Rng rng(spec.seed);
    EventStream training = matrix.generate(spec.training_length, /*start=*/0, rng);
    Sequence cycle(spec.alphabet_size);
    for (std::size_t i = 0; i < spec.alphabet_size; ++i)
        cycle[i] = static_cast<Symbol>(i);
    return TrainingCorpus(spec, std::move(matrix), std::move(training), std::move(cycle));
}

TrainingCorpus::TrainingCorpus(CorpusSpec spec, TransitionMatrix matrix,
                               EventStream training, Sequence cycle)
    : spec_(spec),
      matrix_(std::move(matrix)),
      training_(std::move(training)),
      cycle_(std::move(cycle)) {}

std::vector<Symbol> TrainingCorpus::deviation_successors(Symbol s) const {
    require(s < spec_.alphabet_size, "symbol outside alphabet");
    std::vector<Symbol> out;
    out.reserve(spec_.deviation_targets);
    for (std::size_t k = 1; k <= spec_.deviation_targets; ++k)
        out.push_back(static_cast<Symbol>((s + 2 * k) % spec_.alphabet_size));
    return out;
}

EventStream TrainingCorpus::background(std::size_t length, Symbol start_phase) const {
    require(start_phase < spec_.alphabet_size, "start phase outside alphabet");
    Sequence events;
    events.reserve(length);
    Symbol s = start_phase;
    for (std::size_t i = 0; i < length; ++i) {
        events.push_back(s);
        s = cycle_successor(s);
    }
    global_metrics().counter("datagen.symbols_generated").add(events.size());
    return EventStream(spec_.alphabet_size, std::move(events));
}

EventStream TrainingCorpus::generate_heldout(std::size_t length,
                                             std::uint64_t seed) const {
    Rng rng(seed);
    return matrix_.generate(length, /*start=*/0, rng);
}

}  // namespace adiv
