#include "serve/http_metrics.hpp"

#include <utility>

#include "obs/openmetrics.hpp"
#include "util/error.hpp"

namespace adiv::serve {

namespace {

constexpr std::string_view kContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

std::string http_response(std::string_view status, std::string_view content_type,
                          std::string_view body) {
    std::string out = "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

std::string plain_response(std::string_view status, std::string_view body) {
    return http_response(status, "text/plain; charset=utf-8", body);
}

}  // namespace

std::string http_metrics_response(std::string_view request_head,
                                  const MetricsRegistry& metrics) {
    // Only the request line matters: "<METHOD> <target> HTTP/<version>".
    const std::size_t line_end =
        std::min(request_head.find('\r'), request_head.find('\n'));
    const std::string_view line = request_head.substr(0, line_end);
    const std::size_t method_end = line.find(' ');
    if (method_end == std::string_view::npos)
        return plain_response("400 Bad Request", "malformed request line\n");
    const std::size_t target_end = line.find(' ', method_end + 1);
    if (target_end == std::string_view::npos ||
        line.compare(target_end + 1, 5, "HTTP/") != 0)
        return plain_response("400 Bad Request", "malformed request line\n");
    const std::string_view method = line.substr(0, method_end);
    const std::string_view target =
        line.substr(method_end + 1, target_end - method_end - 1);
    if (method != "GET")
        return plain_response("405 Method Not Allowed", "only GET is served\n");
    if (target != "/metrics" && target != "/metrics/")
        return plain_response("404 Not Found", "try /metrics\n");
    return http_response("200 OK", kContentType, metrics_to_openmetrics(metrics));
}

std::string serve_one_http_request(Transport& transport,
                                   const MetricsRegistry& metrics) {
    // Read until the end of the header block (or end-of-stream / a size cap
    // — scrape requests are tiny, anything bigger is not one).
    std::string head;
    char buffer[1024];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos && head.size() < 16384) {
        const std::size_t n = transport.read_some(buffer, sizeof buffer);
        if (n == 0) break;
        head.append(buffer, n);
    }
    const std::string response = http_metrics_response(head, metrics);
    transport.write_all(response.data(), response.size());
    return response;
}

HttpMetricsListener::HttpMetricsListener(std::uint16_t port,
                                         MetricsRegistry& metrics)
    : metrics_(&metrics), listener_(port) {
    accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpMetricsListener::~HttpMetricsListener() { stop(); }

std::uint16_t HttpMetricsListener::port() const noexcept {
    return listener_.port();
}

void HttpMetricsListener::stop() {
    const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
    stopping_.store(true);
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::thread& handler : handlers_)
        if (handler.joinable()) handler.join();
    handlers_.clear();
}

void HttpMetricsListener::accept_loop() {
    while (!stopping_.load()) {
        std::unique_ptr<Transport> transport;
        try {
            transport = listener_.accept(/*timeout_ms=*/100);
        } catch (const std::exception&) {
            return;  // listener closed under us during stop()
        }
        if (!transport) continue;
        const std::lock_guard<std::mutex> lock(mutex_);
        handlers_.emplace_back(
            [this, shared = std::shared_ptr<Transport>(std::move(transport))] {
                try {
                    serve_one_http_request(*shared, *metrics_);
                } catch (const std::exception&) {
                    // A dropped scrape connection is the scraper's problem.
                }
                shared->close();
            });
    }
}

}  // namespace adiv::serve
