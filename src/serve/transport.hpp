// Byte transports for the detection server: a bidirectional stream
// abstraction with two implementations.
//
//   * LoopbackTransport — an in-process pipe pair (mutex + condvar byte
//     queues). make_loopback_pair() returns the two ends; what one end
//     writes, the other reads. Every protocol, session, and concurrency
//     test runs hermetically over these.
//   * TcpTransport / TcpListener — POSIX TCP on 127.0.0.1. The listener
//     binds an ephemeral port when asked for port 0 and reports the actual
//     port, so daemons and CI scripts never race over a fixed number.
//
// The read side distinguishes "no more bytes ever" (read_some returns 0)
// from transport failure (DataError). shutdown_input() closes only the
// incoming direction: the peer's reads still drain, and our pending writes
// still flush — the primitive behind graceful server drain.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "serve/protocol.hpp"

namespace adiv::serve {

class Transport {
public:
    virtual ~Transport() = default;

    /// Blocks until at least one byte is available; returns the number of
    /// bytes read, or 0 at end-of-stream. Throws DataError on failure.
    virtual std::size_t read_some(char* buffer, std::size_t capacity) = 0;

    /// Writes the whole buffer. Writes after the peer closed are discarded
    /// silently (the connection is ending; the response has nowhere to go).
    virtual void write_all(const char* data, std::size_t size) = 0;

    /// Closes the incoming direction only: our reads see end-of-stream,
    /// writes still work.
    virtual void shutdown_input() = 0;

    /// Closes both directions.
    virtual void close() = 0;
};

/// Two connected in-process endpoints; bytes written to one are read from
/// the other. Both ends are safe for one concurrent reader plus one
/// concurrent writer each.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair();

/// Frame helpers over a transport (framing itself is in protocol.hpp).
void write_frame(Transport& transport, std::string_view payload);

/// Reads one complete frame through the decoder. Returns nullopt on a clean
/// end-of-stream (decoder idle); throws DataError on mid-frame end-of-stream
/// or a malformed prefix.
std::optional<std::string> read_frame(Transport& transport, FrameDecoder& decoder);

/// Listening TCP socket on 127.0.0.1. Construction binds and listens;
/// port 0 picks an ephemeral port (see port()).
class TcpListener {
public:
    explicit TcpListener(std::uint16_t port, int backlog = 64);
    ~TcpListener();

    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// The bound port (the ephemeral one when constructed with 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Waits up to timeout_ms for a connection; nullptr on timeout or after
    /// close(). Throws DataError on listener failure.
    std::unique_ptr<Transport> accept(int timeout_ms);

    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/// Connects to a TCP server. Throws DataError when the connection fails.
std::unique_ptr<Transport> tcp_connect(const std::string& host, std::uint16_t port);

}  // namespace adiv::serve
