// Session state for the detection server.
//
// ModelCatalog owns the trained detectors, loaded once (via io/model_io or
// registered directly) and shared read-only across every session — the
// concurrency contract in detect/detector.hpp makes concurrent score() calls
// on one trained instance safe, so N sessions over one model cost one model.
//
// SessionManager turns protocol requests into responses over per-session
// OnlineScorer state. It performs no locking around a session's scorer:
// the server guarantees (via its per-connection strand) that at most one
// thread handles a given session at a time, and the manager only takes its
// own mutex for the session table itself.
//
// Metrics (in the given registry; the process-global one by default):
//   serve.sessions_opened    counter
//   serve.sessions_closed    counter
//   serve.sessions_active    gauge
//   serve.events_pushed      counter, one per event in a PUSH
//   serve.alarms_emitted     counter, maximal responses delivered
//   serve.push_latency_us    histogram over per-PUSH handling time
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "detect/detector.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "serve/protocol.hpp"

namespace adiv::serve {

/// Named, trained, immutable detectors shared across sessions.
class ModelCatalog {
public:
    /// When allow_paths is true, resolve() falls back to loading unknown
    /// targets as model files from disk (cached under their path).
    explicit ModelCatalog(bool allow_paths = false) : allow_paths_(allow_paths) {}

    /// Registers a model under a name; the detector must be trained.
    /// The first registered model also becomes "default".
    void add(const std::string& name,
             std::shared_ptr<const SequenceDetector> model);

    /// Loads a model file and registers it under `name` (and "default" when
    /// first). Returns the loaded detector.
    std::shared_ptr<const SequenceDetector> add_from_file(
        const std::string& name, const std::string& path);

    /// Resolves an OPEN target: a registered name, or (when allowed) a model
    /// file path. Throws InvalidArgument for unknown targets.
    std::shared_ptr<const SequenceDetector> resolve(const std::string& target);

    [[nodiscard]] std::vector<std::string> names() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const SequenceDetector>> models_;
    bool allow_paths_;
};

struct SessionConfig {
    /// OnlineScorer buffer capacity; 0 = the scorer default (4 * DW).
    std::size_t scorer_buffer = 0;
    /// Flight-recorder slots per session (the DUMP verb's window).
    std::size_t flight_capacity = 64;
};

/// The METRICS verb's response: the registry rendered as an OpenMetrics
/// exposition. A free function so the scrape path is unit-testable without
/// a catalog, sessions, or sockets.
[[nodiscard]] Response metrics_response(const MetricsRegistry& metrics);

/// Per-session OnlineScorer state over catalog models; request dispatch.
class SessionManager {
public:
    explicit SessionManager(ModelCatalog& catalog, SessionConfig config = {},
                            MetricsRegistry& metrics = global_metrics());

    /// Creates a session over the resolved target. Throws InvalidArgument
    /// for unknown targets.
    [[nodiscard]] Response open(const std::string& target);

    /// Handles a PUSH / STATS / DRAIN / DUMP / CLOSE for an existing session.
    /// Returns an ERR response (never throws) for protocol-level problems:
    /// unknown session, out-of-alphabet events. A rejected PUSH leaves the
    /// session state untouched (events are validated before any is scored).
    [[nodiscard]] Response handle(std::uint64_t session_id, const Request& request);

    /// Abrupt session end (connection dropped without CLOSE).
    void disconnect(std::uint64_t session_id);

    [[nodiscard]] std::size_t active_sessions() const;

    /// Appends one record to the session's flight ring; a no-op for unknown
    /// (already-closed) sessions. Called by the server after each reply.
    void record_flight(std::uint64_t session_id, const FlightRecord& record);

    /// Every live session's flight ring rendered as text, one
    /// "session <id>" header per session in id order — the
    /// --dump-on-signal output.
    [[nodiscard]] std::string dump_all() const;

private:
    struct Session {
        std::shared_ptr<const SequenceDetector> model;
        OnlineScorer scorer;
        FlightRecorder flight;
        std::uint64_t alarms_reported = 0;

        Session(std::shared_ptr<const SequenceDetector> detector,
                std::size_t buffer, std::size_t flight_capacity,
                MetricsRegistry& metrics)
            : model(std::move(detector)),
              scorer(*model, buffer, metrics),
              flight(flight_capacity) {}
    };

    [[nodiscard]] std::shared_ptr<Session> find(std::uint64_t session_id) const;
    [[nodiscard]] static SessionCounts counts_of(const Session& session);
    void close_locked_erase(std::uint64_t session_id);

    ModelCatalog* catalog_;
    SessionConfig config_;
    MetricsRegistry* metrics_;
    // The session-table lock — the suspected serialization point ROADMAP
    // item 1 wants evidence on, so it is a wait site ("serve.session_table").
    mutable ProfiledMutex mutex_;
    std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
    std::uint64_t next_id_ = 1;
    Counter& sessions_opened_;
    Counter& sessions_closed_;
    Gauge& sessions_active_;
    Counter& events_pushed_;
    Counter& alarms_emitted_;
    Histogram& push_latency_us_;
};

}  // namespace adiv::serve
