#include "serve/session.hpp"

#include <utility>

#include "io/model_io.hpp"
#include "obs/openmetrics.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace adiv::serve {

Response metrics_response(const MetricsRegistry& metrics) {
    Response response;
    response.type = ResponseType::Metrics;
    response.exposition = metrics_to_openmetrics(metrics);
    return response;
}

// ---------------------------------------------------------------------------
// ModelCatalog
// ---------------------------------------------------------------------------

void ModelCatalog::add(const std::string& name,
                       std::shared_ptr<const SequenceDetector> model) {
    require(model != nullptr, "cannot register a null model");
    require(!name.empty() && name.find_first_of(" \t\n\r") == std::string::npos,
            "model name must be a single non-empty token");
    const std::lock_guard<std::mutex> lock(mutex_);
    if (models_.empty()) models_["default"] = model;
    models_[name] = std::move(model);
}

std::shared_ptr<const SequenceDetector> ModelCatalog::add_from_file(
    const std::string& name, const std::string& path) {
    std::shared_ptr<const SequenceDetector> model = load_detector_file(path);
    add(name, model);
    return model;
}

std::shared_ptr<const SequenceDetector> ModelCatalog::resolve(
    const std::string& target) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = models_.find(target); it != models_.end())
            return it->second;
    }
    require(allow_paths_, "unknown model '" + target + "'");
    // Load outside the lock (disk IO), then publish; a racing resolve of the
    // same path may load twice — both loads yield equivalent models.
    std::shared_ptr<const SequenceDetector> model = load_detector_file(target);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (models_.empty()) models_["default"] = model;
        const auto [it, inserted] = models_.emplace(target, model);
        if (!inserted) model = it->second;
    }
    return model;
}

std::vector<std::string> ModelCatalog::names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto& [name, model] : models_) names.push_back(name);
    return names;
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(ModelCatalog& catalog, SessionConfig config,
                               MetricsRegistry& metrics)
    : catalog_(&catalog),
      config_(config),
      metrics_(&metrics),
      // Wait sites live in the global registry regardless of `metrics`:
      // sites are process-wide diagnostics, and tests assert per-manager
      // behaviour through the session metrics, not the site counters.
      mutex_(wait_site("serve.session_table")),
      sessions_opened_(metrics.counter("serve.sessions_opened")),
      sessions_closed_(metrics.counter("serve.sessions_closed")),
      sessions_active_(metrics.gauge("serve.sessions_active")),
      events_pushed_(metrics.counter("serve.events_pushed")),
      alarms_emitted_(metrics.counter("serve.alarms_emitted")),
      push_latency_us_(metrics.histogram("serve.push_latency_us")) {}

Response SessionManager::open(const std::string& target) {
    std::shared_ptr<const SequenceDetector> model = catalog_->resolve(target);
    auto session = std::make_shared<Session>(
        std::move(model), config_.scorer_buffer, config_.flight_capacity,
        *metrics_);
    Response response;
    response.type = ResponseType::Opened;
    response.detector = session->model->name();
    response.window = session->model->window_length();
    response.alphabet = session->model->alphabet_size();
    {
        const std::lock_guard<ProfiledMutex> lock(mutex_);
        response.session_id = next_id_++;
        sessions_.emplace(response.session_id, std::move(session));
        sessions_active_.set(static_cast<double>(sessions_.size()));
    }
    sessions_opened_.add(1);
    return response;
}

Response SessionManager::handle(std::uint64_t session_id, const Request& request) {
    const std::shared_ptr<Session> session = find(session_id);
    if (!session) return error_response("no open session");
    switch (request.type) {
        case RequestType::Open:
            return error_response("session already open");
        case RequestType::Push: {
            const Stopwatch watch;
            const std::size_t alphabet = session->model->alphabet_size();
            for (const Symbol event : request.events)
                if (event >= alphabet)
                    return error_response("event " + std::to_string(event) +
                                          " outside the model alphabet (" +
                                          std::to_string(alphabet) + ")");
            Response response;
            response.type = ResponseType::Scores;
            response.scores.reserve(request.events.size());
            for (const Symbol event : request.events)
                if (const auto score = session->scorer.push(event))
                    response.scores.push_back(*score);
            const std::uint64_t alarms = session->scorer.alarms();
            // Session-state invariant: alarm counters only move forward, so
            // the delta reported to the registry can never underflow.
            ADIV_ASSERT(alarms >= session->alarms_reported);
            alarms_emitted_.add(alarms - session->alarms_reported);
            session->alarms_reported = alarms;
            events_pushed_.add(request.events.size());
            push_latency_us_.record(watch.seconds() * 1e6);
            return response;
        }
        case RequestType::Stats: {
            Response response;
            response.type = ResponseType::Stats;
            response.counts = counts_of(*session);
            response.active_sessions = active_sessions();
            return response;
        }
        case RequestType::Metrics:
            // Same answer with or without a session: METRICS reads the
            // shared registry, not per-session state.
            return metrics_response(*metrics_);
        case RequestType::Drain: {
            // The server's strand has already handled everything enqueued
            // before this request, so reaching this point IS the barrier.
            Response response;
            response.type = ResponseType::Drained;
            response.counts = counts_of(*session);
            return response;
        }
        case RequestType::Dump: {
            Response response;
            response.type = ResponseType::Dumped;
            response.exposition = render_flight_records(session->flight.snapshot());
            return response;
        }
        case RequestType::Close: {
            Response response;
            response.type = ResponseType::Closed;
            response.counts = counts_of(*session);
            {
                const std::lock_guard<ProfiledMutex> lock(mutex_);
                close_locked_erase(session_id);
            }
            return response;
        }
    }
    return error_response("unknown request type");
}

void SessionManager::disconnect(std::uint64_t session_id) {
    const std::lock_guard<ProfiledMutex> lock(mutex_);
    close_locked_erase(session_id);
}

std::size_t SessionManager::active_sessions() const {
    const std::lock_guard<ProfiledMutex> lock(mutex_);
    return sessions_.size();
}

void SessionManager::record_flight(std::uint64_t session_id,
                                   const FlightRecord& record) {
    if (const std::shared_ptr<Session> session = find(session_id))
        session->flight.record(record);
}

std::string SessionManager::dump_all() const {
    std::vector<std::pair<std::uint64_t, std::shared_ptr<Session>>> live;
    {
        const std::lock_guard<ProfiledMutex> lock(mutex_);
        live.assign(sessions_.begin(), sessions_.end());
    }
    std::string out = "flight recorder dump: " + std::to_string(live.size()) +
                      " session(s)\n";
    for (const auto& [id, session] : live) {
        out += "session " + std::to_string(id) + "\n";
        out += render_flight_records(session->flight.snapshot());
    }
    return out;
}

std::shared_ptr<SessionManager::Session> SessionManager::find(
    std::uint64_t session_id) const {
    const std::lock_guard<ProfiledMutex> lock(mutex_);
    const auto it = sessions_.find(session_id);
    return it == sessions_.end() ? nullptr : it->second;
}

SessionCounts SessionManager::counts_of(const Session& session) {
    SessionCounts counts;
    counts.events = session.scorer.events_consumed();
    counts.windows = session.scorer.windows_scored();
    counts.alarms = session.scorer.alarms();
    return counts;
}

void SessionManager::close_locked_erase(std::uint64_t session_id) {
    if (sessions_.erase(session_id) > 0) {
        sessions_closed_.add(1);
        sessions_active_.set(static_cast<double>(sessions_.size()));
    }
}

}  // namespace adiv::serve
