#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "util/error.hpp"

namespace adiv::serve {

// ---------------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------------

namespace {

/// One direction of a loopback connection: a byte queue with blocking reads.
class LoopbackChannel {
public:
    void write(const char* data, std::size_t size) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) return;  // peer is gone; discard like a broken pipe
            data_.append(data, size);
        }
        readable_.notify_one();
    }

    std::size_t read_some(char* buffer, std::size_t capacity) {
        std::unique_lock<std::mutex> lock(mutex_);
        readable_.wait(lock, [this] { return closed_ || !data_.empty(); });
        if (data_.empty()) return 0;
        const std::size_t n = std::min(capacity, data_.size());
        std::memcpy(buffer, data_.data(), n);
        data_.erase(0, n);
        return n;
    }

    /// Buffered bytes stay readable after close; reads return 0 once empty.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        readable_.notify_all();
    }

private:
    std::mutex mutex_;
    std::condition_variable readable_;
    std::string data_;
    bool closed_ = false;
};

class LoopbackTransport final : public Transport {
public:
    LoopbackTransport(std::shared_ptr<LoopbackChannel> in,
                      std::shared_ptr<LoopbackChannel> out)
        : in_(std::move(in)), out_(std::move(out)) {}

    ~LoopbackTransport() override { close(); }

    std::size_t read_some(char* buffer, std::size_t capacity) override {
        return in_->read_some(buffer, capacity);
    }

    void write_all(const char* data, std::size_t size) override {
        out_->write(data, size);
    }

    void shutdown_input() override { in_->close(); }

    void close() override {
        in_->close();
        out_->close();
    }

private:
    std::shared_ptr<LoopbackChannel> in_;
    std::shared_ptr<LoopbackChannel> out_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair() {
    auto forward = std::make_shared<LoopbackChannel>();
    auto backward = std::make_shared<LoopbackChannel>();
    return {std::make_unique<LoopbackTransport>(forward, backward),
            std::make_unique<LoopbackTransport>(backward, forward)};
}

// ---------------------------------------------------------------------------
// Frame helpers
// ---------------------------------------------------------------------------

void write_frame(Transport& transport, std::string_view payload) {
    const std::string frame = encode_frame(payload);
    transport.write_all(frame.data(), frame.size());
}

std::optional<std::string> read_frame(Transport& transport, FrameDecoder& decoder) {
    for (;;) {
        if (auto payload = decoder.next()) return payload;
        char buffer[4096];
        const std::size_t n = transport.read_some(buffer, sizeof buffer);
        if (n == 0) {
            require_data(decoder.idle(), "connection closed mid-frame");
            return std::nullopt;
        }
        decoder.feed({buffer, n});
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

namespace {

class TcpTransport final : public Transport {
public:
    explicit TcpTransport(int fd) : fd_(fd) {}

    ~TcpTransport() override { close(); }

    std::size_t read_some(char* buffer, std::size_t capacity) override {
        for (;;) {
            const int fd = fd_.load(std::memory_order_acquire);
            if (fd < 0) return 0;  // closed locally
            const ssize_t n = ::recv(fd, buffer, capacity, 0);
            if (n >= 0) return static_cast<std::size_t>(n);
            if (errno == EINTR) continue;
            // A vanished peer or a concurrent local close() both read as
            // end-of-stream, not failure.
            if (errno == ECONNRESET || errno == EBADF) return 0;
            throw DataError(std::string("tcp recv failed: ") + std::strerror(errno));
        }
    }

    void write_all(const char* data, std::size_t size) override {
        std::size_t sent = 0;
        while (sent < size) {
            const int fd = fd_.load(std::memory_order_acquire);
            if (fd < 0) return;
            const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) continue;
                // Peer closed: drop the rest, as documented on Transport.
                if (errno == EPIPE || errno == ECONNRESET || errno == EBADF) return;
                throw DataError(std::string("tcp send failed: ") +
                                std::strerror(errno));
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    void shutdown_input() override {
        const int fd = fd_.load(std::memory_order_acquire);
        if (fd >= 0) ::shutdown(fd, SHUT_RD);
    }

    void close() override {
        const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        }
    }

private:
    std::atomic<int> fd_;
};

sockaddr_in loopback_address(std::uint16_t port) {
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return address;
}

}  // namespace

TcpListener::TcpListener(std::uint16_t port, int backlog) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require_data(fd_ >= 0, std::string("socket failed: ") + std::strerror(errno));
    const int reuse = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
    sockaddr_in address = loopback_address(port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw DataError("bind to 127.0.0.1:" + std::to_string(port) +
                        " failed: " + reason);
    }
    if (::listen(fd_, backlog) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw DataError("listen failed: " + reason);
    }
    socklen_t length = sizeof address;
    require_data(::getsockname(fd_, reinterpret_cast<sockaddr*>(&address),
                               &length) == 0,
                 "getsockname failed");
    port_ = ntohs(address.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<Transport> TcpListener::accept(int timeout_ms) {
    if (fd_ < 0) return nullptr;
    pollfd poller{fd_, POLLIN, 0};
    const int ready = ::poll(&poller, 1, timeout_ms);
    if (ready == 0) return nullptr;
    if (ready < 0) {
        if (errno == EINTR) return nullptr;
        throw DataError(std::string("poll failed: ") + std::strerror(errno));
    }
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
        // close() from another thread surfaces here; treat as "no client".
        if (errno == EBADF || errno == EINVAL || errno == EINTR) return nullptr;
        throw DataError(std::string("accept failed: ") + std::strerror(errno));
    }
    const int nodelay = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    return std::make_unique<TcpTransport>(client);
}

void TcpListener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                       std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    require_data(fd >= 0, std::string("socket failed: ") + std::strerror(errno));
    sockaddr_in address = loopback_address(port);
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        ::close(fd);
        throw DataError("cannot parse host address '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw DataError("connect to " + host + ":" + std::to_string(port) +
                        " failed: " + reason);
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    return std::make_unique<TcpTransport>(fd);
}

}  // namespace adiv::serve
