// The multi-session online detection server.
//
// Threading model
//
//   * One reader per connection (a dedicated thread): reads frames, parses
//     requests, and appends them to the connection's inbox.
//   * One strand per connection: a pool task that drains the inbox in FIFO
//     order, dispatches each request through the SessionManager, and writes
//     the response frame. At most one strand task per connection is
//     scheduled at a time, which gives the per-session ordering guarantee —
//     responses leave in request order — while different connections score
//     in parallel on the shared pool (`jobs` workers).
//   * Backpressure is layered: the inbox is bounded (readers block when a
//     client pushes faster than its session scores, which TCP flow control
//     propagates to the client), and the pool queue is bounded (a burst of
//     strand wakeups blocks readers at submit()).
//
// Draining and shutdown: shutdown() stops the accept loop, closes every
// connection's *input* side only, lets each strand finish the requests that
// already arrived (responses still go out), then closes the transports and
// joins the readers. A client that sends DRAIN and waits for DRAINED before
// CLOSE therefore never loses a response.
//
// Server-level metrics (SessionManager adds the session ones):
//   serve.connections_accepted  counter
//   serve.frames_rejected       counter, malformed frames / requests
//   serve.responses_sent        counter
//   serve.queue_depth           gauge, pool queue depth sampled per dispatch
//
// Profiling (active only while profiling_enabled(); see obs/profile.hpp):
// each handled request is stamped with recv/parse/queue/score/reply stage
// durations, recorded into serve.stage.* histograms, appended to the
// session's flight ring, and — for every profile_sample_every'th PUSH,
// deterministically by sequence number — written to the global trace sink
// as a {"type":"event_stage",...} JSON line. Wait sites:
//   serve.session_table      the SessionManager table lock
//   serve.inbox_block        reader blocked on a full connection inbox
//   serve.strand_handoff     strand submit -> first task execution
//   serve.pool.enqueue_block / serve.pool.dequeue_wait / serve.pool.queue_depth
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
#include "util/thread_pool.hpp"

namespace adiv::serve {

struct ServerConfig {
    /// Scoring worker threads; 0 = hardware concurrency.
    std::size_t jobs = 0;
    /// Bound on the pool queue AND each connection's inbox; 0 = unbounded.
    std::size_t queue_capacity = 256;
    /// OnlineScorer buffer capacity per session; 0 = scorer default (4*DW).
    std::size_t scorer_buffer = 0;
    /// Permit OPEN targets that are model-file paths (loaded and cached).
    bool allow_model_paths = false;
    /// Flight-recorder slots per session (the DUMP verb's window).
    std::size_t flight_capacity = 64;
    /// Emit an event_stage trace line for every Nth PUSH (per server, by
    /// arrival order) while profiling is on; 0 disables the sampled stream.
    std::uint64_t profile_sample_every = 64;
};

class Server {
public:
    explicit Server(ServerConfig config = {},
                    MetricsRegistry& metrics = global_metrics());

    /// Calls shutdown().
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Registers a trained model; the first one also answers to "default".
    void add_model(const std::string& name,
                   std::shared_ptr<const SequenceDetector> model);

    [[nodiscard]] ModelCatalog& catalog() noexcept { return catalog_; }

    /// Adopts one established connection (loopback end, accepted socket).
    /// Returns false when the server is already shutting down (the transport
    /// is closed in that case).
    bool attach(std::unique_ptr<Transport> transport);

    /// Accept loop: adopts connections from the listener until shutdown()
    /// or until `stop` (checked every poll timeout) returns true. Blocks;
    /// run it from the owning thread.
    void serve(TcpListener& listener, const std::function<bool()>& stop = {});

    /// Graceful drain: stop accepting, stop reading, finish every request
    /// already received (responses are delivered), close connections.
    /// Idempotent; safe from any thread.
    void shutdown();

    /// Blocks until every attached connection has ended (client closed or
    /// server shut down). Useful in tests.
    void wait_connections_closed();

    [[nodiscard]] std::size_t active_sessions() const {
        return sessions_.active_sessions();
    }
    [[nodiscard]] std::size_t connections_accepted() const noexcept {
        return connections_accepted_.value();
    }

    /// Every live session's flight ring rendered as text (see
    /// SessionManager::dump_all) — the --dump-on-signal payload.
    [[nodiscard]] std::string dump_flight_records() const {
        return sessions_.dump_all();
    }

private:
    struct InboxItem {
        // RecordError: a well-framed but unparseable record — answered with
        // ERR, connection survives. FatalError: the byte stream lost frame
        // sync — answered with ERR, then the connection closes.
        enum class Kind { Request, RecordError, FatalError, EndOfStream };
        Kind kind = Kind::EndOfStream;
        Request request;
        std::string error;
        // Stage stamps, populated by the reader only while profiling is on.
        // frame_t > 0 marks a stamped item (trace_clock_seconds() is measured
        // from the first call in the process, so 0 cannot collide).
        double recv_us = 0.0;     // reader blocked in read_some before this frame
        double parse_us = 0.0;    // payload -> Request
        double frame_t = 0.0;     // clock at frame completion (total_us base)
        double enqueued_t = 0.0;  // clock at inbox append (queue_us base)
    };

    struct Connection {
        std::unique_ptr<Transport> transport;
        std::thread reader;
        std::mutex mutex;
        std::condition_variable inbox_space;
        std::deque<InboxItem> inbox;
        bool strand_scheduled = false;
        bool finished = false;           // strand saw EndOfStream
        std::uint64_t session_id = 0;
        bool has_session = false;
        // Clock at the last strand submit; consumed (reset to 0) by the
        // strand to attribute the handoff latency. Guarded by `mutex`.
        double strand_submit_t = 0.0;
    };

    void reader_loop(Connection& connection);
    void enqueue(Connection& connection, InboxItem item);
    void run_strand(Connection& connection);
    Response dispatch(Connection& connection, const Request& request);
    void finish_connection(Connection& connection);
    void send_response(Connection& connection, const Response& response);
    void record_stages(const Connection& connection, const Request& request,
                       const Response& response, const StageStamps& stamps);

    ServerConfig config_;
    MetricsRegistry* metrics_;
    ModelCatalog catalog_;
    SessionManager sessions_;
    Counter& connections_accepted_;
    Counter& frames_rejected_;
    Counter& responses_sent_;
    Gauge& queue_depth_;
    // Stage histograms (profiling only; registered eagerly so an OpenMetrics
    // scrape shows them, zeroed, even before the first profiled event).
    Histogram& stage_recv_us_;
    Histogram& stage_parse_us_;
    Histogram& stage_queue_us_;
    Histogram& stage_score_us_;
    Histogram& stage_reply_us_;
    Histogram& stage_total_us_;
    WaitSite& inbox_block_site_;
    WaitSite& strand_handoff_site_;
    WaitSiteThreadPoolProbe pool_probe_;
    std::atomic<std::uint64_t> push_seq_{0};

    mutable std::mutex mutex_;
    std::condition_variable connections_changed_;
    std::vector<std::unique_ptr<Connection>> connections_;
    std::size_t open_connections_ = 0;
    bool stopping_ = false;

    // Declared last: destroyed first, so queued strand tasks run while the
    // connections and session manager they reference are still alive.
    ThreadPool pool_;
};

}  // namespace adiv::serve
