#include "serve/client.hpp"

#include <utility>

#include "util/error.hpp"

namespace adiv::serve {

Client::Client(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {
    require(transport_ != nullptr, "client needs a transport");
}

Response Client::call(const Request& request) {
    write_frame(*transport_, serialize(request));
    const std::optional<std::string> payload = read_frame(*transport_, decoder_);
    require_data(payload.has_value(), "server closed the connection");
    return parse_response(*payload);
}

Response Client::checked(const Request& request) {
    Response response = call(request);
    if (response.type == ResponseType::Error)
        throw ServeError("server error: " + response.message);
    return response;
}

OpenInfo Client::open(const std::string& target) {
    Request request;
    request.type = RequestType::Open;
    request.target = target;
    const Response response = checked(request);
    require_data(response.type == ResponseType::Opened,
                 "unexpected response to OPEN");
    return OpenInfo{response.session_id, response.detector, response.window,
                    response.alphabet};
}

std::vector<double> Client::push(SymbolView events) {
    Request request;
    request.type = RequestType::Push;
    request.events.assign(events.begin(), events.end());
    Response response = checked(request);
    require_data(response.type == ResponseType::Scores,
                 "unexpected response to PUSH");
    return std::move(response.scores);
}

Response Client::stats() {
    Request request;
    request.type = RequestType::Stats;
    Response response = checked(request);
    require_data(response.type == ResponseType::Stats,
                 "unexpected response to STATS");
    return response;
}

std::string Client::metrics() {
    Request request;
    request.type = RequestType::Metrics;
    Response response = checked(request);
    require_data(response.type == ResponseType::Metrics,
                 "unexpected response to METRICS");
    return std::move(response.exposition);
}

SessionCounts Client::drain() {
    Request request;
    request.type = RequestType::Drain;
    const Response response = checked(request);
    require_data(response.type == ResponseType::Drained,
                 "unexpected response to DRAIN");
    return response.counts;
}

std::string Client::dump() {
    Request request;
    request.type = RequestType::Dump;
    Response response = checked(request);
    require_data(response.type == ResponseType::Dumped,
                 "unexpected response to DUMP");
    return std::move(response.exposition);
}

SessionCounts Client::close_session() {
    Request request;
    request.type = RequestType::Close;
    const Response response = checked(request);
    require_data(response.type == ResponseType::Closed,
                 "unexpected response to CLOSE");
    return response.counts;
}

void Client::disconnect() { transport_->close(); }

}  // namespace adiv::serve
