// Blocking client for the adiv_serve protocol: one request frame out, one
// response frame in. Used by adiv_loadgen, the serve tests, and anything
// that wants to talk to a detection server without hand-rolling frames.
//
// Not thread-safe: one Client per thread (the server happily handles many
// concurrent connections instead).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "seq/types.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace adiv::serve {

/// Thrown when the server answers with an ERR record.
class ServeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct OpenInfo {
    std::uint64_t session_id = 0;
    std::string detector;
    std::size_t window = 0;
    std::size_t alphabet = 0;
};

class Client {
public:
    explicit Client(std::unique_ptr<Transport> transport);

    /// Sends a request and returns the matching response (possibly ERR).
    /// Throws DataError when the connection drops mid-exchange.
    Response call(const Request& request);

    /// Conveniences; each throws ServeError when the server answers ERR.
    OpenInfo open(const std::string& target);
    std::vector<double> push(SymbolView events);
    Response stats();
    /// The server's metrics registry as OpenMetrics exposition text; works
    /// with or without an open session.
    std::string metrics();
    SessionCounts drain();
    /// The session's flight-recorder ring as rendered text (DUMP verb);
    /// requires an open session.
    std::string dump();
    SessionCounts close_session();

    /// Closes the underlying transport (an abrupt end from the server's
    /// point of view unless close_session() ran first).
    void disconnect();

    [[nodiscard]] Transport& transport() noexcept { return *transport_; }

private:
    Response checked(const Request& request);

    std::unique_ptr<Transport> transport_;
    FrameDecoder decoder_;
};

}  // namespace adiv::serve
