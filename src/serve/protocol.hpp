// The adiv_serve wire protocol: length-prefixed text frames.
//
// A frame is `<decimal-payload-length> SP <payload-bytes>`; the payload is a
// whitespace-separated record. The framing layer and the record grammar are
// both plain functions over strings, so every protocol path is unit-testable
// without sockets — the transports (serve/transport.hpp) only move bytes.
//
// Request records (client -> server; one response frame per request, in
// request order):
//
//   OPEN <target>          start a session; target names a model the server
//                          has registered ("default", "markov/6", or — when
//                          the server allows it — a model-file path)
//   PUSH <id> <id> ...     feed events to the open session's OnlineScorer
//   STATS                  session + server counters, no state change
//   METRICS                the server's metrics registry as an OpenMetrics
//                          exposition; allowed before OPEN (scrape clients
//                          never open a session)
//   DRAIN                  barrier: everything pushed before this point has
//                          been scored and its responses delivered
//   DUMP                   the session's flight-recorder ring (last K
//                          events with stage stamps) as rendered text;
//                          requires an open session
//   CLOSE                  end the session, report its final counters
//
// Response records (server -> client):
//
//   OPENED <session-id> <detector> <dw> <alphabet>
//   SCORES <n> <v1> ... <vn>        one response per completed window, in
//                                   stream order; 17-significant-digit
//                                   decimal, so doubles round-trip exactly
//   STATS <events> <windows> <alarms> <active-sessions>
//   METRICS <nbytes> <exposition>   raw OpenMetrics text; nbytes covers the
//                                   bytes after the single separator space
//                                   (the exposition embeds newlines, which
//                                   the frame length already accounts for)
//   DRAINED <events> <windows> <alarms>
//   DUMPED <nbytes> <text>          raw flight-recorder rendering; the same
//                                   raw-byte-field shape as METRICS
//   CLOSED <events> <windows> <alarms>
//   ERR <message...>                message runs to the end of the payload
//
// Framing errors (bad length prefix, oversized frame) are unrecoverable —
// the byte stream has lost sync and the connection must close. Record-level
// errors (unknown verb, bad symbol) are answered with ERR and the session
// survives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "seq/types.hpp"

namespace adiv::serve {

/// Upper bound on a frame payload; a frame announcing more is malformed.
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

/// Wraps a payload in a frame: "<length> <payload>".
std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed bytes in arbitrary chunks, pull complete
/// payloads. Throws DataError on a malformed length prefix or an oversized
/// announcement; after a throw the stream is out of sync and must be closed.
class FrameDecoder {
public:
    void feed(std::string_view bytes);

    /// Next complete payload, or nullopt when more bytes are needed.
    [[nodiscard]] std::optional<std::string> next();

    /// True when no partial frame is buffered (a clean stream boundary).
    [[nodiscard]] bool idle() const noexcept { return buffer_.empty(); }

private:
    std::string buffer_;
};

enum class RequestType { Open, Push, Stats, Metrics, Drain, Dump, Close };

struct Request {
    RequestType type = RequestType::Stats;
    std::string target;          // Open
    std::vector<Symbol> events;  // Push
};

/// Session counters carried by STATS / DRAINED / CLOSED.
struct SessionCounts {
    std::uint64_t events = 0;   // events consumed by the scorer
    std::uint64_t windows = 0;  // responses produced
    std::uint64_t alarms = 0;   // responses at/above kMaximalResponse
};

enum class ResponseType {
    Opened, Scores, Stats, Metrics, Drained, Dumped, Closed, Error
};

struct Response {
    ResponseType type = ResponseType::Error;
    // Opened
    std::uint64_t session_id = 0;
    std::string detector;
    std::size_t window = 0;
    std::size_t alphabet = 0;
    // Scores
    std::vector<double> scores;
    // Stats / Drained / Closed
    SessionCounts counts;
    std::size_t active_sessions = 0;  // Stats only
    // Metrics / Dumped: raw body text (OpenMetrics exposition, flight dump)
    std::string exposition;
    // Error
    std::string message;
};

/// Record serialization. serialize() emits the payload only (no frame);
/// parse_* throw DataError on unknown verbs or malformed fields.
std::string serialize(const Request& request);
std::string serialize(const Response& response);
Request parse_request(std::string_view payload);
Response parse_response(std::string_view payload);

/// Convenience constructors for the error path.
Response error_response(std::string message);

}  // namespace adiv::serve
