#include "serve/protocol.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "util/error.hpp"
#include "util/text_serial.hpp"

namespace adiv::serve {

std::string encode_frame(std::string_view payload) {
    ADIV_REQUIRE(payload.size() <= kMaxFramePayload, "frame payload too large");
    std::string frame = std::to_string(payload.size());
    frame += ' ';
    frame += payload;
    return frame;
}

void FrameDecoder::feed(std::string_view bytes) { buffer_.append(bytes); }

std::optional<std::string> FrameDecoder::next() {
    if (buffer_.empty()) return std::nullopt;
    require_data(std::isdigit(static_cast<unsigned char>(buffer_[0])) != 0,
                 "malformed frame: length prefix is not a number");
    const std::size_t sep = buffer_.find(' ');
    // The longest valid prefix announces kMaxFramePayload (7 digits); a run
    // of digits longer than that can never become a valid frame.
    if (sep == std::string::npos) {
        require_data(buffer_.size() <= 8, "malformed frame: unterminated length prefix");
        return std::nullopt;
    }
    std::size_t length = 0;
    const auto [end, ec] =
        std::from_chars(buffer_.data(), buffer_.data() + sep, length);
    require_data(ec == std::errc() && end == buffer_.data() + sep,
                 "malformed frame: length prefix is not a number");
    require_data(length <= kMaxFramePayload, "malformed frame: payload too large");
    if (buffer_.size() - sep - 1 < length) return std::nullopt;
    ADIV_ASSERT(sep + 1 + length <= buffer_.size());
    std::string payload = buffer_.substr(sep + 1, length);
    buffer_.erase(0, sep + 1 + length);
    return payload;
}

namespace {

constexpr std::string_view kOpen = "OPEN";
constexpr std::string_view kPush = "PUSH";
constexpr std::string_view kStats = "STATS";
constexpr std::string_view kMetrics = "METRICS";
constexpr std::string_view kDrain = "DRAIN";
constexpr std::string_view kDump = "DUMP";
constexpr std::string_view kClose = "CLOSE";
constexpr std::string_view kOpened = "OPENED";
constexpr std::string_view kScores = "SCORES";
constexpr std::string_view kDrained = "DRAINED";
constexpr std::string_view kDumped = "DUMPED";
constexpr std::string_view kClosed = "CLOSED";
constexpr std::string_view kErr = "ERR";

void append_double(std::string& out, double value) {
    std::ostringstream token;
    write_double(token, value);
    out += token.str();
}

void require_done(std::istream& in, std::string_view verb) {
    std::string extra;
    require_data(!(in >> extra), "trailing junk after " + std::string(verb));
}

}  // namespace

std::string serialize(const Request& request) {
    switch (request.type) {
        case RequestType::Open:
            require(!request.target.empty() &&
                        request.target.find_first_of(" \t\n\r") == std::string::npos,
                    "OPEN target must be a single non-empty token");
            return std::string(kOpen) + " " + request.target;
        case RequestType::Push: {
            require(!request.events.empty(), "PUSH needs at least one event");
            std::string payload(kPush);
            for (const Symbol event : request.events) {
                payload += ' ';
                payload += std::to_string(event);
            }
            return payload;
        }
        case RequestType::Stats:
            return std::string(kStats);
        case RequestType::Metrics:
            return std::string(kMetrics);
        case RequestType::Drain:
            return std::string(kDrain);
        case RequestType::Dump:
            return std::string(kDump);
        case RequestType::Close:
            return std::string(kClose);
    }
    throw InvalidArgument("unknown request type");
}

std::string serialize(const Response& response) {
    std::string payload;
    switch (response.type) {
        case ResponseType::Opened:
            payload = std::string(kOpened) + " " + std::to_string(response.session_id) +
                      " " + response.detector + " " + std::to_string(response.window) +
                      " " + std::to_string(response.alphabet);
            return payload;
        case ResponseType::Scores:
            payload = std::string(kScores) + " " + std::to_string(response.scores.size());
            for (const double score : response.scores) {
                payload += ' ';
                append_double(payload, score);
            }
            return payload;
        case ResponseType::Stats:
            return std::string(kStats) + " " + std::to_string(response.counts.events) +
                   " " + std::to_string(response.counts.windows) + " " +
                   std::to_string(response.counts.alarms) + " " +
                   std::to_string(response.active_sessions);
        case ResponseType::Metrics:
        case ResponseType::Dumped:
            // The byte count delimits the raw body: it starts after the
            // single space following the count and runs exactly that many
            // bytes (newlines included — the frame length covers them).
            return std::string(response.type == ResponseType::Metrics ? kMetrics
                                                                      : kDumped) +
                   " " + std::to_string(response.exposition.size()) + " " +
                   response.exposition;
        case ResponseType::Drained:
        case ResponseType::Closed:
            payload = std::string(response.type == ResponseType::Drained ? kDrained
                                                                         : kClosed);
            payload += " " + std::to_string(response.counts.events) + " " +
                       std::to_string(response.counts.windows) + " " +
                       std::to_string(response.counts.alarms);
            return payload;
        case ResponseType::Error:
            return std::string(kErr) + " " + response.message;
    }
    throw InvalidArgument("unknown response type");
}

Request parse_request(std::string_view payload) {
    std::istringstream in{std::string(payload)};
    const std::string verb = read_token(in, "request verb");
    Request request;
    if (verb == kOpen) {
        request.type = RequestType::Open;
        request.target = read_token(in, "OPEN target");
        require_done(in, kOpen);
    } else if (verb == kPush) {
        request.type = RequestType::Push;
        std::string token;
        while (in >> token) {
            std::uint32_t value = 0;
            const auto [end, ec] =
                std::from_chars(token.data(), token.data() + token.size(), value);
            require_data(ec == std::errc() && end == token.data() + token.size(),
                         "PUSH event '" + token + "' is not a symbol id");
            request.events.push_back(value);
        }
        require_data(!request.events.empty(), "PUSH carries no events");
    } else if (verb == kStats) {
        request.type = RequestType::Stats;
        require_done(in, kStats);
    } else if (verb == kMetrics) {
        request.type = RequestType::Metrics;
        require_done(in, kMetrics);
    } else if (verb == kDrain) {
        request.type = RequestType::Drain;
        require_done(in, kDrain);
    } else if (verb == kDump) {
        request.type = RequestType::Dump;
        require_done(in, kDump);
    } else if (verb == kClose) {
        request.type = RequestType::Close;
        require_done(in, kClose);
    } else {
        throw DataError("unknown request verb '" + verb + "'");
    }
    return request;
}

Response parse_response(std::string_view payload) {
    std::istringstream in{std::string(payload)};
    const std::string verb = read_token(in, "response verb");
    Response response;
    if (verb == kOpened) {
        response.type = ResponseType::Opened;
        response.session_id = read_u64(in, "session id");
        response.detector = read_token(in, "detector name");
        response.window = read_size(in, "window length");
        response.alphabet = read_size(in, "alphabet size");
        require_done(in, kOpened);
    } else if (verb == kScores) {
        response.type = ResponseType::Scores;
        const std::size_t count = read_size(in, "score count");
        response.scores.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            response.scores.push_back(read_double(in, "score"));
        require_done(in, kScores);
    } else if (verb == kStats) {
        response.type = ResponseType::Stats;
        response.counts.events = read_u64(in, "events");
        response.counts.windows = read_u64(in, "windows");
        response.counts.alarms = read_u64(in, "alarms");
        response.active_sessions = read_size(in, "active sessions");
        require_done(in, kStats);
    } else if (verb == kMetrics || verb == kDumped) {
        response.type =
            verb == kMetrics ? ResponseType::Metrics : ResponseType::Dumped;
        // Raw-byte field: parsed off the payload directly, because the
        // body embeds spaces and newlines that token extraction would
        // destroy.
        const std::string name(verb);
        const std::size_t verb_end = payload.find(' ');
        require_data(verb_end != std::string_view::npos,
                     name + " is missing its byte count");
        const std::size_t size_end = payload.find(' ', verb_end + 1);
        require_data(size_end != std::string_view::npos,
                     name + " is missing its body");
        std::size_t nbytes = 0;
        const char* first = payload.data() + verb_end + 1;
        const char* last = payload.data() + size_end;
        const auto [end, ec] = std::from_chars(first, last, nbytes);
        require_data(ec == std::errc() && end == last,
                     name + " byte count is not a number");
        const std::string_view body = payload.substr(size_end + 1);
        require_data(body.size() == nbytes,
                     name + " byte count disagrees with its body");
        response.exposition = std::string(body);
    } else if (verb == kDrained || verb == kClosed) {
        response.type =
            verb == kDrained ? ResponseType::Drained : ResponseType::Closed;
        response.counts.events = read_u64(in, "events");
        response.counts.windows = read_u64(in, "windows");
        response.counts.alarms = read_u64(in, "alarms");
        require_done(in, verb);
    } else if (verb == kErr) {
        response.type = ResponseType::Error;
        std::string rest;
        std::getline(in, rest);
        // Drop the separator space after the verb; keep the message verbatim.
        if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        response.message = rest;
    } else {
        throw DataError("unknown response verb '" + verb + "'");
    }
    return response;
}

Response error_response(std::string message) {
    Response response;
    response.type = ResponseType::Error;
    response.message = std::move(message);
    return response;
}

}  // namespace adiv::serve
