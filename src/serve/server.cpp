#include "serve/server.hpp"

#include <utility>

#include "util/error.hpp"

namespace adiv::serve {

Server::Server(ServerConfig config, MetricsRegistry& metrics)
    : config_(config),
      metrics_(&metrics),
      catalog_(config.allow_model_paths),
      sessions_(catalog_, SessionConfig{config.scorer_buffer}, metrics),
      connections_accepted_(metrics.counter("serve.connections_accepted")),
      frames_rejected_(metrics.counter("serve.frames_rejected")),
      responses_sent_(metrics.counter("serve.responses_sent")),
      queue_depth_(metrics.gauge("serve.queue_depth")),
      pool_(config.jobs, config.queue_capacity) {}

Server::~Server() { shutdown(); }

void Server::add_model(const std::string& name,
                       std::shared_ptr<const SequenceDetector> model) {
    catalog_.add(name, std::move(model));
}

bool Server::attach(std::unique_ptr<Transport> transport) {
    require(transport != nullptr, "cannot attach a null transport");
    Connection* connection = nullptr;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            transport->close();
            return false;
        }
        connections_.push_back(std::make_unique<Connection>());
        connection = connections_.back().get();
        connection->transport = std::move(transport);
        ++open_connections_;
    }
    connections_accepted_.add(1);
    connection->reader = std::thread([this, connection] { reader_loop(*connection); });
    return true;
}

void Server::serve(TcpListener& listener, const std::function<bool()>& stop) {
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) return;
        }
        if (stop && stop()) return;
        std::unique_ptr<Transport> transport = listener.accept(/*timeout_ms=*/100);
        if (transport) attach(std::move(transport));
    }
}

void Server::shutdown() {
    std::vector<Connection*> to_drain;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!stopping_) {
            stopping_ = true;
            for (const auto& connection : connections_)
                to_drain.push_back(connection.get());
        }
    }
    // First caller: stop the readers at the next frame boundary. Queued
    // requests keep flowing through the strands and their responses are
    // still written — this is the graceful part of the drain.
    for (Connection* connection : to_drain)
        connection->transport->shutdown_input();
    wait_connections_closed();
    // Join every reader, including those of connections that ended earlier.
    // Guarded by mutex_ so concurrent shutdown() calls do not double-join.
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_)
        if (connection->reader.joinable()) connection->reader.join();
}

void Server::wait_connections_closed() {
    std::unique_lock<std::mutex> lock(mutex_);
    connections_changed_.wait(lock, [this] { return open_connections_ == 0; });
}

void Server::reader_loop(Connection& connection) {
    FrameDecoder decoder;
    try {
        char buffer[4096];
        for (;;) {
            const std::size_t n =
                connection.transport->read_some(buffer, sizeof buffer);
            if (n == 0) break;
            decoder.feed({buffer, n});
            // decoder.next() throws on framing errors (fatal, handled
            // below); parse_request throws on record errors (survivable).
            while (auto payload = decoder.next()) {
                InboxItem item;
                try {
                    item.kind = InboxItem::Kind::Request;
                    item.request = parse_request(*payload);
                } catch (const std::exception& record_error) {
                    frames_rejected_.add(1);
                    item.kind = InboxItem::Kind::RecordError;
                    item.error = record_error.what();
                }
                enqueue(connection, std::move(item));
            }
        }
        if (!decoder.idle()) {
            frames_rejected_.add(1);
            InboxItem item;
            item.kind = InboxItem::Kind::FatalError;
            item.error = "connection closed mid-frame";
            enqueue(connection, std::move(item));
        }
    } catch (const std::exception& fatal) {
        frames_rejected_.add(1);
        InboxItem item;
        item.kind = InboxItem::Kind::FatalError;
        item.error = fatal.what();
        enqueue(connection, std::move(item));
    }
    InboxItem eof;
    eof.kind = InboxItem::Kind::EndOfStream;
    enqueue(connection, std::move(eof));
}

void Server::enqueue(Connection& connection, InboxItem item) {
    bool schedule = false;
    {
        std::unique_lock<std::mutex> lock(connection.mutex);
        // Backpressure: requests wait for inbox space; error/EOF items always
        // enter, so a connection can always reach its end state.
        if (item.kind == InboxItem::Kind::Request && config_.queue_capacity != 0)
            connection.inbox_space.wait(lock, [&] {
                return connection.inbox.size() < config_.queue_capacity;
            });
        connection.inbox.push_back(std::move(item));
        if (!connection.strand_scheduled) {
            connection.strand_scheduled = true;
            schedule = true;
        }
    }
    if (schedule) {
        // May block on the bounded pool queue — the cross-connection
        // backpressure point. Reader threads are the only callers.
        pool_.submit([this, &connection] { run_strand(connection); });
        queue_depth_.set(static_cast<double>(pool_.queue_depth()));
    }
}

void Server::run_strand(Connection& connection) {
    for (;;) {
        InboxItem item;
        {
            const std::lock_guard<std::mutex> lock(connection.mutex);
            if (connection.inbox.empty()) {
                connection.strand_scheduled = false;
                return;
            }
            item = std::move(connection.inbox.front());
            connection.inbox.pop_front();
        }
        connection.inbox_space.notify_one();
        switch (item.kind) {
            case InboxItem::Kind::Request:
                if (!connection.finished)
                    send_response(connection, dispatch(connection, item.request));
                break;
            case InboxItem::Kind::RecordError:
                if (!connection.finished)
                    send_response(connection, error_response(item.error));
                break;
            case InboxItem::Kind::FatalError:
                if (!connection.finished) {
                    send_response(connection, error_response(item.error));
                    finish_connection(connection);
                }
                break;
            case InboxItem::Kind::EndOfStream:
                finish_connection(connection);
                break;
        }
    }
}

Response Server::dispatch(Connection& connection, const Request& request) {
    if (request.type == RequestType::Open) {
        if (connection.has_session)
            return error_response("session already open (CLOSE it first)");
        try {
            Response response = sessions_.open(request.target);
            connection.session_id = response.session_id;
            connection.has_session = true;
            return response;
        } catch (const std::exception& open_error) {
            return error_response(open_error.what());
        }
    }
    // METRICS is session-free by design: scrape clients connect, ask, and
    // leave without ever opening a session.
    if (request.type == RequestType::Metrics) return metrics_response(*metrics_);
    if (!connection.has_session) return error_response("no open session");
    Response response = sessions_.handle(connection.session_id, request);
    if (response.type == ResponseType::Closed) connection.has_session = false;
    return response;
}

void Server::finish_connection(Connection& connection) {
    if (connection.finished) return;
    connection.finished = true;
    if (connection.has_session) {
        sessions_.disconnect(connection.session_id);
        connection.has_session = false;
    }
    connection.transport->close();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        --open_connections_;
    }
    connections_changed_.notify_all();
}

void Server::send_response(Connection& connection, const Response& response) {
    write_frame(*connection.transport, serialize(response));
    responses_sent_.add(1);
}

}  // namespace adiv::serve
