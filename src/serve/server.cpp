#include "serve/server.hpp"

#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace adiv::serve {

Server::Server(ServerConfig config, MetricsRegistry& metrics)
    : config_(config),
      metrics_(&metrics),
      catalog_(config.allow_model_paths),
      sessions_(catalog_,
                SessionConfig{config.scorer_buffer, config.flight_capacity},
                metrics),
      connections_accepted_(metrics.counter("serve.connections_accepted")),
      frames_rejected_(metrics.counter("serve.frames_rejected")),
      responses_sent_(metrics.counter("serve.responses_sent")),
      queue_depth_(metrics.gauge("serve.queue_depth")),
      stage_recv_us_(metrics.histogram("serve.stage.recv_us")),
      stage_parse_us_(metrics.histogram("serve.stage.parse_us")),
      stage_queue_us_(metrics.histogram("serve.stage.queue_us")),
      stage_score_us_(metrics.histogram("serve.stage.score_us")),
      stage_reply_us_(metrics.histogram("serve.stage.reply_us")),
      stage_total_us_(metrics.histogram("serve.stage.total_us")),
      inbox_block_site_(wait_site("serve.inbox_block")),
      strand_handoff_site_(wait_site("serve.strand_handoff")),
      pool_probe_("serve.pool", global_wait_sites(), global_metrics()),
      pool_(config.jobs, config.queue_capacity) {
    pool_.set_probe(&pool_probe_);
}

Server::~Server() { shutdown(); }

void Server::add_model(const std::string& name,
                       std::shared_ptr<const SequenceDetector> model) {
    catalog_.add(name, std::move(model));
}

bool Server::attach(std::unique_ptr<Transport> transport) {
    require(transport != nullptr, "cannot attach a null transport");
    Connection* connection = nullptr;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            transport->close();
            return false;
        }
        connections_.push_back(std::make_unique<Connection>());
        connection = connections_.back().get();
        connection->transport = std::move(transport);
        ++open_connections_;
    }
    connections_accepted_.add(1);
    connection->reader = std::thread([this, connection] { reader_loop(*connection); });
    return true;
}

void Server::serve(TcpListener& listener, const std::function<bool()>& stop) {
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) return;
        }
        if (stop && stop()) return;
        std::unique_ptr<Transport> transport = listener.accept(/*timeout_ms=*/100);
        if (transport) attach(std::move(transport));
    }
}

void Server::shutdown() {
    std::vector<Connection*> to_drain;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!stopping_) {
            stopping_ = true;
            for (const auto& connection : connections_)
                to_drain.push_back(connection.get());
        }
    }
    // First caller: stop the readers at the next frame boundary. Queued
    // requests keep flowing through the strands and their responses are
    // still written — this is the graceful part of the drain.
    for (Connection* connection : to_drain)
        connection->transport->shutdown_input();
    wait_connections_closed();
    // Join every reader, including those of connections that ended earlier.
    // Guarded by mutex_ so concurrent shutdown() calls do not double-join.
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_)
        if (connection->reader.joinable()) connection->reader.join();
}

void Server::wait_connections_closed() {
    std::unique_lock<std::mutex> lock(mutex_);
    connections_changed_.wait(lock, [this] { return open_connections_ == 0; });
}

void Server::reader_loop(Connection& connection) {
    FrameDecoder decoder;
    try {
        char buffer[4096];
        // recv accounting: time spent blocked in read_some accumulates and
        // is attributed to the *next* frame completed — "how long did the
        // bytes of this request take to arrive since the previous one".
        double read_blocked_us = 0.0;
        for (;;) {
            std::size_t n = 0;
            if (profiling_enabled()) {
                const Stopwatch watch;
                n = connection.transport->read_some(buffer, sizeof buffer);
                read_blocked_us += watch.seconds() * 1e6;
            } else {
                n = connection.transport->read_some(buffer, sizeof buffer);
            }
            if (n == 0) break;
            decoder.feed({buffer, n});
            // decoder.next() throws on framing errors (fatal, handled
            // below); parse_request throws on record errors (survivable).
            while (auto payload = decoder.next()) {
                InboxItem item;
                const bool stamp = profiling_enabled();
                if (stamp) {
                    item.frame_t = trace_clock_seconds();
                    item.recv_us = std::exchange(read_blocked_us, 0.0);
                }
                try {
                    item.kind = InboxItem::Kind::Request;
                    if (stamp) {
                        const Stopwatch watch;
                        item.request = parse_request(*payload);
                        item.parse_us = watch.seconds() * 1e6;
                    } else {
                        item.request = parse_request(*payload);
                    }
                } catch (const std::exception& record_error) {
                    frames_rejected_.add(1);
                    item.kind = InboxItem::Kind::RecordError;
                    item.error = record_error.what();
                }
                enqueue(connection, std::move(item));
            }
        }
        if (!decoder.idle()) {
            frames_rejected_.add(1);
            InboxItem item;
            item.kind = InboxItem::Kind::FatalError;
            item.error = "connection closed mid-frame";
            enqueue(connection, std::move(item));
        }
    } catch (const std::exception& fatal) {
        frames_rejected_.add(1);
        InboxItem item;
        item.kind = InboxItem::Kind::FatalError;
        item.error = fatal.what();
        enqueue(connection, std::move(item));
    }
    InboxItem eof;
    eof.kind = InboxItem::Kind::EndOfStream;
    enqueue(connection, std::move(eof));
}

void Server::enqueue(Connection& connection, InboxItem item) {
    bool schedule = false;
    const bool stamp = item.frame_t > 0.0 && profiling_enabled();
    {
        std::unique_lock<std::mutex> lock(connection.mutex);
        // Backpressure: requests wait for inbox space; error/EOF items always
        // enter, so a connection can always reach its end state.
        if (item.kind == InboxItem::Kind::Request &&
            config_.queue_capacity != 0) {
            const auto space = [&] {
                return connection.inbox.size() < config_.queue_capacity;
            };
            if (stamp && !space()) {
                const Stopwatch watch;
                connection.inbox_space.wait(lock, space);
                inbox_block_site_.record_wait_us(watch.seconds() * 1e6);
            } else {
                connection.inbox_space.wait(lock, space);
                if (stamp) inbox_block_site_.record_acquire();
            }
        }
        if (stamp) item.enqueued_t = trace_clock_seconds();
        connection.inbox.push_back(std::move(item));
        if (!connection.strand_scheduled) {
            connection.strand_scheduled = true;
            if (stamp) connection.strand_submit_t = trace_clock_seconds();
            schedule = true;
        }
    }
    if (schedule) {
        // May block on the bounded pool queue — the cross-connection
        // backpressure point. Reader threads are the only callers.
        pool_.submit([this, &connection] { run_strand(connection); });
        queue_depth_.set(static_cast<double>(pool_.queue_depth()));
    }
}

void Server::run_strand(Connection& connection) {
    bool first = true;
    for (;;) {
        InboxItem item;
        {
            const std::lock_guard<std::mutex> lock(connection.mutex);
            if (first) {
                // Attribute the submit -> execution handoff once per strand
                // wakeup; only stamped (profiled) enqueues set the mark.
                first = false;
                const double submit_t =
                    std::exchange(connection.strand_submit_t, 0.0);
                if (submit_t > 0.0 && profiling_enabled())
                    strand_handoff_site_.record_wait_us(
                        (trace_clock_seconds() - submit_t) * 1e6);
            }
            if (connection.inbox.empty()) {
                connection.strand_scheduled = false;
                return;
            }
            item = std::move(connection.inbox.front());
            connection.inbox.pop_front();
        }
        connection.inbox_space.notify_one();
        switch (item.kind) {
            case InboxItem::Kind::Request:
                if (!connection.finished) {
                    const bool stamp = item.frame_t > 0.0 && profiling_enabled();
                    if (!stamp) {
                        send_response(connection,
                                      dispatch(connection, item.request));
                        break;
                    }
                    StageStamps stamps;
                    stamps.recv_us = item.recv_us;
                    stamps.parse_us = item.parse_us;
                    stamps.queue_us =
                        (trace_clock_seconds() - item.enqueued_t) * 1e6;
                    const Stopwatch score_watch;
                    const Response response = dispatch(connection, item.request);
                    stamps.score_us = score_watch.seconds() * 1e6;
                    const Stopwatch reply_watch;
                    send_response(connection, response);
                    stamps.reply_us = reply_watch.seconds() * 1e6;
                    // total = frame completion -> reply written, plus the
                    // recv time that preceded the frame. Every stage is a
                    // disjoint sub-interval, so stage_sum_us() <= total_us;
                    // the remainder is handoff time, visible at wait sites.
                    stamps.total_us =
                        (trace_clock_seconds() - item.frame_t) * 1e6 +
                        stamps.recv_us;
                    record_stages(connection, item.request, response, stamps);
                }
                break;
            case InboxItem::Kind::RecordError:
                if (!connection.finished)
                    send_response(connection, error_response(item.error));
                break;
            case InboxItem::Kind::FatalError:
                if (!connection.finished) {
                    send_response(connection, error_response(item.error));
                    finish_connection(connection);
                }
                break;
            case InboxItem::Kind::EndOfStream:
                finish_connection(connection);
                break;
        }
    }
}

Response Server::dispatch(Connection& connection, const Request& request) {
    if (request.type == RequestType::Open) {
        if (connection.has_session)
            return error_response("session already open (CLOSE it first)");
        try {
            Response response = sessions_.open(request.target);
            connection.session_id = response.session_id;
            connection.has_session = true;
            return response;
        } catch (const std::exception& open_error) {
            return error_response(open_error.what());
        }
    }
    // METRICS is session-free by design: scrape clients connect, ask, and
    // leave without ever opening a session.
    if (request.type == RequestType::Metrics) return metrics_response(*metrics_);
    if (!connection.has_session) return error_response("no open session");
    Response response = sessions_.handle(connection.session_id, request);
    if (response.type == ResponseType::Closed) connection.has_session = false;
    return response;
}

void Server::finish_connection(Connection& connection) {
    if (connection.finished) return;
    connection.finished = true;
    if (connection.has_session) {
        sessions_.disconnect(connection.session_id);
        connection.has_session = false;
    }
    connection.transport->close();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        --open_connections_;
    }
    connections_changed_.notify_all();
}

void Server::send_response(Connection& connection, const Response& response) {
    write_frame(*connection.transport, serialize(response));
    responses_sent_.add(1);
}

namespace {
std::string_view verb_of(RequestType type) noexcept {
    switch (type) {
        case RequestType::Open: return "OPEN";
        case RequestType::Push: return "PUSH";
        case RequestType::Stats: return "STATS";
        case RequestType::Metrics: return "METRICS";
        case RequestType::Drain: return "DRAIN";
        case RequestType::Dump: return "DUMP";
        case RequestType::Close: return "CLOSE";
    }
    return "?";
}
}  // namespace

void Server::record_stages(const Connection& connection, const Request& request,
                           const Response& response,
                           const StageStamps& stamps) {
    stage_recv_us_.record(stamps.recv_us);
    stage_parse_us_.record(stamps.parse_us);
    stage_queue_us_.record(stamps.queue_us);
    stage_score_us_.record(stamps.score_us);
    stage_reply_us_.record(stamps.reply_us);
    stage_total_us_.record(stamps.total_us);
    const bool ok = response.type != ResponseType::Error;
    if (connection.has_session) {
        FlightRecord record;
        record.set_verb(verb_of(request.type));
        record.set_outcome(ok ? "ok" : "err");
        record.events = static_cast<std::uint32_t>(request.events.size());
        record.scores = static_cast<std::uint32_t>(response.scores.size());
        record.recv_us = static_cast<float>(stamps.recv_us);
        record.parse_us = static_cast<float>(stamps.parse_us);
        record.queue_us = static_cast<float>(stamps.queue_us);
        record.score_us = static_cast<float>(stamps.score_us);
        record.reply_us = static_cast<float>(stamps.reply_us);
        record.total_us = static_cast<float>(stamps.total_us);
        sessions_.record_flight(connection.session_id, record);
    }
    if (request.type != RequestType::Push) return;
    // The sampled per-event stream: deterministic 1-in-N by PUSH arrival
    // order, so two runs of the same load sample the same fraction.
    const std::uint64_t seq = push_seq_.fetch_add(1, std::memory_order_relaxed);
    if (config_.profile_sample_every == 0 ||
        seq % config_.profile_sample_every != 0)
        return;
    const std::shared_ptr<TraceSink> sink = global_trace_sink();
    if (!sink || !sink->enabled()) return;
    JsonWriter w;
    w.begin_object();
    w.key("type").value("event_stage");
    w.key("seq").value(seq);
    w.key("verb").value(verb_of(request.type));
    w.key("session").value(connection.session_id);
    w.key("events").value(static_cast<std::uint64_t>(request.events.size()));
    w.key("scores").value(static_cast<std::uint64_t>(response.scores.size()));
    w.key("outcome").value(ok ? "ok" : "err");
    w.key("recv_us").value(stamps.recv_us);
    w.key("parse_us").value(stamps.parse_us);
    w.key("queue_us").value(stamps.queue_us);
    w.key("score_us").value(stamps.score_us);
    w.key("reply_us").value(stamps.reply_us);
    w.key("total_us").value(stamps.total_us);
    w.end_object();
    sink->write_line(w.str());
}

}  // namespace adiv::serve
