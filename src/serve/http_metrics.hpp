// HTTP/1.0 scrape endpoint for the detection server's metrics registry.
//
// Prometheus-style collectors speak HTTP, not the adiv frame protocol, so
// the daemon can expose the same OpenMetrics exposition the METRICS verb
// returns on a second, plain-HTTP port:
//
//   GET /metrics HTTP/1.0        -> 200, Content-Type: application/
//                                   openmetrics-text; version=1.0.0
//   GET <anything else>          -> 404
//   non-GET method               -> 405
//   malformed request line       -> 400
//
// Every response carries Content-Length and `Connection: close`; the
// listener serves one request per connection and closes it — the simplest
// protocol that every scraper understands, with no keep-alive state to get
// wrong.
//
// The response builder is a pure function over the request head, so the
// whole HTTP surface is unit-testable without sockets; HttpMetricsListener
// is a thin accept loop (one background thread, one short-lived handler
// thread per connection) over the same function.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/transport.hpp"

namespace adiv::serve {

/// Builds the full HTTP response (status line, headers, body) for one
/// request head. `request_head` is everything up to the end of the header
/// block; only the request line is examined.
[[nodiscard]] std::string http_metrics_response(std::string_view request_head,
                                                const MetricsRegistry& metrics);

/// Reads one HTTP request from the transport, writes the response, and
/// returns it (for tests / logging). Does not close the transport.
std::string serve_one_http_request(Transport& transport,
                                   const MetricsRegistry& metrics);

/// Background accept loop over a TcpListener: each accepted connection gets
/// one request served and is closed. Construction binds the port (0 =
/// ephemeral); the destructor stops the loop and joins.
class HttpMetricsListener {
public:
    explicit HttpMetricsListener(std::uint16_t port,
                                 MetricsRegistry& metrics = global_metrics());

    HttpMetricsListener(const HttpMetricsListener&) = delete;
    HttpMetricsListener& operator=(const HttpMetricsListener&) = delete;

    /// Calls stop().
    ~HttpMetricsListener();

    /// The bound port (the ephemeral one when constructed with 0).
    [[nodiscard]] std::uint16_t port() const noexcept;

    /// Stops accepting, joins the accept loop and every handler. Idempotent.
    void stop();

private:
    void accept_loop();

    MetricsRegistry* metrics_;
    TcpListener listener_;
    std::atomic<bool> stopping_{false};
    std::mutex mutex_;  // guards handlers_
    std::vector<std::thread> handlers_;
    std::mutex stop_mutex_;  // serializes stop() callers across threads
    bool stopped_ = false;
    std::thread accept_thread_;
};

}  // namespace adiv::serve
