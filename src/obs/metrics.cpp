#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace adiv {

namespace {

void atomic_fetch_min(std::atomic<double>& target, double value) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (value < current &&
           !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
}

void atomic_fetch_max(std::atomic<double>& target, double value) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
}

}  // namespace

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), buckets_(bounds_.size() + 1) {
    require(!bounds_.empty(), "histogram needs at least one bucket bound");
    require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
            "histogram bucket bounds must be strictly ascending");
}

std::vector<double> Histogram::latency_buckets_us() {
    return {1,     2,     5,     10,    20,    50,    100,   200,   500,
            1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5,
            1e6};
}

void Histogram::record(double value) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
        // First sample seeds min/max; racing recorders converge via the
        // CAS loops below.
        min_.store(value, std::memory_order_relaxed);
        max_.store(value, std::memory_order_relaxed);
    }
    atomic_fetch_min(min_, value);
    atomic_fetch_max(max_, value);
}

double Histogram::percentile(double q) const {
    require(q >= 0.0 && q <= 1.0, "percentile rank must be in [0, 1]");
    const std::uint64_t total = count();
    if (total == 0) return 0.0;

    const double min = min_.load(std::memory_order_relaxed);
    const double max = max_.load(std::memory_order_relaxed);
    const double rank = q * static_cast<double>(total);

    double cumulative = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const auto in_bucket =
            static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
        if (in_bucket == 0.0) continue;
        if (cumulative + in_bucket >= rank) {
            const double lower = i == 0 ? 0.0 : bounds_[i - 1];
            const double upper = i < bounds_.size() ? bounds_[i] : max;
            const double fraction =
                std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
            const double estimate = lower + (upper - lower) * fraction;
            return std::clamp(estimate, min, max);
        }
        cumulative += in_bucket;
    }
    return max;  // q == 1 or counter races; the top sample is the answer
}

HistogramSummary Histogram::summary() const {
    HistogramSummary s;
    s.count = count();
    if (s.count == 0) return s;
    s.sum = sum_.load(std::memory_order_relaxed);
    s.mean = s.sum / static_cast<double>(s.count);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.p50 = percentile(0.50);
    s.p95 = percentile(0.95);
    s.p99 = percentile(0.99);
    return s;
}

void Histogram::reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (const auto& [name, counter] : counters_)
        snap.counters.emplace_back(name, counter->value());
    for (const auto& [name, gauge] : gauges_)
        snap.gauges.emplace_back(name, gauge->value());
    for (const auto& [name, histogram] : histograms_)
        snap.histograms.emplace_back(name, histogram->summary());
    return snap;
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) counter->reset();
    for (auto& [name, gauge] : gauges_) gauge->reset();
    for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& global_metrics() {
    static MetricsRegistry registry;
    return registry;
}

std::string render_metrics_table(const MetricsRegistry& registry) {
    const MetricsRegistry::Snapshot snap = registry.snapshot();
    std::string out;
    if (!snap.counters.empty()) {
        TextTable table;
        table.header({"counter", "value"});
        for (const auto& [name, value] : snap.counters) table.add(name, value);
        out += table.render();
    }
    if (!snap.gauges.empty()) {
        if (!out.empty()) out += '\n';
        TextTable table;
        table.header({"gauge", "value"});
        for (const auto& [name, value] : snap.gauges) table.add(name, fixed(value, 6));
        out += table.render();
    }
    if (!snap.histograms.empty()) {
        if (!out.empty()) out += '\n';
        TextTable table;
        table.header({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
        for (const auto& [name, s] : snap.histograms)
            table.add(name, s.count, fixed(s.mean, 3), fixed(s.p50, 3),
                      fixed(s.p95, 3), fixed(s.p99, 3), fixed(s.max, 3));
        out += table.render();
    }
    if (out.empty()) out = "(no metrics recorded)\n";
    return out;
}

std::string metrics_to_json(const MetricsRegistry& registry) {
    const MetricsRegistry::Snapshot snap = registry.snapshot();
    JsonWriter w;
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, value] : snap.counters) w.key(name).value(value);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, value] : snap.gauges) w.key(name).value(value);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, s] : snap.histograms) {
        w.key(name).begin_object();
        w.key("count").value(s.count);
        w.key("sum").value(s.sum);
        w.key("mean").value(s.mean);
        w.key("min").value(s.min);
        w.key("max").value(s.max);
        w.key("p50").value(s.p50);
        w.key("p95").value(s.p95);
        w.key("p99").value(s.p99);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
}

}  // namespace adiv
