// Structured trace events: RAII spans streamed as JSON-lines.
//
// A TraceSpan brackets a unit of work. On construction it emits a
// `span_begin` line, on destruction a `span_end` line carrying the wall-time
// duration (measured with util/Stopwatch) and any key=value attributes
// attached in between. Nesting depth is tracked per thread, so the flat
// line stream reconstructs the call tree:
//
//   {"type":"span_begin","name":"experiment.map","depth":0,"t":0.001}
//   {"type":"span_begin","name":"experiment.train","depth":1,"t":0.002}
//   {"type":"span_end","name":"experiment.train","depth":1,...,"dur_s":0.41}
//   ...
//
// Lines go to a pluggable TraceSink. The process-global sink defaults to a
// null sink; when it is null, spans skip all formatting, so instrumentation
// left in hot paths costs two thread-local increments and a clock read.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stopwatch.hpp"

namespace adiv {

/// Destination for JSON-lines trace output. Implementations must be safe to
/// call from multiple threads.
class TraceSink {
public:
    virtual ~TraceSink() = default;

    /// Writes one line (no trailing newline in `line`).
    virtual void write_line(const std::string& line) = 0;

    /// False when writes are discarded — producers skip formatting entirely.
    [[nodiscard]] virtual bool enabled() const noexcept { return true; }

    virtual void flush() {}
};

/// Discards everything; the default global sink.
class NullTraceSink final : public TraceSink {
public:
    void write_line(const std::string&) override {}
    [[nodiscard]] bool enabled() const noexcept override { return false; }
};

/// Writes to a caller-owned ostream (which must outlive the sink).
class StreamTraceSink final : public TraceSink {
public:
    explicit StreamTraceSink(std::ostream& out) : out_(&out) {}
    void write_line(const std::string& line) override;
    void flush() override;

private:
    std::mutex mutex_;
    std::ostream* out_;
};

/// Writes to stderr (line-buffered via fprintf, safe across processes).
class StderrTraceSink final : public TraceSink {
public:
    void write_line(const std::string& line) override;
};

/// Owns an output file. Throws DataError when the file cannot be opened.
class FileTraceSink final : public TraceSink {
public:
    explicit FileTraceSink(const std::string& path);
    void write_line(const std::string& line) override;
    void flush() override;

private:
    std::mutex mutex_;
    std::ofstream out_;
};

/// Builds a sink from a CLI spec: "" or "null" -> null sink, "-" -> stderr,
/// anything else -> file at that path.
std::shared_ptr<TraceSink> open_trace_sink(const std::string& spec);

/// Global sink used by spans constructed without an explicit sink. Passing
/// nullptr restores the null sink. Returns the previous sink.
std::shared_ptr<TraceSink> set_global_trace_sink(std::shared_ptr<TraceSink> sink);
std::shared_ptr<TraceSink> global_trace_sink();

/// Seconds since the first call in this process; the spans' shared "t" axis.
double trace_clock_seconds();

/// Current per-thread span nesting depth (0 outside any span).
int current_trace_depth() noexcept;

/// RAII span; see file comment. Not copyable or movable — bind it to a scope.
class TraceSpan {
public:
    explicit TraceSpan(std::string_view name);
    TraceSpan(std::shared_ptr<TraceSink> sink, std::string_view name);
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;
    ~TraceSpan();

    /// Attaches a key=value attribute, emitted with the span_end line.
    TraceSpan& attr(std::string_view key, std::string_view value);
    TraceSpan& attr(std::string_view key, const char* value) {
        return attr(key, std::string_view(value));
    }
    TraceSpan& attr(std::string_view key, const std::string& value) {
        return attr(key, std::string_view(value));
    }
    TraceSpan& attr(std::string_view key, std::uint64_t value);
    TraceSpan& attr(std::string_view key, std::int64_t value);
    TraceSpan& attr(std::string_view key, int value) {
        return attr(key, static_cast<std::int64_t>(value));
    }
    TraceSpan& attr(std::string_view key, double value);
    TraceSpan& attr(std::string_view key, bool value);

    /// The nesting depth this span was opened at.
    [[nodiscard]] int depth() const noexcept { return depth_; }

    /// Wall time since the span opened, in seconds.
    [[nodiscard]] double elapsed_seconds() const noexcept { return watch_.seconds(); }

private:
    void open(std::string_view name);

    std::shared_ptr<TraceSink> sink_;
    std::string name_;
    // Attribute values pre-rendered as JSON tokens, so heterogenous types
    // share one vector.
    std::vector<std::pair<std::string, std::string>> attrs_;
    Stopwatch watch_;
    double start_t_ = 0.0;
    int depth_ = 0;
    bool emit_ = false;
};

}  // namespace adiv
