#include "obs/sampler.hpp"

#include <utility>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace adiv {

TelemetrySampler::TelemetrySampler(MetricsRegistry& registry,
                                   std::shared_ptr<TraceSink> sink,
                                   TelemetrySamplerConfig config)
    : registry_(&registry), sink_(std::move(sink)), config_(config) {
    require(sink_ != nullptr, "sampler needs a sink");
    require(config_.interval.count() > 0, "sampler interval must be positive");
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    // stopping_ covers the window where stop() has joined the thread but
    // not yet flipped stopped_: restarting there would leak an unjoined
    // thread behind the in-flight shutdown.
    if (thread_.joinable() || stopping_ || stopped_) return;
    thread_ = std::thread([this] { run(); });
}

void TelemetrySampler::stop() {
    // Serialize the whole shutdown (see stop_mutex_ in the header): the
    // final sample must be taken *after* the caller's quiesce point — e.g.
    // after Server::shutdown() drained its sessions — and a second stop()
    // caller must not return before that sample exists.
    const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    {
        const std::lock_guard<std::mutex> lock(wake_mutex_);
        if (stopped_) return;
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable()) thread_.join();
    // The shutdown flush: whatever accumulated since the last tick still
    // reaches the series, even if the sampler never got a full interval.
    sample_once();
    sink_->flush();
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stopped_ = true;
}

void TelemetrySampler::run() {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    for (;;) {
        if (wake_.wait_for(lock, config_.interval, [this] { return stopping_; }))
            return;  // stop() takes the final sample after the join
        lock.unlock();
        sample_once();
        lock.lock();
    }
}

void TelemetrySampler::sample_once() {
    const MetricsRegistry::Snapshot snap = registry_->snapshot();
    const std::string line = render_sample_line(snap);
    if (sink_->enabled()) sink_->write_line(line);
}

std::uint64_t TelemetrySampler::samples_written() const noexcept {
    // seq_ is only advanced under mutex_, but a relaxed read suffices for
    // reporting; callers wanting an exact figure call after stop().
    return seq_;
}

std::string TelemetrySampler::timestamp() const {
    return config_.clock ? iso8601_utc(config_.clock()) : now_iso8601();
}

std::string TelemetrySampler::render_sample_line(
    const MetricsRegistry::Snapshot& snap) {
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.begin_object();
    w.key("type").value("metrics_sample");
    w.key("seq").value(seq_++);
    w.key("timestamp").value(timestamp());
    w.key("counters").begin_object();
    for (const auto& [name, total] : snap.counters) {
        std::uint64_t& baseline = counter_baseline_[name];
        // Counters are monotone, but a registry reset() between ticks moves
        // them backwards; report the restart as a zero delta, not underflow.
        const std::uint64_t delta = total >= baseline ? total - baseline : 0;
        baseline = total;
        w.key(name).begin_object();
        w.key("total").value(total);
        w.key("delta").value(delta);
        w.end_object();
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, value] : snap.gauges) w.key(name).value(value);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, s] : snap.histograms) {
        std::uint64_t& baseline = histogram_baseline_[name];
        const std::uint64_t delta = s.count >= baseline ? s.count - baseline : 0;
        baseline = s.count;
        w.key(name).begin_object();
        w.key("count").value(s.count);
        w.key("delta").value(delta);
        w.key("mean").value(s.mean);
        w.key("p50").value(s.p50);
        w.key("p95").value(s.p95);
        w.key("p99").value(s.p99);
        w.key("max").value(s.max);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
}

}  // namespace adiv
