// ObsSession: the one-liner that wires observability into a CLI program.
//
//   CliParser cli(...);
//   add_observability_options(cli);        // registers --metrics / --trace
//   ...
//   RunManifest manifest = make_manifest("adiv_score");
//   manifest.detector = detector->name();
//   ObsSession obs(cli, std::move(manifest));
//   ... instrumented work ...
//   // destructor: final metrics dump, sink restored
//
// While alive, the session installs the requested trace sink as the global
// sink (first line: the run manifest) and, on destruction or an explicit
// dump_metrics() call, renders the global metrics registry as a human table
// (stdout) and machine JSON (the --metrics file, or stdout for "-").
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/manifest.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace adiv {

/// Registers the shared observability flags on a parser:
///   --metrics PATH            final metrics dump; "-" = stdout (table + JSON)
///   --trace PATH              JSON-lines span trace; "-" = stderr,
///                             "null" = discard
///   --metrics-interval MS     periodic registry snapshots every MS
///                             milliseconds (0 = off)
///   --metrics-samples PATH    snapshot destination; defaults to
///                             "<--metrics path>.samples.jsonl"
void add_observability_options(CliParser& cli);

class ObsSession {
public:
    /// Reads --metrics / --trace from a parsed CLI.
    ObsSession(const CliParser& cli, RunManifest manifest);

    /// Direct-spec constructor for callers without a CliParser.
    ObsSession(const std::string& metrics_spec, const std::string& trace_spec,
               RunManifest manifest);

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /// Dumps metrics (if not already dumped) and restores the previous
    /// global trace sink.
    ~ObsSession();

    /// Final metrics dump; idempotent. Human table to stdout, machine JSON
    /// to the --metrics path ("-" = stdout).
    void dump_metrics();

    [[nodiscard]] const RunManifest& manifest() const noexcept { return manifest_; }
    [[nodiscard]] bool tracing() const noexcept;
    [[nodiscard]] bool metrics_requested() const noexcept {
        return !metrics_spec_.empty();
    }
    [[nodiscard]] bool sampling() const noexcept { return sampler_ != nullptr; }

    /// Resolves the snapshot destination for a --metrics-interval run:
    /// an explicit --metrics-samples spec wins; otherwise the series lands
    /// next to the --metrics file as "<path>.samples.jsonl". Throws
    /// InvalidArgument when neither yields a concrete path. Exposed so the
    /// derivation rule is testable without spinning a sampler thread.
    static std::string resolve_samples_spec(const std::string& samples_spec,
                                            const std::string& metrics_spec);

private:
    void install(const std::string& trace_spec);
    void start_sampler(std::int64_t interval_ms,
                       const std::string& samples_spec);

    RunManifest manifest_;
    std::string metrics_spec_;
    std::shared_ptr<TraceSink> sink_;
    std::shared_ptr<TraceSink> previous_sink_;
    std::shared_ptr<TraceSink> samples_sink_;
    std::unique_ptr<TelemetrySampler> sampler_;
    bool installed_ = false;
    bool dumped_ = false;
};

}  // namespace adiv
