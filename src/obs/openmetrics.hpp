// OpenMetrics / Prometheus text exposition for the metrics registry.
//
// The registry names instruments `subsystem.metric` (enforced by the lint
// metric-name rule); OpenMetrics names are `[a-zA-Z_:][a-zA-Z0-9_:]*`, so
// the renderer maps every dot to '_' and prefixes `adiv_`:
//
//   serve.events_pushed   (counter)    ->  adiv_serve_events_pushed_total
//   serve.queue_depth     (gauge)      ->  adiv_serve_queue_depth
//   serve.push_latency_us (histogram)  ->  adiv_serve_push_latency_us
//                                          {quantile="0.5"|"0.95"|"0.99"},
//                                          plus _sum and _count series
//
// Histograms are exposed as OpenMetrics summaries (the registry keeps
// pre-digested percentiles, not cumulative buckets); a zero-sample histogram
// renders every quantile as 0, never NaN. The exposition ends with `# EOF`
// so stock Prometheus accepts it as openmetrics-text 1.0.
//
// parse_openmetrics() is the matching self-check: it re-parses an exposition
// into samples and validates the grammar (TYPE before samples, counter
// `_total` suffixes, finite counter values, terminal `# EOF`). The loadgen
// --scrape probe and the CI obs-smoke step both go through it.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace adiv {

/// Maps a registry instrument name to a valid OpenMetrics metric name:
/// `adiv_` prefix, dots to underscores, anything outside [a-zA-Z0-9_] to '_'.
std::string openmetrics_name(std::string_view name);

/// Formats a sample value: decimal for finite doubles, "+Inf"/"-Inf"/"NaN"
/// for the non-finite values OpenMetrics spells out.
std::string openmetrics_number(double value);

/// Renders the full exposition (TYPE lines, samples, terminal "# EOF\n").
std::string metrics_to_openmetrics(const MetricsRegistry& registry);

/// One parsed sample line: `name{labels} value` (labels verbatim, no braces).
struct OpenMetricsSample {
    std::string name;
    std::string labels;
    double value = 0.0;
};

/// Parsed exposition: samples in document order plus the family -> type map.
struct OpenMetricsDocument {
    std::vector<OpenMetricsSample> samples;
    std::vector<std::pair<std::string, std::string>> types;  // family, type

    /// First sample matching name (and labels, when given).
    [[nodiscard]] std::optional<double> value(
        std::string_view name, std::string_view labels = "") const;

    /// Type declared for a family; empty when undeclared.
    [[nodiscard]] std::string type_of(std::string_view family) const;
};

/// Parses and validates an exposition. Throws DataError on any grammar or
/// consistency violation: malformed names or values, a sample without a
/// preceding TYPE for its family, a counter sample not ending in `_total`,
/// a non-finite or negative counter, or a missing / non-terminal `# EOF`.
OpenMetricsDocument parse_openmetrics(std::string_view text);

}  // namespace adiv
