#include "obs/openmetrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "util/error.hpp"

namespace adiv {

namespace {

bool valid_exposition_name(std::string_view name) {
    if (name.empty()) return false;
    const auto head = static_cast<unsigned char>(name.front());
    if (!(std::isalpha(head) != 0 || name.front() == '_' || name.front() == ':'))
        return false;
    for (const char c : name) {
        const auto u = static_cast<unsigned char>(c);
        if (!(std::isalnum(u) != 0 || c == '_' || c == ':')) return false;
    }
    return true;
}

void append_sample(std::string& out, const std::string& name,
                   std::string_view labels, const std::string& value) {
    out += name;
    if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
    }
    out += ' ';
    out += value;
    out += '\n';
}

void append_quantile(std::string& out, const std::string& name,
                     const char* quantile, double value) {
    append_sample(out, name, std::string("quantile=\"") + quantile + "\"",
                  openmetrics_number(value));
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
    std::string out = "adiv_";
    for (const char c : name) {
        const auto u = static_cast<unsigned char>(c);
        out += (std::isalnum(u) != 0 && std::isupper(u) == 0) || c == '_'
                   ? c
                   : '_';
    }
    return out;
}

std::string openmetrics_number(double value) {
    if (std::isnan(value)) return "NaN";
    if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    return buf;
}

std::string metrics_to_openmetrics(const MetricsRegistry& registry) {
    const MetricsRegistry::Snapshot snap = registry.snapshot();
    std::string out;
    for (const auto& [name, value] : snap.counters) {
        const std::string family = openmetrics_name(name);
        out += "# TYPE " + family + " counter\n";
        append_sample(out, family + "_total", "", std::to_string(value));
    }
    for (const auto& [name, value] : snap.gauges) {
        const std::string family = openmetrics_name(name);
        out += "# TYPE " + family + " gauge\n";
        append_sample(out, family, "", openmetrics_number(value));
    }
    for (const auto& [name, s] : snap.histograms) {
        const std::string family = openmetrics_name(name);
        out += "# TYPE " + family + " summary\n";
        // HistogramSummary reports 0 (never NaN) for every field of an
        // empty histogram, so a zero-sample summary renders as all zeros.
        append_quantile(out, family, "0.5", s.p50);
        append_quantile(out, family, "0.95", s.p95);
        append_quantile(out, family, "0.99", s.p99);
        append_sample(out, family + "_sum", "", openmetrics_number(s.sum));
        append_sample(out, family + "_count", "", std::to_string(s.count));
    }
    out += "# EOF\n";
    return out;
}

std::optional<double> OpenMetricsDocument::value(std::string_view name,
                                                 std::string_view labels) const {
    for (const OpenMetricsSample& sample : samples)
        if (sample.name == name && (labels.empty() || sample.labels == labels))
            return sample.value;
    return std::nullopt;
}

std::string OpenMetricsDocument::type_of(std::string_view family) const {
    for (const auto& [name, type] : types)
        if (name == family) return type;
    return {};
}

namespace {

const std::set<std::string>& known_metric_types() {
    static const std::set<std::string> kTypes{
        "counter", "gauge",    "summary",  "histogram",
        "unknown", "untyped",  "info",     "stateset",
        "gaugehistogram"};
    return kTypes;
}

double parse_sample_value(const std::string& token, std::size_t line_no) {
    if (token == "+Inf" || token == "Inf") return HUGE_VAL;
    if (token == "-Inf") return -HUGE_VAL;
    if (token == "NaN") return NAN;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    require_data(end == token.c_str() + token.size() && !token.empty(),
                 "openmetrics line " + std::to_string(line_no) +
                     ": malformed sample value '" + token + "'");
    return value;
}

/// The declared family a sample name belongs to, given the suffix grammar
/// ("" = exact match for gauge / summary-quantile samples).
std::string family_of(const std::string& name,
                      const std::map<std::string, std::string>& types) {
    if (types.count(name) > 0) return name;
    static const char* kSuffixes[] = {"_total", "_sum", "_count", "_created",
                                      "_bucket"};
    for (const char* suffix : kSuffixes) {
        const std::string_view tail(suffix);
        if (name.size() > tail.size() &&
            name.compare(name.size() - tail.size(), tail.size(), tail) == 0) {
            const std::string family = name.substr(0, name.size() - tail.size());
            if (types.count(family) > 0) return family;
        }
    }
    return {};
}

}  // namespace

OpenMetricsDocument parse_openmetrics(std::string_view text) {
    OpenMetricsDocument doc;
    std::map<std::string, std::string> types;
    bool saw_eof = false;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = std::min(text.find('\n', pos), text.size());
        const std::string line(text.substr(pos, nl - pos));
        pos = nl + 1;
        ++line_no;
        const std::string at = "openmetrics line " + std::to_string(line_no);
        require_data(!saw_eof, at + ": content after # EOF");
        if (line.empty()) {
            require_data(pos >= text.size(), at + ": blank line");
            continue;
        }
        if (line[0] == '#') {
            if (line == "# EOF") {
                saw_eof = true;
                continue;
            }
            std::size_t word = line.find(' ', 2);
            const std::string keyword =
                word == std::string::npos ? line.substr(2) : line.substr(2, word - 2);
            if (keyword == "TYPE") {
                require_data(word != std::string::npos, at + ": truncated TYPE");
                const std::size_t name_end = line.find(' ', word + 1);
                require_data(name_end != std::string::npos, at + ": truncated TYPE");
                const std::string family = line.substr(word + 1, name_end - word - 1);
                const std::string type = line.substr(name_end + 1);
                require_data(valid_exposition_name(family),
                             at + ": invalid metric name '" + family + "'");
                require_data(known_metric_types().count(type) > 0,
                             at + ": unknown metric type '" + type + "'");
                require_data(types.emplace(family, type).second,
                             at + ": duplicate TYPE for '" + family + "'");
                doc.types.emplace_back(family, type);
            }
            // HELP / UNIT / arbitrary comments pass through unchecked.
            continue;
        }
        OpenMetricsSample sample;
        std::size_t cut = line.find_first_of("{ ");
        require_data(cut != std::string::npos, at + ": sample without a value");
        sample.name = line.substr(0, cut);
        require_data(valid_exposition_name(sample.name),
                     at + ": invalid metric name '" + sample.name + "'");
        if (line[cut] == '{') {
            const std::size_t close = line.find('}', cut);
            require_data(close != std::string::npos, at + ": unterminated labels");
            sample.labels = line.substr(cut + 1, close - cut - 1);
            cut = close + 1;
            require_data(cut < line.size() && line[cut] == ' ',
                         at + ": missing value after labels");
        }
        const std::string value_token = line.substr(cut + 1);
        require_data(value_token.find(' ') == std::string::npos,
                     at + ": trailing content after sample value");
        sample.value = parse_sample_value(value_token, line_no);
        const std::string family = family_of(sample.name, types);
        require_data(!family.empty(),
                     at + ": sample '" + sample.name + "' has no preceding TYPE");
        if (types[family] == "counter") {
            require_data(sample.name == family + "_total" ||
                             sample.name == family + "_created",
                         at + ": counter sample '" + sample.name +
                             "' must use the _total suffix");
            require_data(std::isfinite(sample.value) && sample.value >= 0.0,
                         at + ": counter value must be finite and non-negative");
        }
        doc.samples.push_back(std::move(sample));
    }
    require_data(saw_eof, "openmetrics exposition is missing the terminal # EOF");
    return doc;
}

}  // namespace adiv
