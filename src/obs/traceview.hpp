// Trace analysis: aggregates a JSON-lines span trace (obs/trace.hpp) into
// per-span-name statistics and per-run critical paths.
//
// The input is the stream a --trace run writes: `manifest` lines opening
// each run, `span_begin`/`span_end` pairs carrying name, depth, and wall
// duration. Aggregation works off the span_end lines alone:
//
//   * Per name: count, total and self time, exact nearest-rank p50/p95/p99
//     over the observed durations (exact, not bucketed — the trace holds
//     every sample, so the tool reproduces percentiles bit-identically from
//     a pinned fixture).
//   * Self time subtracts direct-child durations, reconstructed from the
//     depth column: a span ending at depth d is a child of the next span to
//     end at depth d-1. The reconstruction is exact for single-threaded
//     traces; when several threads interleave spans in one stream the
//     attribution is approximate (clamped at >= 0), which the tool reports
//     rather than hides.
//   * Per run (manifest line to manifest line): total root-span time and the
//     critical path — the chain built by following the longest direct child
//     from the longest root span down.
//
// `adiv_traceview` is a thin CLI over these functions; tests pin both
// renderings against fixture traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace adiv {

/// Aggregate statistics for one span name. Durations are seconds.
struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    double total_s = 0.0;
    double self_s = 0.0;  ///< total minus direct-child time, clamped >= 0
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
    double max_s = 0.0;
};

/// One link of a run's critical path, root first.
struct CriticalPathNode {
    std::string name;
    double dur_s = 0.0;
    double self_s = 0.0;
};

/// One run: a manifest line and the spans that followed it.
struct RunSummary {
    std::string tool;
    std::string detector;
    std::string timestamp;
    std::uint64_t spans = 0;       ///< span_end lines attributed to this run
    double root_total_s = 0.0;     ///< summed depth-0 span durations
    std::vector<CriticalPathNode> critical_path;
};

struct TraceAnalysis {
    std::vector<SpanStats> spans;   ///< sorted by name
    std::vector<RunSummary> runs;   ///< document order; a headerless trace
                                    ///< yields one run with empty manifest
                                    ///< fields once spans appear
    std::uint64_t lines = 0;        ///< input lines seen
    std::uint64_t skipped = 0;      ///< lines that were not well-formed
                                    ///< manifest/span_end records
};

/// Streams the trace and aggregates it. Unparseable lines are counted in
/// `skipped`, never fatal — a live trace may end mid-line.
TraceAnalysis analyze_trace(std::istream& in);

// --- contention view (adiv_traceview --contention) --------------------------
//
// Aggregates the profiling layer's two line types (obs/profile.hpp and the
// serve stage stamps): `event_stage` lines — the sampled per-event pipeline
// stamps — into a stage-breakdown table with exact nearest-rank percentiles,
// and `wait_site` lines into a top-wait-sites attribution report naming the
// dominant (most total wait among contention-kind) site.

/// One pipeline stage aggregated over the sampled events. Durations are
/// microseconds; percentiles are exact over the sampled values.
struct StageBreakdown {
    std::string stage;  ///< recv | parse | queue | score | reply | total
    std::uint64_t count = 0;
    double total_us = 0.0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
};

/// One wait site aggregated across its wait_site lines (a multi-point sweep
/// emits one line per point: counts sum, percentiles take the worst point).
struct ContentionSite {
    std::string site;
    std::string kind;  ///< "contention" or "idle"
    std::uint64_t acquires = 0;
    std::uint64_t contended = 0;
    double wait_us_total = 0.0;
    double wait_us_mean = 0.0;  ///< wait_us_total / contended
    double wait_us_p95 = 0.0;
    double wait_us_max = 0.0;
};

struct ContentionAnalysis {
    std::vector<StageBreakdown> stages;  ///< pipeline order, present stages only
    std::vector<ContentionSite> sites;   ///< by total wait, descending
    std::string dominant_site;  ///< most-total-wait contention site; empty
                                ///< when nothing contended
    std::uint64_t events = 0;   ///< event_stage lines aggregated
    std::uint64_t lines = 0;    ///< input lines seen
    std::uint64_t skipped = 0;  ///< malformed lines (other types just pass)
};

/// Streams the trace and aggregates its profiling lines. Like
/// analyze_trace: malformed lines are counted, never fatal.
ContentionAnalysis analyze_contention(std::istream& in);

/// Human rendering: stage-breakdown table, wait-site table, and one
/// `dominant wait site: <name>` line.
std::string render_contention(const ContentionAnalysis& analysis);

/// Machine rendering: one JSON document with the same content.
std::string contention_to_json(const ContentionAnalysis& analysis);

/// Human rendering: per-span table (sorted by total time, descending) plus
/// a per-run critical-path section.
std::string render_traceview(const TraceAnalysis& analysis);

/// Machine rendering: one JSON document with the same content, spans sorted
/// by name.
std::string traceview_to_json(const TraceAnalysis& analysis);

}  // namespace adiv
