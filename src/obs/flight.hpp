// Flight recorder: a fixed-size lock-free ring of the last K events.
//
// Each serve session keeps one FlightRecorder; the server appends one
// FlightRecord per handled request (verb, payload sizes, stage stamps,
// outcome). The ring answers the DUMP protocol verb and adiv_serve's
// --dump-on-signal, so a wedged or slow daemon explains its recent past
// without a restart and without having had tracing on.
//
// Concurrency: record() is wait-free for the writer (one CAS plus word
// stores) and never blocks a reader; snapshot() is a seqlock-style read
// that drops slots caught mid-write. All payload traffic goes through
// word-sized atomics, so concurrent record/snapshot is data-race-free by
// construction (TSan-clean), at the price of a torn slot being dropped
// rather than retried — acceptable for a diagnostic ring. Writers claim a
// slot by bumping its version even; a writer that loses the claim race (a
// faster writer lapped the ring onto the same slot) drops its record and
// counts it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace adiv {

/// One recorded event. Fixed-size and trivially copyable so the ring can
/// move it through word atomics; the verb/outcome strings are short
/// NUL-padded tokens, truncated to fit.
struct FlightRecord {
    std::uint64_t seq = 0;  ///< global record index, assigned by record()
    char verb[8] = {};      ///< request verb ("PUSH", "STATS", ...)
    char outcome[8] = {};   ///< "ok" or "err"
    std::uint32_t events = 0;  ///< events carried (PUSH payload size)
    std::uint32_t scores = 0;  ///< scores returned
    float recv_us = 0.0F;
    float parse_us = 0.0F;
    float queue_us = 0.0F;
    float score_us = 0.0F;
    float reply_us = 0.0F;
    float total_us = 0.0F;

    void set_verb(std::string_view text) noexcept { copy_token(verb, text); }
    void set_outcome(std::string_view text) noexcept { copy_token(outcome, text); }
    [[nodiscard]] std::string_view verb_view() const noexcept {
        return token_view(verb);
    }
    [[nodiscard]] std::string_view outcome_view() const noexcept {
        return token_view(outcome);
    }

private:
    static void copy_token(char (&field)[8], std::string_view text) noexcept {
        std::memset(field, 0, sizeof field);
        std::memcpy(field, text.data(),
                    text.size() < sizeof field ? text.size() : sizeof field - 1);
    }
    static std::string_view token_view(const char (&field)[8]) noexcept {
        std::size_t len = 0;
        while (len < sizeof field && field[len] != '\0') ++len;
        return {field, len};
    }
};

static_assert(std::is_trivially_copyable_v<FlightRecord>);
static_assert(sizeof(FlightRecord) % sizeof(std::uint64_t) == 0);

class FlightRecorder {
public:
    /// `capacity` slots (>= 1); the ring keeps the most recent `capacity`
    /// records that did not lose a claim race.
    explicit FlightRecorder(std::size_t capacity = 64);

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Appends a record (its seq field is overwritten with the global
    /// index). Wait-free; drops the record when a concurrent writer holds
    /// the target slot.
    void record(FlightRecord record) noexcept;

    /// The currently readable records, seq-ascending. Slots mid-write are
    /// skipped, so a snapshot taken during traffic may briefly hold fewer
    /// than capacity records.
    [[nodiscard]] std::vector<FlightRecord> snapshot() const;

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Records attempted so far (equals the next seq to be assigned).
    [[nodiscard]] std::uint64_t recorded() const noexcept {
        return next_.load(std::memory_order_relaxed);
    }

    /// Records dropped to a lost claim race.
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }

private:
    static constexpr std::size_t kWords = sizeof(FlightRecord) / sizeof(std::uint64_t);

    struct Slot {
        // Seqlock per slot: even = readable (0 = never written), odd = a
        // writer holds it. Payload moves as relaxed word stores bracketed
        // by the version's acquire/release edges.
        std::atomic<std::uint64_t> version{0};
        std::array<std::atomic<std::uint64_t>, kWords> words{};
    };

    std::size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> next_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/// Deterministic text rendering, one line per record in the given order:
///   seq=3 verb=PUSH outcome=ok events=64 scores=59 recv_us=1.000 ... total_us=9.500
/// The DUMPED response body and --dump-on-signal output; byte-exact for a
/// fixed record list, which the pinned-fixture test relies on.
[[nodiscard]] std::string render_flight_records(
    const std::vector<FlightRecord>& records);

}  // namespace adiv
