// Wait-time accounting for the serve hot path.
//
// A *wait site* is a named place where a thread can block: a contended
// mutex, a full bounded queue, a strand handoff. Each site owns three
// registry instruments —
//
//   <site>.acquires    counter, passes through the site (blocked or not)
//   <site>.contended   counter, passes that actually blocked
//   <site>.wait_us     histogram over the blocked passes' wait times
//
// — so wait-site data rides the existing OpenMetrics / sampler / METRICS
// paths for free. ProfiledMutex drops into a std::mutex's place and times
// contended acquisitions; ProfiledLock does the same for a mutex that must
// stay a bare std::mutex (because a condition_variable waits on it).
// WaitSiteThreadPoolProbe adapts the util/thread_pool probe interface onto
// wait sites, closing the util -> obs layering gap without a dependency.
//
// The zero-overhead-when-off contract: instrumentation is gated twice.
// Compile time: `cmake -DADIV_PROFILE=OFF` makes profiling_enabled() a
// constexpr false, so every `if (profiling_enabled())` branch — and with it
// every clock read, histogram record, and JSONL format — is dead code and a
// ProfiledMutex is exactly a std::mutex. Run time (the default build):
// profiling starts disabled and costs one relaxed atomic load per guarded
// branch until set_profiling_enabled(true) turns it on (adiv_serve and
// adiv_loadgen expose this as --profile).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

#ifndef ADIV_PROFILE
#define ADIV_PROFILE 1
#endif

namespace adiv {

/// True when the build carries profiling instrumentation at all.
constexpr bool profiling_compiled() noexcept { return ADIV_PROFILE != 0; }

#if ADIV_PROFILE
/// Runtime master switch; starts off. Checked with a relaxed load on every
/// instrumented path, so toggling mid-run is safe (individual events may
/// straddle the edge and be half-counted — acceptable for a profiler).
[[nodiscard]] bool profiling_enabled() noexcept;
void set_profiling_enabled(bool on) noexcept;
#else
[[nodiscard]] constexpr bool profiling_enabled() noexcept { return false; }
constexpr void set_profiling_enabled(bool) noexcept {}
#endif

/// Contention sites measure time stolen by other threads (locks, full
/// queues); Idle sites measure time spent waiting for work to exist (a
/// worker parked on an empty queue). Only Contention sites compete for
/// "dominant wait site" — an idle pool is not a bottleneck.
enum class WaitSiteKind { Contention, Idle };

[[nodiscard]] std::string_view to_string(WaitSiteKind kind) noexcept;

/// One named blocking point. Cheap to hold by reference: recording is two
/// relaxed counter bumps plus (when blocked) one histogram record.
class WaitSite {
public:
    WaitSite(std::string name, WaitSiteKind kind, MetricsRegistry& metrics);

    /// An uncontended pass: the thread got through without blocking.
    void record_acquire() noexcept { acquires_.add(1); }

    /// A blocked pass that waited `us` microseconds.
    void record_wait_us(double us) noexcept {
        acquires_.add(1);
        contended_.add(1);
        wait_us_.record(us);
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] WaitSiteKind kind() const noexcept { return kind_; }
    [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_.value(); }
    [[nodiscard]] std::uint64_t contended() const noexcept { return contended_.value(); }
    [[nodiscard]] HistogramSummary wait_summary() const { return wait_us_.summary(); }

private:
    std::string name_;
    WaitSiteKind kind_;
    Counter& acquires_;
    Counter& contended_;
    Histogram& wait_us_;
};

/// Point-in-time digest of one site, the unit of reporting.
struct WaitSiteSummary {
    std::string name;
    WaitSiteKind kind = WaitSiteKind::Contention;
    std::uint64_t acquires = 0;
    std::uint64_t contended = 0;
    double wait_us_total = 0.0;
    double wait_us_mean = 0.0;
    double wait_us_p95 = 0.0;
    double wait_us_max = 0.0;
};

/// Named site store. Like MetricsRegistry: lookup creates on first use,
/// references stay valid for the registry's lifetime, a site asked for
/// twice is the same site (the first caller's kind wins).
class WaitSiteRegistry {
public:
    explicit WaitSiteRegistry(MetricsRegistry& metrics = global_metrics());

    WaitSite& site(const std::string& name,
                   WaitSiteKind kind = WaitSiteKind::Contention);

    /// Name-sorted digests of every registered site.
    [[nodiscard]] std::vector<WaitSiteSummary> summaries() const;

    /// One `{"type":"wait_site",...}` JSON line per site, name order — the
    /// stream adiv_traceview --contention aggregates.
    void write_jsonl(TraceSink& sink) const;

private:
    MetricsRegistry* metrics_;
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<WaitSite>> sites_;
};

/// The process-global site registry (instruments live in global_metrics()).
WaitSiteRegistry& global_wait_sites();

/// Resolve-once idiom for instrumentation points:
///   static WaitSite& site = wait_site("serve.session_table");
WaitSite& wait_site(const std::string& name,
                    WaitSiteKind kind = WaitSiteKind::Contention);

/// The digest with the largest total wait among Contention sites, or nullptr
/// when nothing contended. This is the "dominant wait site" the hot-path
/// bench artifact names.
[[nodiscard]] const WaitSiteSummary* dominant_wait_site(
    const std::vector<WaitSiteSummary>& summaries) noexcept;

/// Render one `{"type":"wait_site",...}` JSON line for a digest.
[[nodiscard]] std::string wait_site_jsonl(const WaitSiteSummary& summary);

/// A std::mutex that attributes contended acquisitions to a wait site.
/// BasicLockable + Lockable, so std::lock_guard / std::unique_lock work
/// unchanged. When profiling is off (either gate) lock() is exactly
/// mutex_.lock().
class ProfiledMutex {
public:
    explicit ProfiledMutex(WaitSite& site) noexcept : site_(&site) {}

    ProfiledMutex(const ProfiledMutex&) = delete;
    ProfiledMutex& operator=(const ProfiledMutex&) = delete;

    void lock() {
        if (!profiling_enabled()) {
            mutex_.lock();
            return;
        }
        if (mutex_.try_lock()) {
            site_->record_acquire();
            return;
        }
        const Stopwatch watch;
        mutex_.lock();
        site_->record_wait_us(watch.seconds() * 1e6);
    }

    bool try_lock() { return mutex_.try_lock(); }

    void unlock() { mutex_.unlock(); }

private:
    std::mutex mutex_;
    WaitSite* site_;
};

/// Scoped lock over a *bare* std::mutex with wait-site attribution — for
/// mutexes that cannot become ProfiledMutex because a condition_variable
/// waits on them.
class ProfiledLock {
public:
    ProfiledLock(std::mutex& mutex, WaitSite& site) : mutex_(&mutex) {
        if (!profiling_enabled()) {
            mutex_->lock();
            return;
        }
        if (mutex_->try_lock()) {
            site.record_acquire();
            return;
        }
        const Stopwatch watch;
        mutex_->lock();
        site.record_wait_us(watch.seconds() * 1e6);
    }

    ~ProfiledLock() { mutex_->unlock(); }

    ProfiledLock(const ProfiledLock&) = delete;
    ProfiledLock& operator=(const ProfiledLock&) = delete;

private:
    std::mutex* mutex_;
};

/// Adapts the thread pool's probe hooks onto wait sites:
///   <prefix>.enqueue_block   Contention — submit() blocked on a full queue
///   <prefix>.dequeue_wait    Idle — a worker parked on an empty queue
///   <prefix>.queue_depth     histogram over depths observed at enqueue
/// Install with pool.set_probe(&probe); the probe must outlive the pool's
/// last submit.
class WaitSiteThreadPoolProbe final : public ThreadPoolProbe {
public:
    explicit WaitSiteThreadPoolProbe(
        const std::string& prefix = "pool",
        WaitSiteRegistry& sites = global_wait_sites(),
        MetricsRegistry& metrics = global_metrics());

    void enqueue_blocked_us(double us) override;
    void dequeue_waited_us(double us) override;
    void queue_depth_sampled(std::size_t depth) override;

private:
    WaitSite& enqueue_block_;
    WaitSite& dequeue_wait_;
    Histogram& queue_depth_;
};

/// Per-event pipeline stage durations (microseconds), stamped along the
/// serve hot path. Stages are disjoint steady-clock intervals inside the
/// event's end-to-end window, so stage_sum_us() <= total_us always holds
/// (the remainder is handoff time visible at the wait sites).
struct StageStamps {
    double recv_us = 0.0;   ///< reader blocked in read_some before the frame
    double parse_us = 0.0;  ///< frame payload -> Request
    double queue_us = 0.0;  ///< inbox enqueue -> strand pickup
    double score_us = 0.0;  ///< request dispatch (scoring, for PUSH)
    double reply_us = 0.0;  ///< response serialize + write
    double total_us = 0.0;  ///< recv start -> reply written

    [[nodiscard]] double stage_sum_us() const noexcept {
        return recv_us + parse_us + queue_us + score_us + reply_us;
    }
};

}  // namespace adiv
