#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace adiv {

namespace {

thread_local int t_span_depth = 0;

std::mutex& global_sink_mutex() {
    static std::mutex m;
    return m;
}

std::shared_ptr<TraceSink>& global_sink_slot() {
    static std::shared_ptr<TraceSink> sink = std::make_shared<NullTraceSink>();
    return sink;
}

}  // namespace

void StreamTraceSink::write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    *out_ << line << '\n';
}

void StreamTraceSink::flush() {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_->flush();
}

void StderrTraceSink::write_line(const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
}

FileTraceSink::FileTraceSink(const std::string& path) : out_(path) {
    require_data(out_.good(), "cannot open trace output file '" + path + "'");
}

void FileTraceSink::write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << '\n';
}

void FileTraceSink::flush() {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_.flush();
}

std::shared_ptr<TraceSink> open_trace_sink(const std::string& spec) {
    if (spec.empty() || spec == "null") return std::make_shared<NullTraceSink>();
    if (spec == "-") return std::make_shared<StderrTraceSink>();
    return std::make_shared<FileTraceSink>(spec);
}

std::shared_ptr<TraceSink> set_global_trace_sink(std::shared_ptr<TraceSink> sink) {
    if (!sink) sink = std::make_shared<NullTraceSink>();
    const std::lock_guard<std::mutex> lock(global_sink_mutex());
    std::swap(global_sink_slot(), sink);
    return sink;  // the previous sink
}

std::shared_ptr<TraceSink> global_trace_sink() {
    const std::lock_guard<std::mutex> lock(global_sink_mutex());
    return global_sink_slot();
}

double trace_clock_seconds() {
    static const Stopwatch epoch;
    return epoch.seconds();
}

int current_trace_depth() noexcept { return t_span_depth; }

TraceSpan::TraceSpan(std::string_view name) { open(name); }

TraceSpan::TraceSpan(std::shared_ptr<TraceSink> sink, std::string_view name)
    : sink_(std::move(sink)) {
    open(name);
}

void TraceSpan::open(std::string_view name) {
    depth_ = t_span_depth++;
    if (!sink_) sink_ = global_trace_sink();
    emit_ = sink_ && sink_->enabled();
    if (!emit_) return;
    name_ = name;
    start_t_ = trace_clock_seconds();
    JsonWriter w;
    w.begin_object();
    w.key("type").value("span_begin");
    w.key("name").value(name_);
    w.key("depth").value(static_cast<std::int64_t>(depth_));
    w.key("t").value(start_t_);
    w.end_object();
    sink_->write_line(w.str());
    watch_.restart();  // exclude our own formatting from the measured span
}

TraceSpan::~TraceSpan() {
    --t_span_depth;
    if (!emit_) return;
    JsonWriter w;
    w.begin_object();
    w.key("type").value("span_end");
    w.key("name").value(name_);
    w.key("depth").value(static_cast<std::int64_t>(depth_));
    w.key("t").value(trace_clock_seconds());
    w.key("dur_s").value(watch_.seconds());
    if (!attrs_.empty()) {
        w.key("attrs").begin_object();
        for (const auto& [key, token] : attrs_) w.key(key).raw(token);
        w.end_object();
    }
    w.end_object();
    sink_->write_line(w.str());
}

TraceSpan& TraceSpan::attr(std::string_view key, std::string_view value) {
    if (emit_) attrs_.emplace_back(key, '"' + json_escape(value) + '"');
    return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, std::uint64_t value) {
    if (emit_) attrs_.emplace_back(key, std::to_string(value));
    return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, std::int64_t value) {
    if (emit_) attrs_.emplace_back(key, std::to_string(value));
    return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, double value) {
    if (emit_) attrs_.emplace_back(key, json_number(value));
    return *this;
}

TraceSpan& TraceSpan::attr(std::string_view key, bool value) {
    if (emit_) attrs_.emplace_back(key, value ? "true" : "false");
    return *this;
}

}  // namespace adiv
