// Run manifests: the reproducibility record emitted at the head of every
// trace stream and metrics dump.
//
// A manifest pins everything needed to regenerate a run's outputs: the
// corpus parameters and seed, the detector under test, the AS/DW sweep
// ranges, the build type, and a wall-clock timestamp. It is emitted as the
// first JSON line of a trace file (so any CSV or map written alongside is
// reproducible from its manifest alone) and round-trips through the same
// line-oriented text serializer the model files use, for archival next to
// persisted models.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace adiv {

struct RunManifest {
    std::string tool;      ///< program that produced the run ("adiv_score", ...)
    std::string detector;  ///< detector name, or "" when not detector-specific
    std::string build_type;  ///< CMake build type baked into the library
    std::string timestamp;   ///< ISO-8601 UTC creation time

    // Corpus parameters (mirrors datagen/CorpusSpec; duplicated here so the
    // observability layer stays below datagen in the dependency order).
    std::uint64_t seed = 0;
    std::size_t alphabet_size = 0;
    std::size_t training_length = 0;
    double deviation_rate = 0.0;
    std::size_t deviation_targets = 0;
    double rare_threshold = 0.0;

    // Sweep ranges (min == max == 0 when no sweep is involved).
    std::size_t min_anomaly_size = 0;
    std::size_t max_anomaly_size = 0;
    std::size_t min_window = 0;
    std::size_t max_window = 0;
};

/// Manifest with tool name, build type, and timestamp filled in.
RunManifest make_manifest(std::string tool);

/// Source of the seconds-since-epoch value manifests are stamped with.
using ManifestClock = std::int64_t (*)();

/// Injects the clock used by make_manifest()/now_iso8601(). Pass nullptr to
/// restore the default wall clock. Tests pin a fixed clock so manifests (and
/// everything derived from them) are byte-reproducible.
void set_manifest_clock(ManifestClock clock) noexcept;

/// Formats seconds-since-epoch as "YYYY-MM-DDTHH:MM:SSZ".
std::string iso8601_utc(std::int64_t seconds_since_epoch);

/// Current time (per the injected clock) as "YYYY-MM-DDTHH:MM:SSZ".
std::string now_iso8601();

/// The CMake build type this library was compiled under.
std::string build_type_string();

/// One JSON line: {"type":"manifest",...}.
std::string manifest_json_line(const RunManifest& manifest);

/// Text-serializer round-trip (util/text_serial format, tagged fields).
void save_manifest(const RunManifest& manifest, std::ostream& out);
RunManifest load_manifest(std::istream& in);

}  // namespace adiv
