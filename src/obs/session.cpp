#include "obs/session.hpp"

#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace adiv {

void add_observability_options(CliParser& cli) {
    cli.add_option("metrics", "",
                   "dump final metrics to PATH as JSON ('-' = stdout)");
    cli.add_option("trace", "",
                   "stream JSON-lines trace spans to PATH ('-' = stderr, "
                   "'null' = measure but discard)");
    cli.add_option("metrics-interval", "0",
                   "sample the metrics registry every MS milliseconds into a "
                   "JSON-lines series (0 = off)");
    cli.add_option("metrics-samples", "",
                   "destination for --metrics-interval snapshots (default: "
                   "'<--metrics PATH>.samples.jsonl')");
}

ObsSession::ObsSession(const CliParser& cli, RunManifest manifest)
    : manifest_(std::move(manifest)), metrics_spec_(cli.get("metrics")) {
    install(cli.get("trace"));
    start_sampler(cli.get_int("metrics-interval"), cli.get("metrics-samples"));
}

ObsSession::ObsSession(const std::string& metrics_spec,
                       const std::string& trace_spec, RunManifest manifest)
    : manifest_(std::move(manifest)), metrics_spec_(metrics_spec) {
    install(trace_spec);
}

void ObsSession::install(const std::string& trace_spec) {
    if (trace_spec.empty()) return;
    sink_ = open_trace_sink(trace_spec);
    previous_sink_ = set_global_trace_sink(sink_);
    installed_ = true;
    if (sink_->enabled()) sink_->write_line(manifest_json_line(manifest_));
}

std::string ObsSession::resolve_samples_spec(const std::string& samples_spec,
                                             const std::string& metrics_spec) {
    if (!samples_spec.empty()) return samples_spec;
    require(!metrics_spec.empty() && metrics_spec != "-",
            "--metrics-interval needs --metrics-samples PATH or a file-backed "
            "--metrics PATH to derive the snapshot destination from");
    return metrics_spec + ".samples.jsonl";
}

void ObsSession::start_sampler(std::int64_t interval_ms,
                               const std::string& samples_spec) {
    require(interval_ms >= 0, "--metrics-interval must be >= 0");
    if (interval_ms == 0) return;
    samples_sink_ =
        open_trace_sink(resolve_samples_spec(samples_spec, metrics_spec_));
    TelemetrySamplerConfig config;
    config.interval = std::chrono::milliseconds(interval_ms);
    sampler_ = std::make_unique<TelemetrySampler>(global_metrics(),
                                                  samples_sink_, config);
    sampler_->start();
}

bool ObsSession::tracing() const noexcept { return sink_ && sink_->enabled(); }

void ObsSession::dump_metrics() {
    if (dumped_ || metrics_spec_.empty()) return;
    dumped_ = true;
    const std::string table = render_metrics_table(global_metrics());
    const std::string json = metrics_to_json(global_metrics());
    std::printf("\n-- metrics --\n%s", table.c_str());
    if (metrics_spec_ == "-") {
        std::printf("-- metrics json --\n%s\n", json.c_str());
    } else {
        std::ofstream out(metrics_spec_);
        require_data(out.good(),
                     "cannot open metrics output file '" + metrics_spec_ + "'");
        out << json << '\n';
        std::printf("# metrics json written to %s\n", metrics_spec_.c_str());
    }
    std::fflush(stdout);
}

ObsSession::~ObsSession() {
    try {
        // Stop sampling first so the final snapshot precedes (and agrees
        // with) the final dump.
        if (sampler_) sampler_->stop();
        dump_metrics();
    } catch (...) {
        // A failed metrics dump must not terminate the program from a dtor.
    }
    if (installed_) {
        sink_->flush();
        set_global_trace_sink(previous_sink_);
    }
}

}  // namespace adiv
