#include "obs/flight.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/table.hpp"

namespace adiv {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), slots_(new Slot[capacity]()) {
    require(capacity >= 1, "flight recorder needs at least one slot");
}

void FlightRecorder::record(FlightRecord record) noexcept {
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    record.seq = seq;
    Slot& slot = slots_[seq % capacity_];
    std::uint64_t version = slot.version.load(std::memory_order_relaxed);
    // Claim the slot: even -> odd. A failed claim means another writer is
    // mid-write on the same slot (we lapped the ring onto it); drop rather
    // than wait — the ring is a diagnostic, not a log.
    if ((version & 1U) != 0 ||
        !slot.version.compare_exchange_strong(version, version + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::uint64_t words[kWords];
    std::memcpy(words, &record, sizeof record);
    for (std::size_t i = 0; i < kWords; ++i)
        slot.words[i].store(words[i], std::memory_order_relaxed);
    // Publish: odd -> even. The release edge orders the word stores before
    // the version becomes readable again.
    slot.version.store(version + 2, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
    std::vector<FlightRecord> out;
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
        const Slot& slot = slots_[i];
        const std::uint64_t before = slot.version.load(std::memory_order_acquire);
        if (before == 0 || (before & 1U) != 0) continue;  // empty or mid-write
        std::uint64_t words[kWords];
        // Seqlock validation without a thread fence (TSan cannot model
        // fences): every word load is acquire, so the version re-read below
        // cannot be reordered above any of them, and an unchanged version
        // proves the words were not torn by a concurrent writer.
        for (std::size_t w = 0; w < kWords; ++w)
            words[w] = slot.words[w].load(std::memory_order_acquire);
        if (slot.version.load(std::memory_order_relaxed) != before) continue;
        FlightRecord record;
        std::memcpy(&record, words, sizeof record);
        out.push_back(record);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord& a, const FlightRecord& b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::string render_flight_records(const std::vector<FlightRecord>& records) {
    std::string out;
    for (const FlightRecord& r : records) {
        out += "seq=" + std::to_string(r.seq);
        out += " verb=" + std::string(r.verb_view());
        out += " outcome=" + std::string(r.outcome_view());
        out += " events=" + std::to_string(r.events);
        out += " scores=" + std::to_string(r.scores);
        out += " recv_us=" + fixed(static_cast<double>(r.recv_us), 3);
        out += " parse_us=" + fixed(static_cast<double>(r.parse_us), 3);
        out += " queue_us=" + fixed(static_cast<double>(r.queue_us), 3);
        out += " score_us=" + fixed(static_cast<double>(r.score_us), 3);
        out += " reply_us=" + fixed(static_cast<double>(r.reply_us), 3);
        out += " total_us=" + fixed(static_cast<double>(r.total_us), 3);
        out += '\n';
    }
    return out;
}

}  // namespace adiv
