#include "obs/manifest.hpp"

#include <atomic>
#include <cctype>
#include <ctime>
#include <istream>
#include <ostream>

#include "obs/json.hpp"
#include "util/text_serial.hpp"

#ifndef ADIV_BUILD_TYPE
#define ADIV_BUILD_TYPE "unknown"
#endif

namespace adiv {

RunManifest make_manifest(std::string tool) {
    RunManifest manifest;
    manifest.tool = std::move(tool);
    manifest.build_type = build_type_string();
    manifest.timestamp = now_iso8601();
    return manifest;
}

namespace {

// The one sanctioned wall-clock read: manifests exist to record when a run
// happened, and every consumer that needs reproducibility pins the clock
// with set_manifest_clock() instead.
std::int64_t wall_clock_seconds() {
    return static_cast<std::int64_t>(std::time(nullptr));  // adiv-lint: allow(nondeterminism)
}

std::atomic<ManifestClock> g_manifest_clock{nullptr};

}  // namespace

void set_manifest_clock(ManifestClock clock) noexcept {
    g_manifest_clock.store(clock, std::memory_order_relaxed);
}

std::string iso8601_utc(std::int64_t seconds_since_epoch) {
    const std::time_t t = static_cast<std::time_t>(seconds_since_epoch);
    std::tm utc{};
    gmtime_r(&t, &utc);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

std::string now_iso8601() {
    const ManifestClock clock = g_manifest_clock.load(std::memory_order_relaxed);
    return iso8601_utc(clock ? clock() : wall_clock_seconds());
}

std::string build_type_string() { return ADIV_BUILD_TYPE; }

std::string manifest_json_line(const RunManifest& m) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("manifest");
    w.key("tool").value(m.tool);
    w.key("detector").value(m.detector);
    w.key("build_type").value(m.build_type);
    w.key("timestamp").value(m.timestamp);
    w.key("seed").value(m.seed);
    w.key("alphabet_size").value(static_cast<std::uint64_t>(m.alphabet_size));
    w.key("training_length").value(static_cast<std::uint64_t>(m.training_length));
    w.key("deviation_rate").value(m.deviation_rate);
    w.key("deviation_targets").value(static_cast<std::uint64_t>(m.deviation_targets));
    w.key("rare_threshold").value(m.rare_threshold);
    w.key("min_anomaly_size").value(static_cast<std::uint64_t>(m.min_anomaly_size));
    w.key("max_anomaly_size").value(static_cast<std::uint64_t>(m.max_anomaly_size));
    w.key("min_window").value(static_cast<std::uint64_t>(m.min_window));
    w.key("max_window").value(static_cast<std::uint64_t>(m.max_window));
    w.end_object();
    return w.str();
}

namespace {

// Strings in the tagged text format are single tokens; spaces would split.
// Manifest strings are tool/detector/build identifiers, which never contain
// whitespace, but guard with an escape ('_' for space) so a surprising value
// still round-trips losslessly enough to fail loudly on read if mangled.
std::string token_or_placeholder(const std::string& value) {
    if (value.empty()) return "-";
    std::string out = value;
    for (char& c : out)
        if (std::isspace(static_cast<unsigned char>(c))) c = '_';
    return out;
}

std::string read_string_token(std::istream& in, const std::string& what) {
    const std::string token = read_token(in, what);
    return token == "-" ? std::string() : token;
}

}  // namespace

void save_manifest(const RunManifest& m, std::ostream& out) {
    out << "adiv-manifest 1\n";
    out << "tool " << token_or_placeholder(m.tool) << '\n';
    out << "detector " << token_or_placeholder(m.detector) << '\n';
    out << "build_type " << token_or_placeholder(m.build_type) << '\n';
    out << "timestamp " << token_or_placeholder(m.timestamp) << '\n';
    out << "seed " << m.seed << '\n';
    out << "alphabet_size " << m.alphabet_size << '\n';
    out << "training_length " << m.training_length << '\n';
    out << "deviation_rate ";
    write_double(out, m.deviation_rate);
    out << '\n';
    out << "deviation_targets " << m.deviation_targets << '\n';
    out << "rare_threshold ";
    write_double(out, m.rare_threshold);
    out << '\n';
    out << "anomaly_sizes " << m.min_anomaly_size << ' ' << m.max_anomaly_size << '\n';
    out << "windows " << m.min_window << ' ' << m.max_window << '\n';
}

RunManifest load_manifest(std::istream& in) {
    expect_tag(in, "adiv-manifest");
    const std::uint64_t version = read_u64(in, "manifest version");
    require_data(version == 1, "unsupported manifest version");
    RunManifest m;
    expect_tag(in, "tool");
    m.tool = read_string_token(in, "tool");
    expect_tag(in, "detector");
    m.detector = read_string_token(in, "detector");
    expect_tag(in, "build_type");
    m.build_type = read_string_token(in, "build_type");
    expect_tag(in, "timestamp");
    m.timestamp = read_string_token(in, "timestamp");
    expect_tag(in, "seed");
    m.seed = read_u64(in, "seed");
    expect_tag(in, "alphabet_size");
    m.alphabet_size = read_size(in, "alphabet_size");
    expect_tag(in, "training_length");
    m.training_length = read_size(in, "training_length");
    expect_tag(in, "deviation_rate");
    m.deviation_rate = read_double(in, "deviation_rate");
    expect_tag(in, "deviation_targets");
    m.deviation_targets = read_size(in, "deviation_targets");
    expect_tag(in, "rare_threshold");
    m.rare_threshold = read_double(in, "rare_threshold");
    expect_tag(in, "anomaly_sizes");
    m.min_anomaly_size = read_size(in, "min_anomaly_size");
    m.max_anomaly_size = read_size(in, "max_anomaly_size");
    expect_tag(in, "windows");
    m.min_window = read_size(in, "min_window");
    m.max_window = read_size(in, "max_window");
    return m;
}

}  // namespace adiv
