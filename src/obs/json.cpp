#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace adiv {

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_number(double value) {
    if (!std::isfinite(value)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    return buf;
}

void JsonWriter::before_value() {
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!stack_.empty()) {
        ADIV_ASSERT(stack_.back() == '[');  // object members need key() first
        if (has_item_.back()) out_ += ',';
        has_item_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    out_ += '{';
    stack_.push_back('{');
    has_item_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    ADIV_ASSERT(!stack_.empty() && stack_.back() == '{' && !pending_key_);
    out_ += '}';
    stack_.pop_back();
    has_item_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    out_ += '[';
    stack_.push_back('[');
    has_item_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    ADIV_ASSERT(!stack_.empty() && stack_.back() == '[');
    out_ += ']';
    stack_.pop_back();
    has_item_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
    ADIV_ASSERT(!stack_.empty() && stack_.back() == '{' && !pending_key_);
    if (has_item_.back()) out_ += ',';
    has_item_.back() = true;
    out_ += '"';
    out_ += json_escape(name);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
    before_value();
    out_ += '"';
    out_ += json_escape(text);
    out_ += '"';
    return *this;
}

JsonWriter& JsonWriter::value(double number) {
    before_value();
    out_ += json_number(number);
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
    before_value();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
    before_value();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
    before_value();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter& JsonWriter::raw(std::string_view token) {
    before_value();
    out_ += token;
    return *this;
}

}  // namespace adiv
