#include "obs/traceview.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <map>
#include <optional>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace adiv {

namespace {

// --- minimal JSON-line reader ----------------------------------------------
// The trace writer (obs/trace.cpp) emits one flat object per line; this
// reader recovers the top-level string/number fields and skips everything
// nested (span attrs). It is deliberately private: the repo's JSON contract
// is still "emit, don't parse" everywhere except this analyzer.

struct FieldValue {
    bool is_string = false;
    std::string text;
    double number = 0.0;
};

using FlatObject = std::map<std::string, FieldValue>;

class Cursor {
public:
    explicit Cursor(const std::string& line) : s_(line) {}

    void skip_ws() {
        while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
    }

    [[nodiscard]] char peek() const {
        require_data(i_ < s_.size(), "trace line: truncated JSON");
        return s_[i_];
    }

    char get() {
        const char c = peek();
        ++i_;
        return c;
    }

    void expect(char c) {
        require_data(get() == c, std::string("trace line: expected '") + c + "'");
    }

    [[nodiscard]] bool done() const noexcept { return i_ >= s_.size(); }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = get();
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = get();
            switch (esc) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u':
                    // Trace output only \u-escapes control bytes; a literal
                    // placeholder keeps the reader simple.
                    for (int k = 0; k < 4; ++k) (void)get();
                    out += '?';
                    break;
                default: out += esc;
            }
        }
    }

    double parse_number() {
        const std::size_t start = i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
                s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
                s_[i_] == 'e' || s_[i_] == 'E'))
            ++i_;
        require_data(i_ > start, "trace line: malformed number");
        return std::stod(s_.substr(start, i_ - start));
    }

    void skip_literal(const char* word) {
        for (const char* p = word; *p != '\0'; ++p) expect(*p);
    }

    /// Consumes any JSON value without keeping it (nested attrs objects).
    void skip_value() {
        skip_ws();
        const char c = peek();
        if (c == '"') {
            (void)parse_string();
        } else if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            (void)get();
            skip_ws();
            if (peek() == close) {
                (void)get();
                return;
            }
            for (;;) {
                if (c == '{') {
                    (void)parse_string();
                    skip_ws();
                    expect(':');
                }
                skip_value();
                skip_ws();
                if (peek() == close) {
                    (void)get();
                    return;
                }
                expect(',');
                skip_ws();
            }
        } else if (c == 't') {
            skip_literal("true");
        } else if (c == 'f') {
            skip_literal("false");
        } else if (c == 'n') {
            skip_literal("null");
        } else {
            (void)parse_number();
        }
    }

private:
    const std::string& s_;
    std::size_t i_ = 0;
};

FlatObject parse_flat_object(const std::string& line) {
    Cursor cur(line);
    FlatObject fields;
    cur.skip_ws();
    cur.expect('{');
    cur.skip_ws();
    if (cur.peek() == '}') return fields;
    for (;;) {
        cur.skip_ws();
        std::string key = cur.parse_string();
        cur.skip_ws();
        cur.expect(':');
        cur.skip_ws();
        const char head = cur.peek();
        FieldValue value;
        if (head == '"') {
            value.is_string = true;
            value.text = cur.parse_string();
            fields.emplace(std::move(key), std::move(value));
        } else if (head == '{' || head == '[' || head == 't' || head == 'f' ||
                   head == 'n') {
            cur.skip_value();  // nested / non-scalar: not needed here
        } else {
            value.number = cur.parse_number();
            fields.emplace(std::move(key), std::move(value));
        }
        cur.skip_ws();
        const char next = cur.get();
        if (next == '}') break;
        require_data(next == ',', "trace line: expected ',' or '}'");
    }
    return fields;
}

const FieldValue* find_string(const FlatObject& fields, const char* key) {
    const auto it = fields.find(key);
    return it != fields.end() && it->second.is_string ? &it->second : nullptr;
}

const FieldValue* find_number(const FlatObject& fields, const char* key) {
    const auto it = fields.find(key);
    return it != fields.end() && !it->second.is_string ? &it->second : nullptr;
}

// --- aggregation -----------------------------------------------------------

/// Completed spans at one depth, waiting for their parent to end.
struct DepthAccum {
    double child_total = 0.0;
    double max_dur = -1.0;
    std::vector<CriticalPathNode> max_path;  // root-first chain of the
                                             // longest child at this depth
};

struct NameAccum {
    std::uint64_t count = 0;
    double total = 0.0;
    double self_total = 0.0;
    std::vector<double> durations;
};

double nearest_rank(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

TraceAnalysis analyze_trace(std::istream& in) {
    TraceAnalysis analysis;
    std::map<std::string, NameAccum> by_name;
    std::vector<DepthAccum> accum;
    std::optional<RunSummary> run;

    const auto finish_run = [&] {
        if (!run) return;
        if (!accum.empty()) {
            run->root_total_s = accum[0].child_total;
            run->critical_path = std::move(accum[0].max_path);
        }
        accum.clear();
        analysis.runs.push_back(std::move(*run));
        run.reset();
    };

    std::string line;
    while (std::getline(in, line)) {
        ++analysis.lines;
        if (line.empty()) continue;
        FlatObject fields;
        try {
            fields = parse_flat_object(line);
        } catch (const DataError&) {
            ++analysis.skipped;
            continue;
        }
        const FieldValue* type = find_string(fields, "type");
        if (type == nullptr) {
            ++analysis.skipped;
            continue;
        }
        if (type->text == "manifest") {
            finish_run();
            run.emplace();
            if (const FieldValue* tool = find_string(fields, "tool"))
                run->tool = tool->text;
            if (const FieldValue* detector = find_string(fields, "detector"))
                run->detector = detector->text;
            if (const FieldValue* ts = find_string(fields, "timestamp"))
                run->timestamp = ts->text;
            continue;
        }
        if (type->text != "span_end") continue;  // span_begin, metrics_sample
        const FieldValue* name = find_string(fields, "name");
        const FieldValue* depth = find_number(fields, "depth");
        const FieldValue* dur = find_number(fields, "dur_s");
        if (name == nullptr || depth == nullptr || dur == nullptr ||
            depth->number < 0) {
            ++analysis.skipped;
            continue;
        }
        if (!run) run.emplace();  // headerless trace: one anonymous run
        ++run->spans;

        const auto d = static_cast<std::size_t>(depth->number);
        const double duration = dur->number;
        double child_total = 0.0;
        std::vector<CriticalPathNode> path;
        if (d + 1 < accum.size()) {
            child_total = accum[d + 1].child_total;
            path = std::move(accum[d + 1].max_path);
        }
        // Interleaved traces (several threads, one stream) can attribute a
        // sibling's children here; the clamp keeps self-time sane.
        const double self = std::max(0.0, duration - child_total);
        path.insert(path.begin(), CriticalPathNode{name->text, duration, self});
        accum.resize(d + 1);  // drops consumed deeper levels
        DepthAccum& mine = accum[d];
        mine.child_total += duration;
        if (duration > mine.max_dur) {
            mine.max_dur = duration;
            mine.max_path = std::move(path);
        }

        NameAccum& stats = by_name[name->text];
        ++stats.count;
        stats.total += duration;
        stats.self_total += self;
        stats.durations.push_back(duration);
    }
    finish_run();

    for (auto& [name, stats] : by_name) {
        std::sort(stats.durations.begin(), stats.durations.end());
        SpanStats row;
        row.name = name;
        row.count = stats.count;
        row.total_s = stats.total;
        row.self_s = stats.self_total;
        row.p50_s = nearest_rank(stats.durations, 0.50);
        row.p95_s = nearest_rank(stats.durations, 0.95);
        row.p99_s = nearest_rank(stats.durations, 0.99);
        row.max_s = stats.durations.back();
        analysis.spans.push_back(std::move(row));
    }
    return analysis;
}

std::string render_traceview(const TraceAnalysis& analysis) {
    std::string out;
    if (analysis.spans.empty()) {
        out += "(no spans in trace)\n";
    } else {
        std::vector<const SpanStats*> order;
        order.reserve(analysis.spans.size());
        for (const SpanStats& row : analysis.spans) order.push_back(&row);
        std::sort(order.begin(), order.end(),
                  [](const SpanStats* a, const SpanStats* b) {
                      if (a->total_s != b->total_s) return a->total_s > b->total_s;
                      return a->name < b->name;
                  });
        TextTable table;
        table.header({"span", "count", "total_s", "self_s", "p50_s", "p95_s",
                      "p99_s", "max_s"});
        for (const SpanStats* row : order)
            table.add(row->name, row->count, fixed(row->total_s, 6),
                      fixed(row->self_s, 6), fixed(row->p50_s, 6),
                      fixed(row->p95_s, 6), fixed(row->p99_s, 6),
                      fixed(row->max_s, 6));
        out += table.render();
    }
    for (std::size_t i = 0; i < analysis.runs.size(); ++i) {
        const RunSummary& run = analysis.runs[i];
        out += "\nrun " + std::to_string(i + 1);
        if (!run.tool.empty()) out += " tool=" + run.tool;
        if (!run.detector.empty()) out += " detector=" + run.detector;
        if (!run.timestamp.empty()) out += " at=" + run.timestamp;
        out += " spans=" + std::to_string(run.spans);
        out += " roots_total_s=" + fixed(run.root_total_s, 6);
        out += "\n";
        if (run.critical_path.empty()) {
            out += "  (no complete root span)\n";
            continue;
        }
        out += "  critical path:\n";
        for (std::size_t link = 0; link < run.critical_path.size(); ++link) {
            const CriticalPathNode& node = run.critical_path[link];
            out += "  " + std::string(2 * link, ' ') + node.name + "  dur_s=" +
                   fixed(node.dur_s, 6) + " self_s=" + fixed(node.self_s, 6) +
                   "\n";
        }
    }
    if (analysis.skipped > 0)
        out += "\n(" + std::to_string(analysis.skipped) + " of " +
               std::to_string(analysis.lines) + " lines skipped as malformed)\n";
    return out;
}

// --- contention view --------------------------------------------------------

namespace {

constexpr const char* kStageNames[] = {"recv",  "parse", "queue",
                                       "score", "reply", "total"};

struct StageAccum {
    std::vector<double> values;
    double total = 0.0;
};

}  // namespace

ContentionAnalysis analyze_contention(std::istream& in) {
    ContentionAnalysis analysis;
    std::map<std::string, StageAccum> stage_accum;
    std::map<std::string, ContentionSite> site_accum;

    std::string line;
    while (std::getline(in, line)) {
        ++analysis.lines;
        if (line.empty()) continue;
        FlatObject fields;
        try {
            fields = parse_flat_object(line);
        } catch (const DataError&) {
            ++analysis.skipped;
            continue;
        }
        const FieldValue* type = find_string(fields, "type");
        if (type == nullptr) {
            ++analysis.skipped;
            continue;
        }
        if (type->text == "event_stage") {
            ++analysis.events;
            for (const char* stage : kStageNames) {
                const std::string key = std::string(stage) + "_us";
                if (const FieldValue* v = find_number(fields, key.c_str())) {
                    StageAccum& accum = stage_accum[stage];
                    accum.values.push_back(v->number);
                    accum.total += v->number;
                }
            }
        } else if (type->text == "wait_site") {
            const FieldValue* name = find_string(fields, "site");
            if (name == nullptr) {
                ++analysis.skipped;
                continue;
            }
            ContentionSite& site = site_accum[name->text];
            site.site = name->text;
            if (const FieldValue* kind = find_string(fields, "kind"))
                site.kind = kind->text;
            const auto number = [&](const char* key) {
                const FieldValue* v = find_number(fields, key);
                return v != nullptr ? v->number : 0.0;
            };
            site.acquires += static_cast<std::uint64_t>(number("acquires"));
            site.contended += static_cast<std::uint64_t>(number("contended"));
            site.wait_us_total += number("wait_us_total");
            // A sweep emits one line per point; counts sum, tail statistics
            // keep the worst point.
            site.wait_us_p95 = std::max(site.wait_us_p95, number("wait_us_p95"));
            site.wait_us_max = std::max(site.wait_us_max, number("wait_us_max"));
        }
        // Other line types (spans, samples, manifests) pass through silently:
        // the contention view reads the same merged stream as the span view.
    }

    for (const char* stage : kStageNames) {
        const auto it = stage_accum.find(stage);
        if (it == stage_accum.end()) continue;
        StageAccum& accum = it->second;
        std::sort(accum.values.begin(), accum.values.end());
        StageBreakdown row;
        row.stage = stage;
        row.count = accum.values.size();
        row.total_us = accum.total;
        row.mean_us = accum.total / static_cast<double>(accum.values.size());
        row.p50_us = nearest_rank(accum.values, 0.50);
        row.p95_us = nearest_rank(accum.values, 0.95);
        row.p99_us = nearest_rank(accum.values, 0.99);
        row.max_us = accum.values.back();
        analysis.stages.push_back(std::move(row));
    }

    for (auto& [name, site] : site_accum) {
        site.wait_us_mean = site.contended > 0
                                ? site.wait_us_total /
                                      static_cast<double>(site.contended)
                                : 0.0;
        analysis.sites.push_back(site);
    }
    std::sort(analysis.sites.begin(), analysis.sites.end(),
              [](const ContentionSite& a, const ContentionSite& b) {
                  if (a.wait_us_total != b.wait_us_total)
                      return a.wait_us_total > b.wait_us_total;
                  return a.site < b.site;
              });
    for (const ContentionSite& site : analysis.sites) {
        if (site.kind == "contention" && site.contended > 0) {
            analysis.dominant_site = site.site;  // first hit: max total wait
            break;
        }
    }
    return analysis;
}

std::string render_contention(const ContentionAnalysis& analysis) {
    std::string out;
    if (analysis.stages.empty()) {
        out += "(no event_stage lines in trace)\n";
    } else {
        out += "stage breakdown (" + std::to_string(analysis.events) +
               " sampled events):\n";
        TextTable table;
        table.header({"stage", "count", "total_us", "mean_us", "p50_us",
                      "p95_us", "p99_us", "max_us"});
        for (const StageBreakdown& row : analysis.stages)
            table.add(row.stage, row.count, fixed(row.total_us, 3),
                      fixed(row.mean_us, 3), fixed(row.p50_us, 3),
                      fixed(row.p95_us, 3), fixed(row.p99_us, 3),
                      fixed(row.max_us, 3));
        out += table.render();
    }
    out += "\n";
    if (analysis.sites.empty()) {
        out += "(no wait_site lines in trace)\n";
    } else {
        out += "wait sites (by total wait):\n";
        TextTable table;
        table.header({"site", "kind", "acquires", "contended", "wait_us_total",
                      "wait_us_mean", "wait_us_p95", "wait_us_max"});
        for (const ContentionSite& site : analysis.sites)
            table.add(site.site, site.kind, site.acquires, site.contended,
                      fixed(site.wait_us_total, 3), fixed(site.wait_us_mean, 3),
                      fixed(site.wait_us_p95, 3), fixed(site.wait_us_max, 3));
        out += table.render();
        out += analysis.dominant_site.empty()
                   ? "dominant wait site: (none contended)\n"
                   : "dominant wait site: " + analysis.dominant_site + "\n";
    }
    if (analysis.skipped > 0)
        out += "\n(" + std::to_string(analysis.skipped) + " of " +
               std::to_string(analysis.lines) + " lines skipped as malformed)\n";
    return out;
}

std::string contention_to_json(const ContentionAnalysis& analysis) {
    JsonWriter w;
    w.begin_object();
    w.key("events").value(analysis.events);
    w.key("stages").begin_array();
    for (const StageBreakdown& row : analysis.stages) {
        w.begin_object();
        w.key("stage").value(row.stage);
        w.key("count").value(row.count);
        w.key("total_us").value(row.total_us);
        w.key("mean_us").value(row.mean_us);
        w.key("p50_us").value(row.p50_us);
        w.key("p95_us").value(row.p95_us);
        w.key("p99_us").value(row.p99_us);
        w.key("max_us").value(row.max_us);
        w.end_object();
    }
    w.end_array();
    w.key("wait_sites").begin_array();
    for (const ContentionSite& site : analysis.sites) {
        w.begin_object();
        w.key("site").value(site.site);
        w.key("kind").value(site.kind);
        w.key("acquires").value(site.acquires);
        w.key("contended").value(site.contended);
        w.key("wait_us_total").value(site.wait_us_total);
        w.key("wait_us_mean").value(site.wait_us_mean);
        w.key("wait_us_p95").value(site.wait_us_p95);
        w.key("wait_us_max").value(site.wait_us_max);
        w.end_object();
    }
    w.end_array();
    w.key("dominant_wait_site").value(analysis.dominant_site);
    w.key("lines").value(analysis.lines);
    w.key("skipped").value(analysis.skipped);
    w.end_object();
    return w.str();
}

std::string traceview_to_json(const TraceAnalysis& analysis) {
    JsonWriter w;
    w.begin_object();
    w.key("spans").begin_array();
    for (const SpanStats& row : analysis.spans) {
        w.begin_object();
        w.key("name").value(row.name);
        w.key("count").value(row.count);
        w.key("total_s").value(row.total_s);
        w.key("self_s").value(row.self_s);
        w.key("p50_s").value(row.p50_s);
        w.key("p95_s").value(row.p95_s);
        w.key("p99_s").value(row.p99_s);
        w.key("max_s").value(row.max_s);
        w.end_object();
    }
    w.end_array();
    w.key("runs").begin_array();
    for (const RunSummary& run : analysis.runs) {
        w.begin_object();
        w.key("tool").value(run.tool);
        w.key("detector").value(run.detector);
        w.key("timestamp").value(run.timestamp);
        w.key("spans").value(run.spans);
        w.key("root_total_s").value(run.root_total_s);
        w.key("critical_path").begin_array();
        for (const CriticalPathNode& node : run.critical_path) {
            w.begin_object();
            w.key("name").value(node.name);
            w.key("dur_s").value(node.dur_s);
            w.key("self_s").value(node.self_s);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("lines").value(analysis.lines);
    w.key("skipped").value(analysis.skipped);
    w.end_object();
    return w.str();
}

}  // namespace adiv
