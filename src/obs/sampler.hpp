// TelemetrySampler: periodic registry snapshots as a JSON-lines time series.
//
// A background thread wakes on a fixed interval, snapshots a MetricsRegistry,
// and writes one `metrics_sample` JSON line per tick to a TraceSink-shaped
// destination (its own file, stderr, or a shared trace stream):
//
//   {"type":"metrics_sample","seq":0,"timestamp":"2026-08-07T12:00:00Z",
//    "counters":{"serve.events_pushed":{"total":512,"delta":512}}, ...}
//
// Counters carry both the cumulative total and the delta since the previous
// sample, so consumers get rates without re-deriving them; histograms carry
// the digest (count/mean/p50/p95/p99/max) plus the count delta. stop() (and
// the destructor) takes one final sample before joining, so a short run
// still ends with a flushed, complete series.
//
// Timestamps come from an injectable ManifestClock — tests pin the clock and
// drive ticks through sample_once(), making the emitted lines byte-exact;
// the background thread is only a scheduler around the same method.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace adiv {

struct TelemetrySamplerConfig {
    /// Tick period for the background thread (start()/stop() lifecycle).
    std::chrono::milliseconds interval{1000};
    /// Timestamp source; nullptr = the process manifest clock (wall time
    /// unless a test pinned it via set_manifest_clock()).
    ManifestClock clock = nullptr;
};

class TelemetrySampler {
public:
    /// The registry and sink must outlive the sampler.
    TelemetrySampler(MetricsRegistry& registry, std::shared_ptr<TraceSink> sink,
                     TelemetrySamplerConfig config = {});

    TelemetrySampler(const TelemetrySampler&) = delete;
    TelemetrySampler& operator=(const TelemetrySampler&) = delete;

    /// Calls stop().
    ~TelemetrySampler();

    /// Launches the background thread; no-op when already running.
    void start();

    /// Takes a final sample, flushes the sink, joins the thread. Idempotent.
    void stop();

    /// Takes one snapshot and writes one line (the thread's tick body;
    /// public so tests drive deterministic series without timing).
    void sample_once();

    [[nodiscard]] std::uint64_t samples_written() const noexcept;

    /// The JSON line for one tick — exposed for tests that pin the format.
    [[nodiscard]] std::string render_sample_line(
        const MetricsRegistry::Snapshot& snap);

private:
    void run();
    [[nodiscard]] std::string timestamp() const;

    MetricsRegistry* registry_;
    std::shared_ptr<TraceSink> sink_;
    TelemetrySamplerConfig config_;

    std::mutex mutex_;  // guards the delta baselines and seq against
                        // stop()-vs-tick races on the final sample
    std::map<std::string, std::uint64_t> counter_baseline_;
    std::map<std::string, std::uint64_t> histogram_baseline_;
    std::uint64_t seq_ = 0;

    // stop() ordering: stop_mutex_ is held across the whole shutdown —
    // signal, join, final sample, flush — and stopped_ flips only at the
    // end. A concurrent stop() (e.g. the destructor racing an explicit
    // stop() from a draining server) therefore blocks until the final
    // sample is *written*, not merely scheduled; no caller can return from
    // stop() and then mutate the registry ahead of the shutdown snapshot.
    std::mutex stop_mutex_;
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    bool stopped_ = false;
    std::thread thread_;
};

}  // namespace adiv
