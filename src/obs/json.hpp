// Minimal JSON emission for the observability layer.
//
// The trace sinks stream JSON-lines and the metrics dump writes one JSON
// document; both need nothing more than escaping and a writer that tracks
// commas. Parsing is out of scope — the repo consumes its own output with
// line-oriented tools, not a DOM.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adiv {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; everything else passes through, so UTF-8
/// payloads stay readable).
std::string json_escape(std::string_view text);

/// Formats a double as a JSON number token. Non-finite values have no JSON
/// representation and are emitted as null.
std::string json_number(double value);

/// Incremental single-line JSON writer. Usage:
///
///   JsonWriter w;
///   w.begin_object().key("name").value("stide").key("n").value(42);
///   w.end_object();
///   std::string line = w.str();
///
/// The writer inserts commas automatically; nesting is tracked with an
/// explicit stack so mismatched begin/end pairs trip an assertion rather
/// than emitting garbage.
class JsonWriter {
public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emits `"key":`; must be inside an object.
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text) { return value(std::string_view(text)); }
    JsonWriter& value(const std::string& text) { return value(std::string_view(text)); }
    JsonWriter& value(double number);
    JsonWriter& value(std::uint64_t number);
    JsonWriter& value(std::int64_t number);
    JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
    JsonWriter& value(bool flag);

    /// Emits a pre-rendered JSON token verbatim (e.g. a nested document).
    JsonWriter& raw(std::string_view token);

    [[nodiscard]] const std::string& str() const noexcept { return out_; }

private:
    void before_value();

    std::string out_;
    std::vector<char> stack_;     // '{' or '['
    std::vector<bool> has_item_;  // parallel to stack_
    bool pending_key_ = false;
};

}  // namespace adiv
