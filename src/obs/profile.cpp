#include "obs/profile.hpp"

#include <atomic>
#include <utility>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace adiv {

#if ADIV_PROFILE
namespace {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace

bool profiling_enabled() noexcept {
    return g_profiling_enabled.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) noexcept {
    g_profiling_enabled.store(on, std::memory_order_relaxed);
}
#endif

std::string_view to_string(WaitSiteKind kind) noexcept {
    return kind == WaitSiteKind::Contention ? "contention" : "idle";
}

namespace {
// "serve.inbox_block" + "wait_us" -> "serve.inbox_block.wait_us". The
// metric-name lint checks string literals passed directly to instrument
// factories; bare leaves are joined here so only full dotted names reach
// those call sites.
std::string qualified(const std::string& prefix, const char* leaf) {
    return prefix + '.' + leaf;
}
}  // namespace

WaitSite::WaitSite(std::string name, WaitSiteKind kind, MetricsRegistry& metrics)
    : name_(std::move(name)),
      kind_(kind),
      acquires_(metrics.counter(qualified(name_, "acquires"))),
      contended_(metrics.counter(qualified(name_, "contended"))),
      wait_us_(metrics.histogram(qualified(name_, "wait_us"))) {}

WaitSiteRegistry::WaitSiteRegistry(MetricsRegistry& metrics)
    : metrics_(&metrics) {}

WaitSite& WaitSiteRegistry::site(const std::string& name, WaitSiteKind kind) {
    require(!name.empty(), "wait site needs a name");
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(name);
    if (it == sites_.end())
        it = sites_.emplace(name, std::make_unique<WaitSite>(name, kind, *metrics_))
                 .first;
    return *it->second;
}

std::vector<WaitSiteSummary> WaitSiteRegistry::summaries() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<WaitSiteSummary> out;
    out.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
        const HistogramSummary waits = site->wait_summary();
        WaitSiteSummary summary;
        summary.name = name;
        summary.kind = site->kind();
        summary.acquires = site->acquires();
        summary.contended = site->contended();
        summary.wait_us_total = waits.sum;
        summary.wait_us_mean = waits.mean;
        summary.wait_us_p95 = waits.p95;
        summary.wait_us_max = waits.max;
        out.push_back(std::move(summary));
    }
    return out;
}

std::string wait_site_jsonl(const WaitSiteSummary& summary) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("wait_site");
    w.key("site").value(summary.name);
    w.key("kind").value(to_string(summary.kind));
    w.key("acquires").value(summary.acquires);
    w.key("contended").value(summary.contended);
    w.key("wait_us_total").value(summary.wait_us_total);
    w.key("wait_us_mean").value(summary.wait_us_mean);
    w.key("wait_us_p95").value(summary.wait_us_p95);
    w.key("wait_us_max").value(summary.wait_us_max);
    w.end_object();
    return w.str();
}

void WaitSiteRegistry::write_jsonl(TraceSink& sink) const {
    if (!sink.enabled()) return;
    for (const WaitSiteSummary& summary : summaries())
        sink.write_line(wait_site_jsonl(summary));
}

WaitSiteRegistry& global_wait_sites() {
    static WaitSiteRegistry registry(global_metrics());
    return registry;
}

WaitSite& wait_site(const std::string& name, WaitSiteKind kind) {
    return global_wait_sites().site(name, kind);
}

const WaitSiteSummary* dominant_wait_site(
    const std::vector<WaitSiteSummary>& summaries) noexcept {
    const WaitSiteSummary* best = nullptr;
    for (const WaitSiteSummary& summary : summaries) {
        if (summary.kind != WaitSiteKind::Contention) continue;
        if (summary.contended == 0) continue;
        if (best == nullptr || summary.wait_us_total > best->wait_us_total)
            best = &summary;
    }
    return best;
}

namespace {
// Depth buckets for the pool queue-depth histogram: powers of two, not the
// default microsecond latency bounds.
std::vector<double> depth_buckets() {
    std::vector<double> bounds;
    for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
    return bounds;
}
}  // namespace

WaitSiteThreadPoolProbe::WaitSiteThreadPoolProbe(const std::string& prefix,
                                                 WaitSiteRegistry& sites,
                                                 MetricsRegistry& metrics)
    : enqueue_block_(sites.site(qualified(prefix, "enqueue_block"),
                                WaitSiteKind::Contention)),
      dequeue_wait_(
          sites.site(qualified(prefix, "dequeue_wait"), WaitSiteKind::Idle)),
      queue_depth_(
          metrics.histogram(qualified(prefix, "queue_depth"), depth_buckets())) {}

void WaitSiteThreadPoolProbe::enqueue_blocked_us(double us) {
    if (!profiling_enabled()) return;
    enqueue_block_.record_wait_us(us);
}

void WaitSiteThreadPoolProbe::dequeue_waited_us(double us) {
    if (!profiling_enabled()) return;
    dequeue_wait_.record_wait_us(us);
}

void WaitSiteThreadPoolProbe::queue_depth_sampled(std::size_t depth) {
    if (!profiling_enabled()) return;
    queue_depth_.record(static_cast<double>(depth));
}

}  // namespace adiv
