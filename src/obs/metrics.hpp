// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Instruments are lock-free on the hot path (relaxed atomics); the registry
// itself takes a mutex only on name lookup, so callers that care about
// per-event cost resolve their instruments once and keep the references —
// instrument addresses are stable for the registry's lifetime.
//
// A process-global registry (`global_metrics()`) lets any layer report
// without plumbing; tests and benchmarks inject a local registry instead to
// observe instrumentation in isolation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace adiv {

/// Monotonic event counter.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (e.g. a rate or a fill level).
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { set(0.0); }

private:
    std::atomic<double> value_{0.0};
};

/// Point-in-time digest of a histogram.
struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/// Fixed-bucket histogram for latency-like values.
///
/// Buckets are (lower, upper] intervals over the given ascending upper
/// bounds, plus an implicit overflow bucket. Percentiles are estimated by
/// linear interpolation within the bucket holding the requested rank and
/// clamped to the observed [min, max], so a single-sample histogram reports
/// that sample exactly and an empty histogram reports 0.
class Histogram {
public:
    explicit Histogram(std::vector<double> bucket_bounds = latency_buckets_us());

    void record(double value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }

    /// Percentile estimate for q in [0, 1]; 0 when empty.
    [[nodiscard]] double percentile(double q) const;

    [[nodiscard]] HistogramSummary summary() const;

    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

    void reset() noexcept;

    /// Default bounds, tuned for microsecond latencies: 1us .. 1s, roughly
    /// logarithmic (1-2-5 per decade).
    static std::vector<double> latency_buckets_us();

private:
    std::vector<double> bounds_;                       // ascending upper bounds
    std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (overflow)
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};  // valid when count_ > 0
    std::atomic<double> max_{0.0};
};

/// Named instrument store. Lookup creates on first use; references returned
/// stay valid for the registry's lifetime.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name,
                         std::vector<double> bounds = Histogram::latency_buckets_us());

    /// Lookup without creation; nullptr when the name is unknown.
    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

    struct Snapshot {
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        std::vector<std::pair<std::string, double>> gauges;
        std::vector<std::pair<std::string, HistogramSummary>> histograms;

        [[nodiscard]] bool empty() const noexcept {
            return counters.empty() && gauges.empty() && histograms.empty();
        }
    };

    /// Name-sorted point-in-time view of every instrument.
    [[nodiscard]] Snapshot snapshot() const;

    /// Zeroes every instrument. Handles held by callers stay valid.
    void reset();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry every built-in instrumentation point uses by
/// default.
MetricsRegistry& global_metrics();

/// Human-readable dump: one util/table per instrument kind.
std::string render_metrics_table(const MetricsRegistry& registry);

/// Machine-readable dump: a single JSON object
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,..,p99},...}}.
std::string metrics_to_json(const MetricsRegistry& registry);

}  // namespace adiv
