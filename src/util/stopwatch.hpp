// Wall-clock timing for the figure harnesses' progress reporting.
#pragma once

#include <chrono>

namespace adiv {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace adiv
