// Wall-clock timing for the figure harnesses' progress reporting.
#pragma once

#include <chrono>

namespace adiv {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(clock::now()), lap_(start_) {}

    void restart() noexcept { start_ = lap_ = clock::now(); }

    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

    /// Seconds since the last lap() (or construction/restart), and starts
    /// the next lap. Does not disturb the total measured by seconds().
    [[nodiscard]] double lap() noexcept {
        const clock::time_point now = clock::now();
        const double elapsed = std::chrono::duration<double>(now - lap_).count();
        lap_ = now;
        return elapsed;
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
    clock::time_point lap_;
};

}  // namespace adiv
