// Small command-line option parser for the examples and figure harnesses.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` options plus
// positional arguments. Unknown options are an error so typos surface
// immediately; `--help` prints the registered options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adiv {

class CliParser {
public:
    /// program: argv[0]-style name used in help output.
    /// summary: one-line description printed at the top of --help.
    CliParser(std::string program, std::string summary);

    /// Registers an option that takes a value; default_value is shown in help
    /// and returned when the option is absent.
    void add_option(const std::string& name, const std::string& default_value,
                    const std::string& help);

    /// Registers a boolean flag (present => true).
    void add_flag(const std::string& name, const std::string& help);

    /// Parses argv. Returns false if --help was requested (help text already
    /// printed to stdout). Throws InvalidArgument on malformed input.
    bool parse(int argc, const char* const* argv);

    [[nodiscard]] std::string get(const std::string& name) const;
    [[nodiscard]] std::int64_t get_int(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] bool get_flag(const std::string& name) const;
    [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
        return positionals_;
    }

    [[nodiscard]] std::string help_text() const;

private:
    struct Option {
        std::string default_value;
        std::string help;
        bool is_flag = false;
        std::optional<std::string> value;
        bool flag_set = false;
    };

    std::string program_;
    std::string summary_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
    std::vector<std::string> positionals_;
};

}  // namespace adiv
