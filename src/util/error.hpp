// Error types and invariant checks shared across the library.
//
// The library throws exceptions for contract violations at API boundaries
// (bad parameters, malformed data) and uses the util/contracts.hpp macros
// (ADIV_ASSERT / ADIV_REQUIRE / ADIV_UNREACHABLE) for internal invariants
// that indicate a library bug rather than caller error.
#pragma once

#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace adiv {

/// Caller passed an argument that violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Input data (stream, corpus, model file) is malformed or inconsistent.
class DataError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A synthesis / search procedure could not satisfy its constraints
/// (e.g. no injectable minimal foreign sequence exists for the request).
class SynthesisError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Throws InvalidArgument with the given message unless cond holds.
inline void require(bool cond, const std::string& message) {
    if (!cond) throw InvalidArgument(message);
}

/// Throws DataError with the given message unless cond holds.
inline void require_data(bool cond, const std::string& message) {
    if (!cond) throw DataError(message);
}

}  // namespace adiv
