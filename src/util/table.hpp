// ASCII table rendering for bench/figure output.
//
// The figure harnesses print the paper's charts as text: aligned tables for
// numeric series and star-grids for the performance maps. This module owns
// the generic aligned-column table; the performance-map grid renderer lives
// in core/ next to the map type it draws.
#pragma once

#include <string>
#include <vector>

namespace adiv {

/// Column-aligned plain-text table. Collect rows, then render.
class TextTable {
public:
    /// Sets the header row; optional.
    void header(std::vector<std::string> cells);

    /// Appends one data row. Rows may have differing widths; shorter rows
    /// are padded with empty cells at render time.
    void add_row(std::vector<std::string> cells);

    /// Convenience: appends a row built from streamable values.
    template <typename... Ts>
    void add(const Ts&... values) {
        std::vector<std::string> cells;
        cells.reserve(sizeof...(values));
        (cells.push_back(stringify(values)), ...);
        add_row(std::move(cells));
    }

    /// Renders the table with single-space-padded columns and a rule under
    /// the header.
    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
    template <typename T>
    static std::string stringify(const T& value);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fixed(double value, int places = 3);

/// Formats a ratio in [0,1] as a percentage string like "12.3%".
std::string percent(double ratio, int places = 1);

}  // namespace adiv

#include <sstream>

namespace adiv {
template <typename T>
std::string TextTable::stringify(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
        return std::string(value);
    } else {
        std::ostringstream ss;
        ss << value;
        return ss.str();
    }
}
}  // namespace adiv
