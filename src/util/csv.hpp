// Minimal CSV emission for experiment artifacts.
//
// Benches write their series both as human-readable ASCII and as CSV so the
// figures can be re-plotted elsewhere. Quoting follows RFC 4180: fields
// containing commas, quotes, or newlines are quoted and embedded quotes
// doubled.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace adiv {

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(std::string_view field);

/// Streams rows of string fields as CSV lines to an ostream.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(&out) {}

    /// Writes one row; fields are escaped as needed.
    void row(const std::vector<std::string>& fields);

    /// Convenience: writes a row from heterogeneous streamable values.
    template <typename... Ts>
    void row_of(const Ts&... values) {
        std::vector<std::string> fields;
        fields.reserve(sizeof...(values));
        (fields.push_back(to_field(values)), ...);
        row(fields);
    }

private:
    template <typename T>
    static std::string to_field(const T& value) {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(value);
        } else {
            std::ostringstream ss;
            ss << value;
            return ss.str();
        }
    }

    std::ostream* out_;
};

}  // namespace adiv
