#include "util/thread_pool.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace adiv {

namespace {
// Set while a worker of some pool runs tasks; lets submit() recognize
// nested submissions (which must never block on a full queue).
thread_local const ThreadPool* tl_current_pool = nullptr;
}  // namespace

std::size_t ThreadPool::default_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
    if (threads == 0) threads = default_jobs();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    space_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
    require(task != nullptr, "cannot submit an empty task");
    ThreadPoolProbe* const probe = probe_.load(std::memory_order_acquire);
    double blocked_us = -1.0;
    std::size_t depth = 0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (capacity_ != 0 && !on_worker_thread()) {
            const auto space = [this] {
                return stopping_ || queue_.size() < capacity_;
            };
            // Time the wait only when it would actually block — the probe's
            // contract is "passes that blocked", and the common uncontended
            // submit must not pay for a clock read.
            if (probe != nullptr && !space()) {
                const Stopwatch watch;
                space_available_.wait(lock, space);
                blocked_us = watch.seconds() * 1e6;
            } else {
                space_available_.wait(lock, space);
            }
        }
        require(!stopping_, "cannot submit to a stopping thread pool");
        queue_.push_back(std::move(task));
        depth = queue_.size();
    }
    work_available_.notify_one();
    if (probe != nullptr) {
        if (blocked_us >= 0.0) probe->enqueue_blocked_us(blocked_us);
        probe->queue_depth_sampled(depth);
    }
}

std::size_t ThreadPool::queue_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

bool ThreadPool::on_worker_thread() const noexcept {
    return tl_current_pool == this;
}

std::future<void> ThreadPool::async(std::function<void()> task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::move(task));
    std::future<void> result = packaged->get_future();
    submit([packaged] { (*packaged)(); });
    return result;
}

void ThreadPool::worker_loop() {
    tl_current_pool = this;
    for (;;) {
        std::function<void()> task;
        ThreadPoolProbe* const probe = probe_.load(std::memory_order_acquire);
        double waited_us = -1.0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            const auto work = [this] { return stopping_ || !queue_.empty(); };
            if (probe != nullptr && !work()) {
                const Stopwatch watch;
                work_available_.wait(lock, work);
                waited_us = watch.seconds() * 1e6;
            } else {
                work_available_.wait(lock, work);
            }
            // Drain the queue before honouring shutdown: every submitted
            // task runs, so ~ThreadPool is a barrier, not a cancellation.
            if (queue_.empty()) {
                tl_current_pool = nullptr;
                return;  // shutdown wake — not a dequeue wait, don't record
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        if (capacity_ != 0) space_available_.notify_one();
        if (probe != nullptr && waited_us >= 0.0)
            probe->dequeue_waited_us(waited_us);
        task();
    }
}

TaskGroup::~TaskGroup() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
    require(task != nullptr, "cannot submit an empty task");
    std::size_t index = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        index = next_index_++;
        ++pending_;
    }
    enqueue(index, std::move(task));
}

void TaskGroup::run_indexed(std::size_t index, std::function<void()> task) {
    require(task != nullptr, "cannot submit an empty task");
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (index >= next_index_) next_index_ = index + 1;
        ++pending_;
    }
    enqueue(index, std::move(task));
}

void TaskGroup::enqueue(std::size_t index, std::function<void()> task) {
    pool_->submit([this, index, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            record_failure(index, std::current_exception());
        }
        // Notify while holding the lock: a waiter (wait() or ~TaskGroup) may
        // destroy this group the moment it observes pending_ == 0, so the
        // notification must complete before the waiter can re-acquire the
        // mutex and return.
        const std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
        idle_.notify_all();
    });
}

void TaskGroup::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
        const std::exception_ptr error = std::exchange(error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void TaskGroup::record_failure(std::size_t index, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_ || index < error_index_) {
        error_ = std::move(error);
        error_index_ = index;
    }
}

}  // namespace adiv
