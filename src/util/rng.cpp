#include "util/rng.hpp"

#include <cmath>

namespace adiv {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    has_spare_normal_ = true;
    return u * factor;
}

std::size_t Rng::weighted_pick(std::span<const double> weights) noexcept {
    double total = 0.0;
    for (double w : weights)
        if (w > 0.0) total += w;
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] <= 0.0) continue;
        target -= weights[i];
        if (target < 0.0) return i;
    }
    // Floating-point slack: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i > 0; --i)
        if (weights[i - 1] > 0.0) return i - 1;
    return 0;
}

}  // namespace adiv
