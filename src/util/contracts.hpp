// Contract macros: the machine-checked invariants behind the library's
// correctness claims.
//
// Three tiers, by audience and cost:
//
//   ADIV_REQUIRE(cond, what)   Precondition at an API boundary; throws
//                              InvalidArgument. Always on. `what` must be a
//                              string literal so the passing path costs one
//                              branch and no allocation (use util/error.hpp's
//                              require() when the message needs formatting).
//
//   ADIV_ASSERT(expr)          Internal invariant; a failure is a library
//                              bug, never caller error. Prints and aborts.
//                              Compiled in when ADIV_CHECKED is nonzero (the
//                              default, and the ADIV_CHECKED CMake option);
//                              with -DADIV_CHECKED=0 the expression is
//                              type-checked but never evaluated, so hot-path
//                              checks (per-window bounds, grid-slot
//                              addressing, frame accounting) cost nothing.
//
//   ADIV_UNREACHABLE(what)     Marks a path the control flow can never
//                              reach (exhaustive switches over enums).
//                              Always aborts — an impossible path taken is
//                              memory-unsafe to continue from in any build.
#pragma once

namespace adiv::detail {

[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
[[noreturn]] void unreachable_fail(const char* what, const char* file, int line);
/// Throws InvalidArgument(what).
[[noreturn]] void require_fail(const char* what);

}  // namespace adiv::detail

#ifndef ADIV_CHECKED
#define ADIV_CHECKED 1
#endif

#if ADIV_CHECKED
#define ADIV_ASSERT(expr) \
    ((expr) ? void(0) : ::adiv::detail::assert_fail(#expr, __FILE__, __LINE__))
#else
// Unevaluated but still parsed, so a checked build cannot rot in an
// unchecked one.
#define ADIV_ASSERT(expr) ((void)sizeof((expr) ? 1 : 0))
#endif

#define ADIV_REQUIRE(cond, what) \
    ((cond) ? void(0) : ::adiv::detail::require_fail(what))

#define ADIV_UNREACHABLE(what) \
    ::adiv::detail::unreachable_fail(what, __FILE__, __LINE__)
