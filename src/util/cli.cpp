#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace adiv {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void CliParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
    require(!options_.contains(name), "duplicate option --" + name);
    options_[name] = Option{default_value, help, /*is_flag=*/false, {}, false};
    order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
    require(!options_.contains(name), "duplicate flag --" + name);
    options_[name] = Option{"", help, /*is_flag=*/true, {}, false};
    order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(help_text().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::optional<std::string> inline_value;
        if (auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name.resize(eq);
        }
        auto it = options_.find(name);
        require(it != options_.end(), "unknown option --" + name);
        Option& opt = it->second;
        if (opt.is_flag) {
            require(!inline_value.has_value(), "flag --" + name + " takes no value");
            opt.flag_set = true;
        } else if (inline_value) {
            opt.value = std::move(inline_value);
        } else {
            require(i + 1 < argc, "option --" + name + " requires a value");
            opt.value = argv[++i];
        }
    }
    return true;
}

std::string CliParser::get(const std::string& name) const {
    auto it = options_.find(name);
    require(it != options_.end(), "option --" + name + " was never registered");
    require(!it->second.is_flag, "--" + name + " is a flag; use get_flag");
    return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
    const std::string text = get(name);
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    require(end && *end == '\0' && !text.empty(),
            "option --" + name + " expects an integer, got '" + text + "'");
    return v;
}

double CliParser::get_double(const std::string& name) const {
    const std::string text = get(name);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    require(end && *end == '\0' && !text.empty(),
            "option --" + name + " expects a number, got '" + text + "'");
    return v;
}

bool CliParser::get_flag(const std::string& name) const {
    auto it = options_.find(name);
    require(it != options_.end(), "flag --" + name + " was never registered");
    require(it->second.is_flag, "--" + name + " takes a value; use get");
    return it->second.flag_set;
}

std::string CliParser::help_text() const {
    std::string out = program_ + " — " + summary_ + "\n\noptions:\n";
    for (const auto& name : order_) {
        const Option& opt = options_.at(name);
        out += "  --" + name;
        if (!opt.is_flag) out += " <value>   (default: " + opt.default_value + ")";
        out += "\n      " + opt.help + "\n";
    }
    out += "  --help\n      print this message\n";
    return out;
}

}  // namespace adiv
