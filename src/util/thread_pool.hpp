// Fixed-size thread pool and task groups: the execution substrate of the
// experiment engine (src/engine) and the detection server (src/serve).
//
// ThreadPool runs submitted tasks on a fixed set of worker threads; tasks
// are picked up in FIFO submission order. An optional queue capacity turns
// submit() into a backpressure point: when the queue is full, submit blocks
// until a worker frees a slot — except from inside a pool task, where
// blocking could deadlock nested submissions, so worker-thread submits
// always enqueue immediately. TaskGroup tracks a set of related tasks —
// including tasks submitted from *inside* other tasks, which is how the
// engine expresses dependencies (a training job submits its scoring jobs
// once the model is ready) — and wait() blocks until the whole set has
// drained. Failures are deterministic regardless of thread interleaving:
// every task gets a submission index, and wait() rethrows the exception of
// the lowest-indexed failed task, so jobs=1 and jobs=N report the same error.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace adiv {

/// Observation hooks for the pool's blocking points. The pool itself stays
/// observability-free (util cannot depend on obs); the serve layer installs
/// an adapter (obs/profile.hpp: WaitSiteThreadPoolProbe) that forwards these
/// callbacks to wait sites. Implementations must be thread-safe and cheap —
/// they run on readers and workers — and must outlive the pool's last
/// submit. The timing callbacks fire only for passes that actually blocked.
class ThreadPoolProbe {
public:
    virtual ~ThreadPoolProbe() = default;

    /// submit() blocked `us` microseconds waiting for queue space.
    virtual void enqueue_blocked_us(double us) = 0;

    /// A worker waited `us` microseconds for the queue to become non-empty.
    virtual void dequeue_waited_us(double us) = 0;

    /// Queue depth observed right after a task was enqueued.
    virtual void queue_depth_sampled(std::size_t depth) = 0;
};

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 means default_jobs(). queue_capacity
    /// bounds the number of queued-but-not-started tasks; 0 = unbounded.
    explicit ThreadPool(std::size_t threads = 0, std::size_t queue_capacity = 0);

    /// Drains the queue (every submitted task runs), then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a fire-and-forget task. The task must not throw — use
    /// TaskGroup::run or async() when exceptions need to propagate.
    /// With a bounded queue, blocks until a slot is free — unless called
    /// from one of this pool's own workers (nested submissions never block).
    void submit(std::function<void()> task);

    /// Enqueues a task whose exceptions propagate through the future.
    std::future<void> async(std::function<void()> task);

    [[nodiscard]] std::size_t thread_count() const noexcept {
        return workers_.size();
    }

    /// Tasks queued and not yet picked up by a worker. A momentary value:
    /// use for backpressure metrics, not for synchronization.
    [[nodiscard]] std::size_t queue_depth() const;

    /// The configured capacity; 0 = unbounded.
    [[nodiscard]] std::size_t queue_capacity() const noexcept { return capacity_; }

    /// hardware_concurrency, clamped to at least 1 (the value CLI `--jobs 0`
    /// resolves to).
    static std::size_t default_jobs() noexcept;

    /// Installs (or clears, with nullptr) the blocking-point probe. The
    /// pointer is atomic, so installation may race running workers (they
    /// start at construction); install before concurrent submits begin so
    /// every *submit-side* pass is observed.
    void set_probe(ThreadPoolProbe* probe) noexcept {
        probe_.store(probe, std::memory_order_release);
    }

private:
    void worker_loop();
    [[nodiscard]] bool on_worker_thread() const noexcept;

    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable space_available_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t capacity_ = 0;
    bool stopping_ = false;
    std::atomic<ThreadPoolProbe*> probe_{nullptr};
};

/// A joinable set of pool tasks. Tasks may themselves call run() to add
/// follow-up work to the same group; wait() returns only once the group is
/// fully drained, nested submissions included.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}

    /// Blocks until the group drains; swallows task failures (call wait()
    /// first when errors matter).
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Submits a task belonging to this group. Safe to call from inside a
    /// group task.
    void run(std::function<void()> task);

    /// As run(), but with a caller-chosen error-ordering index. The engine
    /// pre-assigns canonical indices so the exception wait() rethrows does
    /// not depend on which worker failed first.
    void run_indexed(std::size_t index, std::function<void()> task);

    /// Blocks until every task (nested submissions included) has finished.
    /// If any task threw, rethrows the exception of the lowest submission
    /// index and leaves the group reusable for further run() calls.
    void wait();

private:
    void enqueue(std::size_t index, std::function<void()> task);
    void record_failure(std::size_t index, std::exception_ptr error);

    ThreadPool* pool_;
    std::mutex mutex_;
    std::condition_variable idle_;
    std::size_t pending_ = 0;
    std::size_t next_index_ = 0;
    std::size_t error_index_ = 0;
    std::exception_ptr error_;
};

}  // namespace adiv
