#include "util/csv.hpp"

namespace adiv {

std::string csv_escape(std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\r\n") != std::string_view::npos;
    if (!needs_quotes) return std::string(field);
    std::string out;
    out.reserve(field.size() + 2);
    out.push_back('"');
    for (char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i != 0) *out_ << ',';
        *out_ << csv_escape(fields[i]);
    }
    *out_ << '\n';
}

}  // namespace adiv
