// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library (data generation, anomaly
// synthesis, neural-network initialization) draws from an explicitly seeded
// Rng so that a given seed regenerates a corpus or an experiment bit-for-bit.
// The generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64,
// which is the recommended way to expand a 64-bit seed into the 256-bit state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace adiv {

/// Expands a 64-bit seed into a stream of well-mixed 64-bit values.
/// Used standalone for cheap hashing-style draws and to seed Xoshiro256ss.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state general-purpose PRNG.
/// Satisfies std::uniform_random_bit_generator so it can drive <random>
/// distributions, though the convenience members below avoid that dependency
/// (libstdc++ distributions are not bit-reproducible across versions).
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eedu) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept { return next(); }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
    /// method; exact (unbiased) and reproducible. bound must be > 0.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1) with 53 bits of randomness.
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Bernoulli draw with success probability p (clamped to [0,1]).
    bool chance(double p) noexcept { return uniform() < p; }

    /// Standard normal via Marsaglia polar method (reproducible).
    double normal() noexcept;

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept {
        return mean + stddev * normal();
    }

    /// Uniformly chosen element of a non-empty span.
    template <typename T>
    const T& pick(std::span<const T> items) noexcept {
        return items[below(items.size())];
    }

    template <typename T>
    const T& pick(const std::vector<T>& items) noexcept {
        return items[below(items.size())];
    }

    /// Index drawn from the discrete distribution proportional to weights.
    /// Requires at least one strictly positive weight.
    std::size_t weighted_pick(std::span<const double> weights) noexcept;

    /// Fisher-Yates shuffle, reproducible for a given seed.
    template <typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[below(i)]);
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem its own stream while keeping a single experiment seed.
    Rng fork() noexcept { return Rng(next()); }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    double spare_normal_ = 0.0;
    bool has_spare_normal_ = false;
};

}  // namespace adiv
