// Helpers for the line-oriented text serialization format used by model and
// stream persistence (io/model_io, io/stream_io).
//
// The format is whitespace-separated tokens with literal tags; doubles are
// written with 17 significant digits, which round-trips IEEE-754 doubles
// exactly. Readers throw DataError with the offending tag on any mismatch,
// so a truncated or corrupted file fails loudly.
#pragma once

#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace adiv {

/// Writes a double with enough digits for exact round-tripping.
inline void write_double(std::ostream& out, double value) {
    out << std::setprecision(17) << value;
}

/// Reads the next whitespace-separated token; throws DataError at EOF.
inline std::string read_token(std::istream& in, const std::string& what) {
    std::string token;
    if (!(in >> token))
        throw DataError("model file truncated while reading " + what);
    return token;
}

/// Reads a token and requires it to equal `tag` exactly.
inline void expect_tag(std::istream& in, const std::string& tag) {
    const std::string token = read_token(in, "tag '" + tag + "'");
    require_data(token == tag,
                 "model file corrupt: expected '" + tag + "', found '" + token + "'");
}

/// Reads an unsigned integer token.
inline std::uint64_t read_u64(std::istream& in, const std::string& what) {
    const std::string token = read_token(in, what);
    try {
        std::size_t consumed = 0;
        const std::uint64_t value = std::stoull(token, &consumed);
        require_data(consumed == token.size(), "trailing junk in " + what);
        return value;
    } catch (const std::logic_error&) {
        throw DataError("model file corrupt: '" + token + "' is not a valid " + what);
    }
}

/// Reads a size_t token.
inline std::size_t read_size(std::istream& in, const std::string& what) {
    return static_cast<std::size_t>(read_u64(in, what));
}

/// Reads a double token.
inline double read_double(std::istream& in, const std::string& what) {
    const std::string token = read_token(in, what);
    try {
        std::size_t consumed = 0;
        const double value = std::stod(token, &consumed);
        require_data(consumed == token.size(), "trailing junk in " + what);
        return value;
    } catch (const std::logic_error&) {
        throw DataError("model file corrupt: '" + token + "' is not a valid " + what);
    }
}

}  // namespace adiv
