#include "util/contracts.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace adiv::detail {

void assert_fail(const char* expr, const char* file, int line) {
    std::fprintf(stderr, "adiv internal invariant violated: %s (%s:%d)\n", expr,
                 file, line);
    std::abort();
}

void unreachable_fail(const char* what, const char* file, int line) {
    std::fprintf(stderr, "adiv reached an impossible path: %s (%s:%d)\n", what,
                 file, line);
    std::abort();
}

void require_fail(const char* what) { throw InvalidArgument(what); }

}  // namespace adiv::detail
