#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace adiv {

void TextTable::header(std::vector<std::string> cells) {
    header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths;
    auto absorb = [&widths](const std::vector<std::string>& row) {
        if (row.size() > widths.size()) widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    absorb(header_);
    for (const auto& row : rows_) absorb(row);

    std::ostringstream out;
    auto emit = [&out, &widths](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < row.size() ? row[i] : std::string{};
            out << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 != widths.size()) out << "  ";
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths) total += w;
        total += widths.empty() ? 0 : 2 * (widths.size() - 1);
        out << std::string(total, '-') << '\n';
    }
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::string fixed(double value, int places) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", places, value);
    return buf;
}

std::string percent(double ratio, int places) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", places, ratio * 100.0);
    return buf;
}

}  // namespace adiv
