// Umbrella header: the full public API of the adiv library.
//
// adiv reproduces "The Effects of Algorithmic Diversity on Anomaly Detector
// Performance" (Tan & Maxion, DSN 2005): four diverse sequence-based anomaly
// detectors, the synthetic corpus and minimal-foreign-sequence machinery they
// are evaluated on, and the diversity/coverage analysis built on top.
#pragma once

// Observability: metrics, trace spans, run manifests, live telemetry,
// hot-path profiling (wait sites, stage stamps, flight recorder)
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/profile.hpp"
#include "obs/sampler.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "obs/traceview.hpp"

// Utility substrate
#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/text_serial.hpp"
#include "util/thread_pool.hpp"

// Sequence substrate
#include "seq/alphabet.hpp"
#include "seq/conditional_model.hpp"
#include "seq/ngram.hpp"
#include "seq/ngram_table.hpp"
#include "seq/stats.hpp"
#include "seq/stream.hpp"
#include "seq/types.hpp"

// Data generation
#include "datagen/corpus.hpp"
#include "datagen/markov_chain.hpp"
#include "datagen/trace_model.hpp"

// Anomaly synthesis and injection
#include "anomaly/foreign.hpp"
#include "anomaly/injection.hpp"
#include "anomaly/mfs_builder.hpp"
#include "anomaly/rare_anomaly.hpp"
#include "anomaly/subsequence_oracle.hpp"
#include "anomaly/suite.hpp"

// Neural-network substrate
#include "nn/encoding.hpp"
#include "nn/hmm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"

// Detectors
#include "detect/detector.hpp"
#include "detect/hmm_detector.hpp"
#include "detect/instrumented.hpp"
#include "detect/lane_brodley.hpp"
#include "detect/lfc.hpp"
#include "detect/lookahead_pairs.hpp"
#include "detect/markov.hpp"
#include "detect/nn_detector.hpp"
#include "detect/registry.hpp"
#include "detect/rule_detector.hpp"
#include "detect/score_memo.hpp"
#include "detect/stide.hpp"
#include "detect/tstide.hpp"

// Persistence
#include "io/model_io.hpp"
#include "io/stream_io.hpp"

// Core evaluation
#include "core/alarms.hpp"
#include "core/capability.hpp"
#include "core/diversity.hpp"
#include "core/ensemble.hpp"
#include "core/experiment.hpp"
#include "core/false_alarm.hpp"
#include "core/online.hpp"
#include "core/perf_map.hpp"
#include "core/response.hpp"

// Experiment engine: plan / scheduler / sink layers
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "engine/sink.hpp"

// Online detection server: wire protocol, transports, sessions, server
#include "serve/client.hpp"
#include "serve/http_metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
