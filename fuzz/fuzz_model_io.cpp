// Fuzz target for model deserialization (io/model_io.cpp). The contract:
// arbitrary bytes fed to load_detector may produce DataError or
// InvalidArgument, but never a crash or unbounded allocation. Inputs that do
// load must yield a trained, scoreable detector whose re-serialization loads
// again (save/load round-trip stability).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "io/model_io.hpp"
#include "seq/stream.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);
    std::istringstream in(text);
    try {
        const auto detector = adiv::load_detector(in);
        if (!detector) return 0;

        // A successfully loaded model must be usable and round-trippable.
        std::ostringstream out;
        adiv::save_detector(*detector, out);
        std::istringstream again(out.str());
        (void)adiv::load_detector(again);
    } catch (const adiv::DataError&) {
    } catch (const adiv::InvalidArgument&) {
    }
    return 0;
}
