// Deterministic corpus-replay driver: the no-libFuzzer fallback that runs in
// every build, so the fuzz targets' contracts are enforced by plain ctest
// (and by the ASan job in ci_check.sh --sanitize address).
//
// For each file in the corpus directories given on the command line, the
// driver runs LLVMFuzzerTestOneInput on the raw bytes and then on a fixed
// family of mutations: prefixes (framing mid-frame truncation), single-byte
// corruptions at striped offsets, a doubled input (back-to-back frames), and
// a one-byte garbage suffix. Everything is a pure function of the corpus
// bytes — no randomness, no time — so failures reproduce exactly.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::size_t g_runs = 0;

void run(const std::string& bytes) {
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++g_runs;
}

void replay_with_mutations(const std::string& bytes) {
    run(bytes);

    // Truncations: every prefix for short inputs, eight strides otherwise.
    const std::size_t step = bytes.size() <= 16 ? 1 : bytes.size() / 8;
    for (std::size_t len = 0; len < bytes.size(); len += step)
        run(bytes.substr(0, len));

    // Striped single-byte corruptions (bit flips and digit-range swaps —
    // length prefixes are decimal text, so '0'..'9' perturbations matter).
    for (std::size_t pos = 0; pos < bytes.size(); pos += (bytes.size() / 16) + 1) {
        std::string flipped = bytes;
        flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
        run(flipped);
        std::string swapped = bytes;
        swapped[pos] = static_cast<char>('0' + (swapped[pos] & 0x07));
        run(swapped);
    }

    run(bytes + bytes);
    run(bytes + "\xff");
    run("\x00" + bytes);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
        return 2;
    }
    std::vector<std::filesystem::path> files;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg(argv[i]);
        if (std::filesystem::is_directory(arg)) {
            for (const auto& entry : std::filesystem::directory_iterator(arg))
                if (entry.is_regular_file()) files.push_back(entry.path());
        } else if (std::filesystem::is_regular_file(arg)) {
            files.push_back(arg);
        } else {
            std::fprintf(stderr, "error: no such corpus input: %s\n", argv[i]);
            return 2;
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "error: empty corpus\n");
        return 2;
    }
    std::sort(files.begin(), files.end());

    for (const auto& file : files) {
        std::ifstream in(file, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        replay_with_mutations(buffer.str());
    }
    std::printf("replayed %zu corpus file(s), %zu total executions\n",
                files.size(), g_runs);
    return 0;
}
