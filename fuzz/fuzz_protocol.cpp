// Fuzz target for the serve wire protocol: framing (FrameDecoder) and the
// record grammar (parse_request / parse_response). The contract under test:
// arbitrary bytes may produce DataError, but never a crash, an ADIV_ASSERT
// failure, or an out-of-bounds read (run under ASan via ci_check.sh).
//
// The same entry point serves two drivers: libFuzzer (ADIV_FUZZ=ON with
// Clang) and the deterministic corpus-replay main in replay_main.cpp.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view bytes(reinterpret_cast<const char*>(data), size);

    // Framing: feed in two chunks so the partial-frame buffering path is
    // exercised, then drain. A framing error poisons the stream — stop.
    adiv::serve::FrameDecoder decoder;
    try {
        const std::size_t split = size / 2;
        decoder.feed(bytes.substr(0, split));
        while (decoder.next()) {
        }
        decoder.feed(bytes.substr(split));
        while (const auto payload = decoder.next()) {
            // Every decoded payload is also a candidate record.
            try {
                (void)adiv::serve::parse_request(*payload);
            } catch (const adiv::DataError&) {
            }
            try {
                (void)adiv::serve::parse_response(*payload);
            } catch (const adiv::DataError&) {
            }
        }
    } catch (const adiv::DataError&) {
    }

    // Record grammar on the raw input, and round-trip whatever parses:
    // serialize(parse(x)) must itself parse, and a parsed payload must
    // survive re-framing.
    try {
        const adiv::serve::Request request = adiv::serve::parse_request(bytes);
        const std::string payload = adiv::serve::serialize(request);
        (void)adiv::serve::parse_request(payload);
        adiv::serve::FrameDecoder reframe;
        reframe.feed(adiv::serve::encode_frame(payload));
        (void)reframe.next();
    } catch (const adiv::DataError&) {
    } catch (const adiv::InvalidArgument&) {
    }
    try {
        const adiv::serve::Response response = adiv::serve::parse_response(bytes);
        (void)adiv::serve::parse_response(adiv::serve::serialize(response));
    } catch (const adiv::DataError&) {
    } catch (const adiv::InvalidArgument&) {
    }
    return 0;
}
