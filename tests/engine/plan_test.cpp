// ExperimentPlan: the value type describing a (detectors x windows x
// anomaly-sizes) experiment grid.
#include <gtest/gtest.h>

#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TEST(ExperimentPlan, DefaultsToTheSuiteGrid) {
    ExperimentPlan plan(test::small_suite());
    plan.add_detector(DetectorKind::Stide);
    EXPECT_EQ(plan.anomaly_sizes(), test::small_suite().anomaly_sizes());
    EXPECT_EQ(plan.window_lengths(), test::small_suite().window_lengths());
    EXPECT_EQ(plan.detectors().size(), 1u);
    EXPECT_EQ(plan.detectors()[0].name, "stide");
    EXPECT_EQ(plan.cells_per_map(),
              plan.anomaly_sizes().size() * plan.window_lengths().size());
    EXPECT_EQ(plan.cell_count(), plan.cells_per_map());
    EXPECT_NO_THROW(plan.validate());
}

TEST(ExperimentPlan, CellCountScalesWithDetectors) {
    ExperimentPlan plan(test::small_suite());
    plan.add_detector(DetectorKind::Stide);
    plan.add_detector(DetectorKind::Markov);
    EXPECT_EQ(plan.cell_count(), 2 * plan.cells_per_map());
}

TEST(ExperimentPlan, AxisRestrictionNarrowsTheGrid) {
    ExperimentPlan plan(test::small_suite());
    plan.add_detector(DetectorKind::Stide);
    plan.with_window_lengths({2, 4}).with_anomaly_sizes({3});
    EXPECT_EQ(plan.window_lengths(), (std::vector<std::size_t>{2, 4}));
    EXPECT_EQ(plan.anomaly_sizes(), (std::vector<std::size_t>{3}));
    EXPECT_EQ(plan.cell_count(), 2u);
    EXPECT_NO_THROW(plan.validate());
}

TEST(ExperimentPlan, ValidateRejectsEmptyDetectors) {
    ExperimentPlan plan(test::small_suite());
    EXPECT_THROW(plan.validate(), InvalidArgument);
}

TEST(ExperimentPlan, ValidateRejectsAxisValuesOutsideTheSuite) {
    ExperimentPlan plan(test::small_suite());
    plan.add_detector(DetectorKind::Stide);
    plan.with_window_lengths({99});
    EXPECT_THROW(plan.validate(), InvalidArgument);
}

TEST(ExperimentPlan, ValidateRejectsEmptyAxes) {
    ExperimentPlan plan(test::small_suite());
    plan.add_detector(DetectorKind::Stide);
    plan.with_anomaly_sizes({});
    EXPECT_THROW(plan.validate(), InvalidArgument);
}

TEST(ExperimentPlan, RejectsUnnamedOrNullDetector) {
    ExperimentPlan plan(test::small_suite());
    EXPECT_THROW(plan.add_detector("", factory_for(DetectorKind::Stide)),
                 InvalidArgument);
    EXPECT_THROW(plan.add_detector("stide", DetectorFactory{}), InvalidArgument);
}

}  // namespace
}  // namespace adiv
