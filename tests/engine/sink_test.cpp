// ResultSink implementations: the unified rendering layer of the engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "engine/sink.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

/// One small stide plan, run once per binary.
const PlanRun& stide_run() {
    static const PlanRun run = [] {
        ExperimentPlan plan(test::small_suite());
        plan.add_detector(DetectorKind::Stide);
        plan.with_anomaly_sizes({2, 3}).with_window_lengths({2, 3, 4});
        return run_plan(plan, EngineOptions{});
    }();
    return run;
}

void replay(ResultSink& sink) {
    const PlanRun& run = stide_run();
    for (std::size_t d = 0; d < run.maps.size(); ++d)
        sink.map_ready(run.maps[d], run.timings[d]);
    sink.plan_finished(run.summary);
}

TEST(ChartSink, RendersBannerChartCountsAndCsv) {
    std::ostringstream out;
    ChartSink sink(out);
    replay(sink);
    const std::string text = out.str();
    EXPECT_NE(text.find("==== Performance map: stide ===="), std::string::npos);
    EXPECT_NE(text.find("summary: capable="), std::string::npos);
    EXPECT_NE(text.find("-- csv --"), std::string::npos);
    EXPECT_NE(text.find("# plan: 6 cells"), std::string::npos);
    EXPECT_NE(text.find("jobs=1"), std::string::npos);
}

TEST(ChartSink, OptionsSuppressSections) {
    std::ostringstream out;
    ChartSink::Options options;
    options.banner = false;
    options.csv_block = false;
    options.timing = false;
    ChartSink sink(out, options);
    replay(sink);
    const std::string text = out.str();
    EXPECT_EQ(text.find("===="), std::string::npos);
    EXPECT_EQ(text.find("-- csv --"), std::string::npos);
    EXPECT_EQ(text.find("# train"), std::string::npos);
    EXPECT_NE(text.find("summary: capable="), std::string::npos);
}

TEST(CsvFileSink, WritesHeaderRowsAndSummaryTrailer) {
    const std::string path = ::testing::TempDir() + "adiv_sink_test.csv";
    {
        CsvFileSink sink(path);
        replay(sink);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "detector,anomaly_size,window_length,outcome,max_response");
    std::size_t rows = 0;
    std::string last;
    while (std::getline(in, line)) {
        last = line;
        if (line.rfind("stide,", 0) == 0) ++rows;
    }
    EXPECT_EQ(rows, 6u);  // 2 anomaly sizes x 3 windows
    EXPECT_EQ(last.rfind("# cells=6", 0), 0u);
    std::remove(path.c_str());
}

TEST(CsvFileSink, ThrowsWhenFileCannotOpen) {
    EXPECT_THROW(CsvFileSink("/nonexistent-dir/x/y.csv"), DataError);
}

TEST(JsonSink, EmitsSchemaMapsAndSummary) {
    std::ostringstream out;
    JsonSink sink(out);
    replay(sink);
    const std::string json = out.str();
    EXPECT_EQ(json.find("{\"schema\":\"adiv-plan-run/1\""), 0u);
    EXPECT_NE(json.find("\"maps\":[{\"detector\":\"stide\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\":[{\"anomaly_size\":2,\"window_length\":2"),
              std::string::npos);
    EXPECT_NE(json.find("\"summary\":{\"jobs\":1"), std::string::npos);
    EXPECT_NE(json.find("\"cells_per_second\":"), std::string::npos);
}

TEST(MultiSink, FansOutToEverySink) {
    std::ostringstream chart_out;
    std::ostringstream json_out;
    ChartSink chart(chart_out);
    JsonSink json(json_out);
    MultiSink multi({&chart, &json});
    replay(multi);
    EXPECT_NE(chart_out.str().find("==== Performance map: stide ===="),
              std::string::npos);
    EXPECT_NE(json_out.str().find("\"schema\":\"adiv-plan-run/1\""),
              std::string::npos);
}

TEST(MultiSink, RejectsNullSinks) {
    EXPECT_THROW(MultiSink({nullptr}), InvalidArgument);
}

TEST(RunPlanWithSink, DeliversMapsInPlanOrder) {
    ExperimentPlan plan(test::small_suite());
    plan.add_detector(DetectorKind::Stide);
    plan.add_detector(DetectorKind::Markov);
    plan.with_anomaly_sizes({2}).with_window_lengths({2, 3});
    std::ostringstream out;
    ChartSink sink(out);
    EngineOptions options;
    options.jobs = 2;
    const PlanRun run = run_plan(plan, options, sink);
    EXPECT_EQ(run.maps.size(), 2u);
    const std::string text = out.str();
    const auto stide_pos = text.find("Performance map: stide");
    const auto markov_pos = text.find("Performance map: markov");
    ASSERT_NE(stide_pos, std::string::npos);
    ASSERT_NE(markov_pos, std::string::npos);
    EXPECT_LT(stide_pos, markov_pos) << "maps must arrive in plan order";
}

}  // namespace
}  // namespace adiv
