// The engine's core guarantee: parallel plan runs produce bit-identical maps
// to the serial path, for every detector kind, regardless of job count.
//
// The scheduler writes each cell into a pre-sized slot addressed by grid
// position, so assembly never depends on completion order; this test pins
// that property cell-by-cell (outcome, exact response, argmax position) for
// all eight detectors on a reduced grid.
#include <gtest/gtest.h>

#include <vector>

#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

/// Reduced grid over the shared small corpus: AS 2..5 x DW 2..6 keeps eight
/// detectors (including the HMM and the NN) affordable.
const EvaluationSuite& reduced_suite() {
    static const EvaluationSuite suite = [] {
        SuiteConfig config;
        config.min_anomaly_size = 2;
        config.max_anomaly_size = 5;
        config.min_window = 2;
        config.max_window = 6;
        config.background_length = 512;
        return EvaluationSuite::build(test::small_corpus(), config);
    }();
    return suite;
}

ExperimentPlan all_detector_plan() {
    DetectorSettings settings;
    settings.nn.epochs = 100;
    settings.hmm.iterations = 10;
    ExperimentPlan plan(reduced_suite());
    for (DetectorKind kind : all_detectors()) plan.add_detector(kind, settings);
    return plan;
}

PlanRun run_with_jobs(std::size_t jobs) {
    EngineOptions options;
    options.jobs = jobs;
    return run_plan(all_detector_plan(), options);
}

TEST(EngineDeterminism, ParallelMapsAreBitIdenticalToSerial) {
    const PlanRun serial = run_with_jobs(1);
    const PlanRun parallel = run_with_jobs(4);

    ASSERT_EQ(serial.maps.size(), all_detectors().size());
    ASSERT_EQ(parallel.maps.size(), serial.maps.size());
    for (std::size_t d = 0; d < serial.maps.size(); ++d) {
        const PerformanceMap& a = serial.maps[d];
        const PerformanceMap& b = parallel.maps[d];
        EXPECT_EQ(a.detector_name(), b.detector_name());
        for (std::size_t as : reduced_suite().anomaly_sizes()) {
            for (std::size_t dw : reduced_suite().window_lengths()) {
                const SpanScore& sa = a.at(as, dw);
                const SpanScore& sb = b.at(as, dw);
                EXPECT_EQ(sa.outcome, sb.outcome)
                    << a.detector_name() << " AS=" << as << " DW=" << dw;
                // Bit-identical, not approximately equal: the parallel path
                // must run the exact same computation on the exact same data.
                EXPECT_EQ(sa.max_response, sb.max_response)
                    << a.detector_name() << " AS=" << as << " DW=" << dw;
                EXPECT_EQ(sa.argmax_window, sb.argmax_window)
                    << a.detector_name() << " AS=" << as << " DW=" << dw;
            }
        }
    }
}

TEST(EngineDeterminism, SummaryCountsAreIndependentOfJobs) {
    const PlanRun serial = run_with_jobs(1);
    const PlanRun parallel = run_with_jobs(3);
    EXPECT_EQ(serial.summary.cell_count, parallel.summary.cell_count);
    EXPECT_EQ(serial.summary.detector_count, parallel.summary.detector_count);
    EXPECT_EQ(serial.summary.jobs, 1u);
    EXPECT_EQ(parallel.summary.jobs, 3u);
    EXPECT_GT(parallel.summary.wall_seconds, 0.0);
    EXPECT_GT(parallel.summary.cells_per_second, 0.0);
}

TEST(EngineDeterminism, ProgressSeesEveryCellUnderParallelRuns) {
    ExperimentPlan plan(reduced_suite());
    plan.add_detector(DetectorKind::Stide);
    plan.add_detector(DetectorKind::Markov);
    EngineOptions options;
    options.jobs = 4;
    std::vector<std::pair<std::size_t, std::size_t>> seen;  // serialized hook
    options.progress = [&seen](std::size_t as, std::size_t dw,
                               const SpanScore&) { seen.emplace_back(as, dw); };
    (void)run_plan(plan, options);
    EXPECT_EQ(seen.size(), plan.cell_count());
}

TEST(EngineDeterminism, ParallelErrorMatchesSerialError) {
    // A factory that fails for one window must surface the same error type
    // from any job count (canonical-index rethrow).
    const DetectorFactory broken = [](std::size_t dw) {
        return make_detector(DetectorKind::Stide, dw == 4 ? dw + 1 : dw);
    };
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ExperimentPlan plan(reduced_suite());
        plan.add_detector("broken", broken);
        EngineOptions options;
        options.jobs = jobs;
        EXPECT_THROW((void)run_plan(plan, options), InvalidArgument)
            << "jobs=" << jobs;
    }
}

}  // namespace
}  // namespace adiv
