#include "io/stream_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "datagen/trace_model.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TEST(StreamIo, RoundTripsSmallStream) {
    const EventStream original(8, {0, 1, 2, 3, 4, 5, 6, 7, 0, 1});
    std::stringstream buffer;
    save_stream(original, buffer);
    const EventStream restored = load_stream(buffer);
    EXPECT_EQ(restored.alphabet_size(), 8u);
    EXPECT_EQ(restored.events(), original.events());
}

TEST(StreamIo, RoundTripsLargeStream) {
    const EventStream original = test::small_corpus().generate_heldout(30'000, 5);
    std::stringstream buffer;
    save_stream(original, buffer);
    EXPECT_EQ(load_stream(buffer).events(), original.events());
}

TEST(StreamIo, RoundTripsEmptyStream) {
    const EventStream original(4);
    std::stringstream buffer;
    save_stream(original, buffer);
    const EventStream restored = load_stream(buffer);
    EXPECT_TRUE(restored.empty());
    EXPECT_EQ(restored.alphabet_size(), 4u);
}

TEST(StreamIo, RejectsBadHeader) {
    std::istringstream in("adiv-noise 1 4 0");
    EXPECT_THROW((void)load_stream(in), DataError);
}

TEST(StreamIo, RejectsTruncation) {
    std::istringstream in("adiv-stream 1 4 5 0 1 2");
    EXPECT_THROW((void)load_stream(in), DataError);
}

TEST(StreamIo, RejectsOutOfAlphabetSymbol) {
    std::istringstream in("adiv-stream 1 4 2 0 7");
    EXPECT_THROW((void)load_stream(in), DataError);
}

TEST(StreamIo, FileHelpersRoundTrip) {
    const EventStream original(8, {3, 1, 4, 1, 5});
    const std::string path = ::testing::TempDir() + "/adiv_stream_io_test.adiv";
    save_stream_file(original, path);
    EXPECT_EQ(load_stream_file(path).events(), original.events());
    std::remove(path.c_str());
    EXPECT_THROW((void)load_stream_file(path), DataError);
}

TEST(TraceIo, RoundTripsNamedTrace) {
    const TraceModel model = make_syscall_model();
    const EventStream stream = model.generate(500, 11);
    std::stringstream buffer;
    save_trace(model.alphabet(), stream, buffer);
    const auto [alphabet, restored] = load_trace(buffer);
    EXPECT_EQ(alphabet.size(), model.alphabet().size());
    EXPECT_EQ(alphabet.name(0), model.alphabet().name(0));
    EXPECT_EQ(restored.events(), stream.events());
}

TEST(TraceIo, RejectsMismatchedAlphabet) {
    const Alphabet alphabet({"a", "b"});
    const EventStream stream(3, {0, 1, 2});
    std::ostringstream out;
    EXPECT_THROW(save_trace(alphabet, stream, out), InvalidArgument);
}

TEST(TraceIo, RejectsUnknownSymbolName) {
    std::istringstream in("adiv-trace 1 2 2 open close open missing");
    EXPECT_THROW((void)load_trace(in), InvalidArgument);
}

TEST(TraceIo, FileHelpersRoundTrip) {
    const TraceModel model = make_command_model();
    const EventStream stream = model.generate(200, 3);
    const std::string path = ::testing::TempDir() + "/adiv_trace_io_test.adiv";
    save_trace_file(model.alphabet(), stream, path);
    const auto [alphabet, restored] = load_trace_file(path);
    EXPECT_EQ(restored.events(), stream.events());
    EXPECT_EQ(alphabet.id("vi"), model.alphabet().id("vi"));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace adiv
