#include "io/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/online.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

// Round-trip property, parameterized over every detector kind: a model saved
// and reloaded produces bit-identical responses on both normal data and an
// anomaly stream, with no retraining.
class ModelRoundTrip : public ::testing::TestWithParam<DetectorKind> {};

TEST_P(ModelRoundTrip, ReloadedModelScoresIdentically) {
    const DetectorKind kind = GetParam();
    DetectorSettings settings;
    settings.nn.epochs = 150;
    settings.hmm.iterations = 10;
    const std::size_t dw = 5;
    auto original = make_detector(kind, dw, settings);
    original->train(test::small_corpus().training());

    std::stringstream buffer;
    save_detector(*original, buffer);
    const auto restored = load_detector(buffer);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->name(), original->name());
    EXPECT_EQ(restored->window_length(), dw);
    EXPECT_EQ(restored->alphabet_size(), original->alphabet_size());

    const EventStream heldout = test::small_corpus().generate_heldout(5'000, 42);
    EXPECT_EQ(restored->score(heldout), original->score(heldout));
    const EventStream& anomaly_stream =
        test::small_suite().entry(4, dw).stream.stream;
    EXPECT_EQ(restored->score(anomaly_stream), original->score(anomaly_stream));
}

TEST_P(ModelRoundTrip, ReloadedModelReplaysOnlineIdentically) {
    // The serving property: a daemon that load_detector()s a model must
    // produce the same per-window responses through an OnlineScorer as the
    // process that trained it — event-at-a-time, for every registered kind.
    const DetectorKind kind = GetParam();
    DetectorSettings settings;
    settings.nn.epochs = 150;
    settings.hmm.iterations = 10;
    const std::size_t dw = 5;
    auto original = make_detector(kind, dw, settings);
    original->train(test::small_corpus().training());

    std::stringstream buffer;
    save_detector(*original, buffer);
    const auto restored = load_detector(buffer);
    ASSERT_NE(restored, nullptr);

    const EventStream heldout = test::small_corpus().generate_heldout(3'000, 7);
    OnlineScorer trained_side(*original);
    OnlineScorer loaded_side(*restored);
    for (std::size_t i = 0; i < heldout.size(); ++i) {
        const auto expected = trained_side.push(heldout[i]);
        const auto actual = loaded_side.push(heldout[i]);
        ASSERT_EQ(actual.has_value(), expected.has_value()) << "event " << i;
        if (expected) ASSERT_EQ(*actual, *expected) << "event " << i;
    }
    EXPECT_EQ(loaded_side.windows_scored(), trained_side.windows_scored());
    EXPECT_EQ(loaded_side.alarms(), trained_side.alarms());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ModelRoundTrip,
                         ::testing::ValuesIn(all_detectors()),
                         [](const auto& info) {
                             std::string name = to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST(ModelIo, SavingUntrainedDetectorThrows) {
    for (DetectorKind kind : all_detectors()) {
        const auto d = make_detector(kind, 4);
        std::ostringstream out;
        EXPECT_THROW(save_detector(*d, out), InvalidArgument) << to_string(kind);
    }
}

TEST(ModelIo, RejectsWrongEnvelopeTag) {
    std::istringstream in("not-a-model 1 stide");
    EXPECT_THROW((void)load_detector(in), DataError);
}

TEST(ModelIo, RejectsUnsupportedVersion) {
    std::istringstream in("adiv-model 99 stide 2 8 0");
    EXPECT_THROW((void)load_detector(in), DataError);
}

TEST(ModelIo, RejectsUnknownKind) {
    std::istringstream in("adiv-model 1 quantum");
    EXPECT_THROW((void)load_detector(in), InvalidArgument);
}

TEST(ModelIo, RejectsTruncatedBody) {
    auto d = make_detector(DetectorKind::Stide, 3);
    d->train(test::small_corpus().training());
    std::ostringstream out;
    save_detector(*d, out);
    const std::string full = out.str();
    std::istringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW((void)load_detector(truncated), DataError);
}

TEST(ModelIo, RejectsOutOfAlphabetSymbols) {
    std::istringstream in("adiv-model 1 stide 2 8 1 9 9 5");
    EXPECT_THROW((void)load_detector(in), DataError);
}

TEST(ModelIo, FileHelpersRoundTrip) {
    auto d = make_detector(DetectorKind::Markov, 4);
    d->train(test::small_corpus().training());
    const std::string path = ::testing::TempDir() + "/adiv_model_io_test.adiv";
    save_detector_file(*d, path);
    const auto restored = load_detector_file(path);
    const EventStream heldout = test::small_corpus().generate_heldout(2'000, 9);
    EXPECT_EQ(restored->score(heldout), d->score(heldout));
    std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
    EXPECT_THROW((void)load_detector_file("/nonexistent/path/model.adiv"),
                 DataError);
}

TEST(ModelIo, RuleModelPreservesRuleList) {
    RuleDetector original(4);
    original.train(test::small_corpus().training());
    std::stringstream buffer;
    original.save_model(buffer);
    const RuleDetector restored = RuleDetector::load_model(buffer);
    ASSERT_EQ(restored.rules().size(), original.rules().size());
    for (std::size_t i = 0; i < original.rules().size(); ++i) {
        EXPECT_EQ(restored.rules()[i].prediction, original.rules()[i].prediction);
        EXPECT_DOUBLE_EQ(restored.rules()[i].confidence,
                         original.rules()[i].confidence);
        EXPECT_EQ(restored.rules()[i].conditions.size(),
                  original.rules()[i].conditions.size());
    }
}

TEST(ModelIo, HmmModelPreservesParametersExactly) {
    HmmDetectorConfig cfg;
    cfg.iterations = 8;
    HmmDetector original(3, cfg);
    original.train(test::small_corpus().training());
    std::stringstream buffer;
    original.save_model(buffer);
    const HmmDetector restored = HmmDetector::load_model(buffer);
    EXPECT_DOUBLE_EQ(restored.training_log_likelihood(),
                     original.training_log_likelihood());
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            EXPECT_DOUBLE_EQ(restored.model().transitions().at(i, j),
                             original.model().transitions().at(i, j));
}

}  // namespace
}  // namespace adiv
