// Self-scan: the repo's own sources must be free of unsuppressed lint
// findings. This is the tier-1 guard that keeps the invariants enforced by
// src/lint from regressing — a new rand() call or an umbrella-header gap
// fails this test, not just the standalone tool.
#include "lint/scan.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adiv::lint {
namespace {

#ifndef ADIV_SOURCE_ROOT
#error "ADIV_SOURCE_ROOT must be defined by the build (see tests/CMakeLists.txt)"
#endif

TEST(LintSelfScan, TreeScansCleanly) {
    const std::vector<SourceFile> sources = collect_tree_sources(ADIV_SOURCE_ROOT);
    // Sanity: the scan actually saw the tree, not an empty directory.
    ASSERT_GT(sources.size(), 50u);

    const std::vector<Finding> findings = run_lint(sources, LintOptions{});
    std::ostringstream report;
    for (const Finding& finding : findings)
        report << finding.file << ":" << finding.line << ": [" << finding.rule
               << "] " << finding.message << "\n";
    EXPECT_TRUE(findings.empty()) << report.str();
}

TEST(LintSelfScan, ScanCoversKnownSubsystems) {
    const std::vector<SourceFile> sources = collect_tree_sources(ADIV_SOURCE_ROOT);
    bool saw_detect = false, saw_serve = false, saw_tool = false;
    for (const SourceFile& source : sources) {
        if (source.path.find("src/detect/") != std::string::npos) saw_detect = true;
        if (source.path.find("src/serve/") != std::string::npos) saw_serve = true;
        if (source.path.find("tools/") != std::string::npos) saw_tool = true;
    }
    EXPECT_TRUE(saw_detect);
    EXPECT_TRUE(saw_serve);
    EXPECT_TRUE(saw_tool);
}

}  // namespace
}  // namespace adiv::lint
