// Fixture tests for every lint rule: one violating and one clean sample per
// rule, plus suppression-comment behavior. The snippets live in raw strings
// inside this file — which is exactly why tests/ is outside the linter's
// default scan set.
#include "lint/rules.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adiv::lint {
namespace {

std::vector<Finding> lint_one(const std::string& path, const std::string& text,
                              const std::vector<std::string>& rules = {}) {
    LintOptions options;
    options.rules = rules;
    return run_lint({SourceFile{path, text}}, options);
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
    std::size_t n = 0;
    for (const Finding& finding : findings)
        if (finding.rule == rule) ++n;
    return n;
}

// --- nondeterminism --------------------------------------------------------

TEST(LintNondeterminism, FlagsRandFamilyCalls) {
    const auto findings = lint_one("src/x.cpp", R"(
        int noise() { return rand(); }
        void reseed() { srand(42); }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 2u);
}

TEST(LintNondeterminism, FlagsRandomDevice) {
    const auto findings = lint_one("src/x.cpp", R"(
        #include <random>
        std::mt19937 make() { std::random_device rd; return std::mt19937(rd()); }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 1u);
}

TEST(LintNondeterminism, FlagsWallClockReads) {
    const auto findings = lint_one("src/x.cpp", R"(
        long a() { return std::time(nullptr); }
        long b() { return time(0); }
        long c() { return std::chrono::system_clock::now().time_since_epoch().count(); }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 3u);
}

TEST(LintNondeterminism, CleanSeededRngAndSteadyClock) {
    const auto findings = lint_one("src/x.cpp", R"(
        #include "util/rng.hpp"
        #include <chrono>
        double draw(adiv::Rng& rng) { return rng.uniform(); }
        auto tick() { return std::chrono::steady_clock::now(); }
        // Words like time_t, timer, timestamp must not fire:
        std::time_t convert(std::time_t t) { return t; }
        int local_time(int timer) { return timer; }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 0u);
}

TEST(LintNondeterminism, IgnoresStringsAndComments) {
    const auto findings = lint_one("src/x.cpp", R"__(
        // rand() in a comment is fine
        const char* doc = "call rand() and time(nullptr)";
    )__");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 0u);
}

// --- unordered-iteration ---------------------------------------------------

TEST(LintUnorderedIteration, FlagsRangeForOverUnorderedMember) {
    const auto findings = lint_one("src/seq/t.cpp", R"(
        #include <unordered_map>
        struct T {
            std::unordered_map<int, int> counts_;
            void dump(std::ostream& out) {
                for (const auto& [k, v] : counts_) out << k << v;
            }
        };
    )");
    EXPECT_EQ(count_rule(findings, "unordered-iteration"), 1u);
}

TEST(LintUnorderedIteration, TracksDeclarationsAcrossHeaderTwin) {
    const std::vector<SourceFile> pair = {
        {"src/seq/t.hpp", R"(
            #pragma once
            #include <unordered_set>
            struct T { std::unordered_set<int> seen_; void dump(); };
        )"},
        {"src/seq/t.cpp", R"(
            #include "t.hpp"
            void T::dump() { for (int v : seen_) use(v); }
        )"},
    };
    LintOptions options;
    options.rules = {"unordered-iteration"};
    const auto findings = run_lint(pair, options);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/seq/t.cpp");
}

TEST(LintUnorderedIteration, TracksUsingAliases) {
    const auto findings = lint_one("src/x.cpp", R"(
        #include <unordered_map>
        using Map = std::unordered_map<int, int>;
        struct T {
            Map entries_;
            int sum() { int s = 0; for (auto& [k, v] : entries_) s += v; return s; }
        };
    )", {"unordered-iteration"});
    EXPECT_EQ(count_rule(findings, "unordered-iteration"), 1u);
}

TEST(LintUnorderedIteration, CleanSortedVectorAndOrderedMap) {
    const auto findings = lint_one("src/x.cpp", R"(
        #include <map>
        #include <vector>
        struct T {
            std::map<int, int> ordered_;
            std::vector<int> items_;
            void dump(std::ostream& out) {
                for (const auto& [k, v] : ordered_) out << k << v;
                for (int v : items_) out << v;
            }
        };
    )", {"unordered-iteration"});
    EXPECT_EQ(count_rule(findings, "unordered-iteration"), 0u);
}

TEST(LintUnorderedIteration, LookupsAndMembershipAreClean) {
    const auto findings = lint_one("src/x.cpp", R"(
        #include <unordered_set>
        struct T {
            std::unordered_set<int> seen_;
            bool has(int v) const { return seen_.contains(v); }
        };
    )", {"unordered-iteration"});
    EXPECT_EQ(count_rule(findings, "unordered-iteration"), 0u);
}

// --- score-memo ------------------------------------------------------------

TEST(LintScoreMemo, FlagsBareMutableCacheInDetector) {
    const auto findings = lint_one("src/detect/d.hpp", R"(
        #pragma once
        #include <unordered_map>
        class D {
            mutable std::unordered_map<int, double> cache_;
        };
    )", {"score-memo"});
    EXPECT_EQ(count_rule(findings, "score-memo"), 1u);
}

TEST(LintScoreMemo, CleanScoreMemoMutexAndAtomic) {
    const auto findings = lint_one("src/detect/d.hpp", R"(
        #pragma once
        class D {
            mutable ScoreMemo<int, double> memo_;
            mutable std::mutex mutex_;
            mutable std::atomic<int> hits_{0};
        };
    )", {"score-memo"});
    EXPECT_EQ(count_rule(findings, "score-memo"), 0u);
}

TEST(LintScoreMemo, LambdaMutableIsNotADeclaration) {
    const auto findings = lint_one("src/detect/d.cpp", R"(
        void f() { auto g = [x = 0]() mutable { return ++x; }; g(); }
    )", {"score-memo"});
    EXPECT_EQ(count_rule(findings, "score-memo"), 0u);
}

TEST(LintScoreMemo, OutsideDetectIsOutOfScope) {
    const auto findings = lint_one("src/core/c.hpp", R"(
        #pragma once
        class C { mutable int scratch_ = 0; };
    )", {"score-memo"});
    EXPECT_EQ(count_rule(findings, "score-memo"), 0u);
}

// --- metric-name -----------------------------------------------------------

TEST(LintMetricName, FlagsNonConventionalNames) {
    const auto findings = lint_one("src/x.cpp", R"(
        void f(adiv::MetricsRegistry& m) {
            m.counter("EventsPushed").add(1);
            m.gauge("depth").set(0.0);
            m.histogram("serve.Latency_US").record(1.0);
        }
    )", {"metric-name"});
    EXPECT_EQ(count_rule(findings, "metric-name"), 3u);
}

TEST(LintMetricName, FlagsTraceSpanNames) {
    const auto findings = lint_one("src/x.cpp", R"(
        void f() { TraceSpan span("TrainPhase"); }
    )", {"metric-name"});
    EXPECT_EQ(count_rule(findings, "metric-name"), 1u);
}

TEST(LintMetricName, FlagsSpanNameAfterSinkArgument) {
    // The literal is the second constructor argument; the rule must still
    // find it inside the balanced argument list.
    const auto findings = lint_one("src/x.cpp", R"(
        void f(std::shared_ptr<TraceSink> sink) {
            TraceSpan span(sink, "TrainPhase");
        }
    )", {"metric-name"});
    EXPECT_EQ(count_rule(findings, "metric-name"), 1u);
}

TEST(LintMetricName, NestedCallStringsAreNotThisSitesName) {
    // make_name("Bad") is a different call site; its literal sits at nesting
    // depth 2 and must not be attributed to the TraceSpan constructor.
    const auto findings = lint_one("src/x.cpp", R"(
        void f(std::shared_ptr<TraceSink> sink) {
            TraceSpan span(sink, make_name("Bad"));
        }
    )", {"metric-name"});
    EXPECT_EQ(count_rule(findings, "metric-name"), 0u);
}

TEST(LintMetricName, CleanSpanNameAfterSinkArgument) {
    const auto findings = lint_one("src/x.cpp", R"(
        void f(std::shared_ptr<TraceSink> sink) {
            TraceSpan span(sink, "serve.push");
        }
    )", {"metric-name"});
    EXPECT_EQ(count_rule(findings, "metric-name"), 0u);
}

TEST(LintMetricName, CleanDottedLowercase) {
    const auto findings = lint_one("src/x.cpp", R"(
        void f(adiv::MetricsRegistry& m) {
            m.counter("serve.events_pushed").add(1);
            m.histogram("experiment.cell_us").record(2.0);
            TraceSpan span("engine.plan");
            TraceSpan named_span("experiment.train2");
        }
    )", {"metric-name"});
    EXPECT_EQ(count_rule(findings, "metric-name"), 0u);
}

// --- header-hygiene --------------------------------------------------------

TEST(LintHeaderHygiene, FlagsMissingPragmaOnce) {
    const auto findings = lint_one("src/x.hpp", "struct X {};\n", {"header-hygiene"});
    ASSERT_EQ(count_rule(findings, "header-hygiene"), 1u);
}

TEST(LintHeaderHygiene, CleanHeaderWithPragmaOnce) {
    const auto findings =
        lint_one("src/x.hpp", "#pragma once\nstruct X {};\n", {"header-hygiene"});
    EXPECT_EQ(count_rule(findings, "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, UmbrellaMustCoverEveryHeader) {
    const std::vector<SourceFile> tree = {
        {"src/adiv.hpp", "#pragma once\n#include \"util/a.hpp\"\n"},
        {"src/util/a.hpp", "#pragma once\n"},
        {"src/util/b.hpp", "#pragma once\n"},  // missing from the umbrella
    };
    LintOptions options;
    options.rules = {"header-hygiene"};
    const auto findings = run_lint(tree, options);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/adiv.hpp");
    EXPECT_NE(findings[0].message.find("util/b.hpp"), std::string::npos);
}

TEST(LintHeaderHygiene, LintLibraryIsExemptFromUmbrella) {
    const std::vector<SourceFile> tree = {
        {"src/adiv.hpp", "#pragma once\n"},
        {"src/lint/rules.hpp", "#pragma once\n"},
    };
    LintOptions options;
    options.rules = {"header-hygiene"};
    EXPECT_TRUE(run_lint(tree, options).empty());
}

// --- suppressions ----------------------------------------------------------

TEST(LintSuppression, AllowCommentOnPreviousLineSuppresses) {
    const auto findings = lint_one("src/x.cpp", R"(
        // adiv-lint: allow(nondeterminism)
        int noisy() { return rand(); }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 0u);
}

TEST(LintSuppression, AllowCommentOnSameLineSuppresses) {
    const auto findings = lint_one(
        "src/x.cpp", "int noisy() { return rand(); }  // adiv-lint: allow(nondeterminism)\n");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 0u);
}

TEST(LintSuppression, WrongRuleNameDoesNotSuppress) {
    const auto findings = lint_one("src/x.cpp", R"(
        // adiv-lint: allow(metric-name)
        int noisy() { return rand(); }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 1u);
}

TEST(LintSuppression, AllWildcardAndListsSuppress) {
    const auto wildcard = lint_one("src/x.cpp", R"(
        // adiv-lint: allow(all)
        int noisy() { return rand(); }
    )");
    EXPECT_TRUE(wildcard.empty());
    const auto list = lint_one("src/x.cpp", R"(
        // adiv-lint: allow(metric-name, nondeterminism)
        int noisy() { return rand(); }
    )");
    EXPECT_EQ(count_rule(list, "nondeterminism"), 0u);
}

TEST(LintSuppression, DoesNotLeakPastTheNextLine) {
    const auto findings = lint_one("src/x.cpp", R"(
        // adiv-lint: allow(nondeterminism)
        int fine() { return 1; }
        int noisy() { return rand(); }
    )");
    EXPECT_EQ(count_rule(findings, "nondeterminism"), 1u);
}

// --- engine ----------------------------------------------------------------

TEST(LintEngine, UnknownRuleNameThrows) {
    LintOptions options;
    options.rules = {"no-such-rule"};
    EXPECT_THROW((void)run_lint({SourceFile{"src/x.cpp", ""}}, options),
                 InvalidArgument);
}

TEST(LintEngine, FindingsAreSortedByFileLineRule) {
    const std::vector<SourceFile> tree = {
        {"src/b.cpp", "int f() { return rand(); }\n"},
        {"src/a.cpp", "int g() { return rand(); }\nint h() { return srand(1), 0; }\n"},
    };
    const auto findings = run_lint(tree);
    ASSERT_EQ(findings.size(), 3u);
    EXPECT_EQ(findings[0].file, "src/a.cpp");
    EXPECT_EQ(findings[0].line, 1u);
    EXPECT_EQ(findings[1].file, "src/a.cpp");
    EXPECT_EQ(findings[1].line, 2u);
    EXPECT_EQ(findings[2].file, "src/b.cpp");
}

TEST(LintEngine, RuleNamesAreStable) {
    const std::vector<std::string> names = rule_names();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "nondeterminism");
    EXPECT_EQ(names[4], "header-hygiene");
}

}  // namespace
}  // namespace adiv::lint
