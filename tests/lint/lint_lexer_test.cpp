#include "lint/lexer.hpp"

#include <gtest/gtest.h>

namespace adiv::lint {
namespace {

std::vector<Tok> lex(const char* source) { return lex_cpp(source); }

TEST(LintLexer, SplitsIdentifiersNumbersAndPunct) {
    const auto toks = lex("int x = 42;");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[0].kind, TokKind::Identifier);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[2].text, "=");
    EXPECT_EQ(toks[3].kind, TokKind::Number);
    EXPECT_EQ(toks[3].text, "42");
    EXPECT_EQ(toks[4].text, ";");
}

TEST(LintLexer, BannedNameInsideStringIsAStringToken) {
    const auto toks = lex("f(\"rand() inside a string\");");
    ASSERT_GE(toks.size(), 3u);
    EXPECT_EQ(toks[2].kind, TokKind::String);
    EXPECT_EQ(toks[2].text, "rand() inside a string");
}

TEST(LintLexer, BannedNameInsideCommentIsACommentToken) {
    const auto toks = lex("// rand() here\nint x;");
    ASSERT_GE(toks.size(), 3u);
    EXPECT_EQ(toks[0].kind, TokKind::Comment);
    EXPECT_EQ(toks[0].text, " rand() here");
    EXPECT_EQ(toks[1].text, "int");
    EXPECT_EQ(toks[1].line, 2u);
}

TEST(LintLexer, BlockCommentSpansLinesAndKeepsStartLine) {
    const auto toks = lex("/* one\n two */ int x;");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::Comment);
    EXPECT_EQ(toks[0].line, 1u);
    EXPECT_EQ(toks[1].text, "int");
    EXPECT_EQ(toks[1].line, 2u);
}

TEST(LintLexer, RawStringSwallowsEverything) {
    const auto toks = lex("auto s = R\"(rand() \" // not a comment)\";");
    bool found = false;
    for (const Tok& tok : toks)
        if (tok.kind == TokKind::String) {
            EXPECT_EQ(tok.text, "rand() \" // not a comment");
            found = true;
        }
    EXPECT_TRUE(found);
    for (const Tok& tok : toks) EXPECT_NE(tok.kind, TokKind::Comment);
}

TEST(LintLexer, PreprocessorDirectiveIsOneToken) {
    const auto toks = lex("#include <ctime>\nint x;");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::Preprocessor);
    EXPECT_EQ(toks[0].text, "#include <ctime>");
    EXPECT_EQ(toks[1].text, "int");
}

TEST(LintLexer, ScopeResolutionIsOneToken) {
    const auto toks = lex("std::time(nullptr)");
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[1].text, "::");
    EXPECT_EQ(toks[1].kind, TokKind::Punct);
}

TEST(LintLexer, RangeForColonStaysSingle) {
    const auto toks = lex("for (auto x : xs) {}");
    std::size_t colons = 0;
    for (const Tok& tok : toks)
        if (tok.kind == TokKind::Punct && tok.text == ":") ++colons;
    EXPECT_EQ(colons, 1u);
}

TEST(LintLexer, CharLiteralsAndEscapes) {
    const auto toks = lex("char c = ':'; char q = '\\'';");
    std::size_t chars = 0;
    for (const Tok& tok : toks)
        if (tok.kind == TokKind::CharLit) ++chars;
    EXPECT_EQ(chars, 2u);
}

TEST(LintLexer, LineNumbersTrackNewlinesInStrings) {
    const auto toks = lex("auto a = \"x\";\n\n\nint y;");
    ASSERT_GE(toks.size(), 5u);
    EXPECT_EQ(toks.back().text, ";");
    EXPECT_EQ(toks.back().line, 4u);
}

TEST(LintLexer, UnterminatedStringDoesNotThrow) {
    EXPECT_NO_THROW((void)lex("auto s = \"unterminated\nint x;"));
    EXPECT_NO_THROW((void)lex("/* unterminated"));
}

}  // namespace
}  // namespace adiv::lint
