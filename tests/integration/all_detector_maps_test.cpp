// Integration: expected MFS performance-map shape for EVERY detector in the
// library, including the extension detectors — one parameterized sweep.
//
// Expected shapes on the study corpus:
//   * stide          — capable iff DW >= AS (Figure 5);
//   * lane-brodley   — never capable (Figure 3);
//   * markov         — capable everywhere (Figure 4);
//   * neural-net     — capable everywhere (Figure 6, tuned);
//   * t-stide        — capable everywhere: every MFS is composed of rare
//     sub-sequences, so some in-span window is rare at every window length;
//   * hmm            — capable everywhere: the deviation transitions inside
//     the anomaly are improbable under the learned state model;
//   * rule           — capable everywhere: deviations violate the learned
//     high-confidence cycle rules.
#include <gtest/gtest.h>

#include <map>

#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "support/corpus_fixture.hpp"

namespace adiv {
namespace {

enum class Shape { Diagonal, NeverCapable, FullCoverage, SubsetOfDiagonal };

Shape expected_shape(DetectorKind kind) {
    switch (kind) {
        case DetectorKind::Stide: return Shape::Diagonal;
        case DetectorKind::LaneBrodley: return Shape::NeverCapable;
        case DetectorKind::Markov:
        case DetectorKind::NeuralNet:
        case DetectorKind::TStide:
        case DetectorKind::Hmm:
        case DetectorKind::Rule: return Shape::FullCoverage;
        case DetectorKind::LookaheadPairs: return Shape::SubsetOfDiagonal;
    }
    return Shape::FullCoverage;
}

const PerformanceMap& map_for(DetectorKind kind) {
    static std::map<DetectorKind, PerformanceMap> cache = [] {
        // All eight detectors in one plan on a two-worker pool (maps are
        // identical for any job count).
        DetectorSettings settings;
        settings.nn.epochs = 300;
        settings.hmm.iterations = 20;
        ExperimentPlan plan(test::small_suite());
        for (DetectorKind k : all_detectors()) plan.add_detector(k, settings);
        EngineOptions options;
        options.jobs = 2;
        PlanRun run = run_plan(plan, options);
        std::map<DetectorKind, PerformanceMap> maps;
        std::size_t i = 0;
        for (DetectorKind k : all_detectors())
            maps.emplace(k, std::move(run.maps[i++]));
        return maps;
    }();
    return cache.at(kind);
}

class AllDetectorMaps : public ::testing::TestWithParam<DetectorKind> {};

TEST_P(AllDetectorMaps, MapMatchesExpectedShape) {
    const DetectorKind kind = GetParam();
    const PerformanceMap& map = map_for(kind);
    const Shape shape = expected_shape(kind);
    for (std::size_t as : test::small_suite().anomaly_sizes()) {
        for (std::size_t dw : test::small_suite().window_lengths()) {
            const DetectionOutcome outcome = map.at(as, dw).outcome;
            switch (shape) {
                case Shape::Diagonal:
                    EXPECT_EQ(outcome, dw >= as ? DetectionOutcome::Capable
                                                : DetectionOutcome::Blind)
                        << to_string(kind) << " AS=" << as << " DW=" << dw;
                    break;
                case Shape::NeverCapable:
                    EXPECT_NE(outcome, DetectionOutcome::Capable)
                        << to_string(kind) << " AS=" << as << " DW=" << dw;
                    break;
                case Shape::FullCoverage:
                    EXPECT_EQ(outcome, DetectionOutcome::Capable)
                        << to_string(kind) << " AS=" << as << " DW=" << dw;
                    break;
                case Shape::SubsetOfDiagonal:
                    // The pair model generalizes over training windows, so it
                    // can only detect where a whole-window matcher would.
                    if (dw < as)
                        EXPECT_EQ(outcome, DetectionOutcome::Blind)
                            << to_string(kind) << " AS=" << as << " DW=" << dw;
                    break;
            }
        }
    }
}

TEST_P(AllDetectorMaps, CoverageIsSupersetOfStide) {
    // Every detector except L&B covers at least Stide's cells — the subset
    // structure that makes Stide the universal suppressor.
    const DetectorKind kind = GetParam();
    if (kind == DetectorKind::LaneBrodley || kind == DetectorKind::LookaheadPairs)
        GTEST_SKIP();
    const PerformanceMap& stide = map_for(DetectorKind::Stide);
    const PerformanceMap& other = map_for(kind);
    for (std::size_t as : test::small_suite().anomaly_sizes()) {
        for (std::size_t dw : test::small_suite().window_lengths()) {
            if (stide.at(as, dw).outcome == DetectionOutcome::Capable)
                EXPECT_EQ(other.at(as, dw).outcome, DetectionOutcome::Capable)
                    << to_string(kind) << " AS=" << as << " DW=" << dw;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AllDetectorMaps,
                         ::testing::ValuesIn(all_detectors()),
                         [](const auto& info) {
                             std::string name = to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

}  // namespace
}  // namespace adiv
