// End-to-end check of the acceptance criterion for the observability layer:
// running `adiv_score --metrics - --trace trace.jsonl` emits the run
// manifest as the first trace line, at least one nested span pair per scored
// window batch, and a final metrics dump carrying online.events_consumed,
// the push-latency percentiles, and the alarm-rate gauge.
//
// The tool binaries are located via ADIV_TRAIN_TOOL / ADIV_SCORE_TOOL
// compile definitions (set from tests/CMakeLists.txt when the tools are part
// of the build); without them the tests skip.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/stream_io.hpp"
#include "support/corpus_fixture.hpp"

namespace adiv {
namespace {

#if defined(ADIV_TRAIN_TOOL) && defined(ADIV_SCORE_TOOL)

std::string quoted(const std::string& path) { return "'" + path + "'"; }

int run_command(const std::string& command) {
    const int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

class ObservabilityCli : public ::testing::Test {
protected:
    // Train once for the whole fixture: write a training stream from the
    // shared corpus, fit a stide model with the real tool.
    static void SetUpTestSuite() {
        dir_ = new std::string(::testing::TempDir() + "adiv_obs_cli/");
        std::filesystem::create_directories(*dir_);
        save_stream_file(test::small_corpus().generate_heldout(20'000, 11),
                         *dir_ + "train.stream");
        save_stream_file(test::small_corpus().generate_heldout(6'000, 13),
                         *dir_ + "test.stream");
        const std::string train_log = *dir_ + "train_stdout.txt";
        const int rc = run_command(
            std::string(ADIV_TRAIN_TOOL) + " --detector stide --window 6" +
            " --input " + quoted(*dir_ + "train.stream") +
            " --out " + quoted(*dir_ + "model.adiv") +
            " --trace " + quoted(*dir_ + "train_trace.jsonl") +
            " --metrics - > " + quoted(train_log));
        ASSERT_EQ(rc, 0) << read_file(train_log);
    }

    static void TearDownTestSuite() {
        delete dir_;
        dir_ = nullptr;
    }

    static std::string* dir_;
};

std::string* ObservabilityCli::dir_ = nullptr;

TEST_F(ObservabilityCli, TrainEmitsManifestSpanAndMetrics) {
    const auto trace = read_lines(*dir_ + "train_trace.jsonl");
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.front().find("{\"type\":\"manifest\""), 0u);
    EXPECT_NE(trace.front().find("\"tool\":\"adiv_train\""), std::string::npos);
    EXPECT_NE(trace.front().find("\"detector\":\"stide\""), std::string::npos);

    const std::string joined = read_file(*dir_ + "train_trace.jsonl");
    EXPECT_NE(joined.find("\"name\":\"detect.train\""), std::string::npos);
    EXPECT_NE(joined.find("\"type\":\"span_end\""), std::string::npos);

    const std::string stdout_text = read_file(*dir_ + "train_stdout.txt");
    EXPECT_NE(stdout_text.find("detect.train_calls"), std::string::npos);
    EXPECT_NE(stdout_text.find("detect.train_events"), std::string::npos);
    EXPECT_NE(stdout_text.find("\"counters\""), std::string::npos)
        << "--metrics - should dump machine JSON to stdout";
}

TEST_F(ObservabilityCli, ScoreEmitsManifestNestedSpansAndMetrics) {
    const std::string trace_path = *dir_ + "score_trace.jsonl";
    const std::string log_path = *dir_ + "score_stdout.txt";
    const int rc = run_command(
        std::string(ADIV_SCORE_TOOL) + " --model " + quoted(*dir_ + "model.adiv") +
        " --input " + quoted(*dir_ + "test.stream") + " --batch 1000" +
        " --jobs 1" +  // pin the serial online-scorer path the spans describe
        " --trace " + quoted(trace_path) + " --metrics - > " + quoted(log_path));
    ASSERT_TRUE(rc == 0 || rc == 2) << read_file(log_path);  // 2 = alarms fired

    const auto trace = read_lines(trace_path);
    ASSERT_FALSE(trace.empty());
    // Manifest first.
    EXPECT_EQ(trace.front().find("{\"type\":\"manifest\""), 0u);
    EXPECT_NE(trace.front().find("\"tool\":\"adiv_score\""), std::string::npos);
    EXPECT_NE(trace.front().find("\"detector\":\"stide\""), std::string::npos);
    EXPECT_NE(trace.front().find("\"min_window\":6"), std::string::npos);

    // 6000 events in batches of 1000 -> 6 score.batch spans at depth 0, each
    // holding nested detect.score spans at depth 1.
    const std::string joined = read_file(trace_path);
    EXPECT_EQ(count_occurrences(
                  joined, "\"type\":\"span_begin\",\"name\":\"score.batch\",\"depth\":0"),
              6u);
    EXPECT_GE(count_occurrences(
                  joined, "\"type\":\"span_begin\",\"name\":\"detect.score\",\"depth\":1"),
              6u);
    EXPECT_EQ(count_occurrences(joined, "\"name\":\"score.batch\""),
              count_occurrences(joined, "\"type\":\"span_begin\",\"name\":\"score.batch\"") * 2)
        << "every batch span must close";
    EXPECT_NE(joined.find("\"windows_scored\""), std::string::npos);

    // Final metrics dump: human table and machine JSON on stdout.
    const std::string stdout_text = read_file(log_path);
    EXPECT_NE(stdout_text.find("-- metrics --"), std::string::npos);
    EXPECT_NE(stdout_text.find("online.events_consumed"), std::string::npos);
    EXPECT_NE(stdout_text.find("6000"), std::string::npos);
    EXPECT_NE(stdout_text.find("online.alarm_rate"), std::string::npos);
    EXPECT_NE(stdout_text.find("online.push_latency_us"), std::string::npos);
    EXPECT_NE(stdout_text.find("p50"), std::string::npos);
    EXPECT_NE(stdout_text.find("p99"), std::string::npos);
    EXPECT_NE(stdout_text.find("\"online.events_consumed\":6000"), std::string::npos);
    EXPECT_NE(stdout_text.find("\"online.push_latency_us\":{\"count\":6000"),
              std::string::npos);
}

TEST_F(ObservabilityCli, MetricsFileReceivesJsonDump) {
    const std::string metrics_path = *dir_ + "metrics.json";
    const std::string log_path = *dir_ + "score_file_stdout.txt";
    const int rc = run_command(
        std::string(ADIV_SCORE_TOOL) + " --model " + quoted(*dir_ + "model.adiv") +
        " --input " + quoted(*dir_ + "test.stream") + " --jobs 1" +
        " --metrics " + quoted(metrics_path) + " > " + quoted(log_path));
    ASSERT_TRUE(rc == 0 || rc == 2) << read_file(log_path);
    const std::string json = read_file(metrics_path);
    EXPECT_EQ(json.find("{\"counters\":"), 0u);
    EXPECT_NE(json.find("\"online.events_consumed\":6000"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
    EXPECT_NE(json.find("\"online.alarm_rate\":"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
    EXPECT_NE(json.find("\"p95\":"), std::string::npos);
}

TEST_F(ObservabilityCli, WithoutFlagsNoTraceOrMetricsAppear) {
    const std::string log_path = *dir_ + "score_plain_stdout.txt";
    const int rc = run_command(
        std::string(ADIV_SCORE_TOOL) + " --model " + quoted(*dir_ + "model.adiv") +
        " --input " + quoted(*dir_ + "test.stream") + " > " + quoted(log_path));
    ASSERT_TRUE(rc == 0 || rc == 2) << read_file(log_path);
    const std::string stdout_text = read_file(log_path);
    EXPECT_EQ(stdout_text.find("-- metrics --"), std::string::npos);
    EXPECT_EQ(stdout_text.find("span_begin"), std::string::npos);
}

TEST_F(ObservabilityCli, ParallelScoringMatchesSerialCsv) {
    const std::string serial_path = *dir_ + "csv_serial.txt";
    const std::string parallel_path = *dir_ + "csv_parallel.txt";
    const std::string base = std::string(ADIV_SCORE_TOOL) + " --model " +
                             quoted(*dir_ + "model.adiv") + " --input " +
                             quoted(*dir_ + "test.stream") + " --csv";
    ASSERT_EQ(run_command(base + " --jobs 1 > " + quoted(serial_path)), 0);
    ASSERT_EQ(run_command(base + " --jobs 4 > " + quoted(parallel_path)), 0);
    const std::string serial = read_file(serial_path);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, read_file(parallel_path))
        << "chunked parallel scoring must splice to the exact serial responses";
}

#else  // tool paths not provided by the build

TEST(ObservabilityCli, DISABLED_ToolsNotBuilt) {
    GTEST_SKIP() << "adiv_train/adiv_score were not part of this build";
}

#endif

}  // namespace
}  // namespace adiv
