// Integration: failure injection across module boundaries — the library must
// fail loudly and precisely on malformed inputs, impossible syntheses, and
// mismatched configurations rather than produce quietly wrong science.
#include <gtest/gtest.h>

#include "anomaly/mfs_builder.hpp"
#include "anomaly/suite.hpp"
#include "core/experiment.hpp"
#include "detect/registry.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TEST(FailureInjection, CorpusShorterThanOneCycleIsRejected) {
    CorpusSpec spec;
    spec.training_length = 4;
    EXPECT_THROW((void)TrainingCorpus::generate(spec), InvalidArgument);
}

TEST(FailureInjection, CorpusWithInvalidDeviationRateIsRejected) {
    CorpusSpec spec;
    spec.deviation_rate = 1.0;
    EXPECT_THROW((void)TrainingCorpus::generate(spec), InvalidArgument);
    spec.deviation_rate = -0.1;
    EXPECT_THROW((void)TrainingCorpus::generate(spec), InvalidArgument);
}

TEST(FailureInjection, CorpusWithInvalidRareThresholdIsRejected) {
    CorpusSpec spec;
    spec.rare_threshold = 0.0;
    EXPECT_THROW((void)TrainingCorpus::generate(spec), InvalidArgument);
}

TEST(FailureInjection, SuiteOnDeterministicCorpusCannotSynthesize) {
    // With deviation_rate 0 the corpus is a pure cycle: no rare sequences
    // exist, so no MFS "composed of rare sub-sequences" of size >= 3 can be
    // built, and the suite reports the synthesis failure.
    CorpusSpec spec;
    spec.training_length = 50'000;
    spec.deviation_rate = 0.0;
    const TrainingCorpus corpus = TrainingCorpus::generate(spec);
    SuiteConfig cfg;
    cfg.min_anomaly_size = 3;
    cfg.max_anomaly_size = 3;
    cfg.max_window = 4;
    cfg.background_length = 512;
    EXPECT_THROW((void)EvaluationSuite::build(corpus, cfg), SynthesisError);
}

TEST(FailureInjection, DetectorScoredOnWrongAlphabetThrows) {
    auto d = make_detector(DetectorKind::Stide, 3);
    d->train(test::small_corpus().training());
    const EventStream wrong(16, {0, 1, 2, 3, 4});
    EXPECT_THROW((void)d->score(wrong), InvalidArgument);
}

TEST(FailureInjection, InjectingOutOfAlphabetAnomalyThrows) {
    const SubsequenceOracle oracle(test::small_corpus().training());
    const Injector injector(test::small_corpus(), oracle);
    // Symbol 9 is outside the corpus alphabet of 8: appending it to the
    // background stream must fail validation at the stream layer.
    EXPECT_THROW((void)injector.try_inject(Sequence{0, 9}, 4, 512), DataError);
}

TEST(FailureInjection, UntrainedDetectorsRefuseToScore) {
    const EvaluationSuite& suite = test::small_suite();
    for (DetectorKind kind : paper_detectors()) {
        const auto d = make_detector(kind, 4);
        EXPECT_THROW((void)d->score(suite.entry(3, 4).stream.stream),
                     InvalidArgument)
            << to_string(kind);
    }
}

TEST(FailureInjection, ExperimentRejectsNullFactory) {
    const DetectorFactory broken = [](std::size_t) {
        return std::unique_ptr<SequenceDetector>{};
    };
    EXPECT_THROW(
        (void)run_map_experiment(test::small_suite(), "broken", broken),
        InvalidArgument);
}

TEST(FailureInjection, ExperimentRejectsWrongWindowFactory) {
    const DetectorFactory wrong = [](std::size_t) {
        return make_detector(DetectorKind::Stide, 3);  // ignores requested DW
    };
    EXPECT_THROW((void)run_map_experiment(test::small_suite(), "wrong", wrong),
                 InvalidArgument);
}

TEST(FailureInjection, EmptyTrainingStreamRejectedByDetectors) {
    const EventStream empty(8);
    auto markov = make_detector(DetectorKind::Markov, 3);
    EXPECT_THROW(markov->train(empty), DataError);
    auto nn = make_detector(DetectorKind::NeuralNet, 3);
    EXPECT_THROW(nn->train(empty), DataError);
}

TEST(FailureInjection, TrainingShorterThanWindowYieldsEmptyStideModel) {
    // Stide trained on a stream shorter than its window has an empty normal
    // database; every window is then "foreign". This is degenerate but
    // well-defined behaviour.
    auto stide = make_detector(DetectorKind::Stide, 10);
    stide->train(EventStream(8, {0, 1, 2}));
    const EventStream test = test::small_corpus().background(32, 0);
    for (double r : stide->score(test)) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(FailureInjection, SuiteEntriesRejectForeignWindowLengths) {
    EXPECT_THROW((void)test::small_suite().entry(2, 1), InvalidArgument);
    EXPECT_THROW((void)test::small_suite().entry(10, 5), InvalidArgument);
}

}  // namespace
}  // namespace adiv
