// Integration: the paper's four performance maps (Figures 3-6) as testable
// properties, computed over the full (reduced-grid) evaluation suite.
#include <gtest/gtest.h>

#include "detect/lane_brodley.hpp"
#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "support/corpus_fixture.hpp"

namespace adiv {
namespace {

const PerformanceMap& map_for(DetectorKind kind) {
    static std::map<DetectorKind, PerformanceMap> cache = [] {
        // One four-detector plan on a two-worker pool (maps are identical
        // for any job count; this keeps the parallel scheduler exercised by
        // the standard suite).
        DetectorSettings settings;
        settings.nn.epochs = 300;
        ExperimentPlan plan(test::small_suite());
        for (DetectorKind k : paper_detectors()) plan.add_detector(k, settings);
        EngineOptions options;
        options.jobs = 2;
        PlanRun run = run_plan(plan, options);
        std::map<DetectorKind, PerformanceMap> maps;
        std::size_t i = 0;
        for (DetectorKind k : paper_detectors())
            maps.emplace(k, std::move(run.maps[i++]));
        return maps;
    }();
    return cache.at(kind);
}

TEST(Maps, GridIsComplete) {
    for (DetectorKind kind : paper_detectors()) {
        const PerformanceMap& map = map_for(kind);
        for (std::size_t as : test::small_suite().anomaly_sizes())
            for (std::size_t dw : test::small_suite().window_lengths())
                EXPECT_TRUE(map.has(as, dw));
    }
}

// Figure 5: Stide detects a minimal foreign sequence iff DW >= AS.
TEST(Maps, StideDetectsIffWindowAtLeastAnomaly) {
    const PerformanceMap& map = map_for(DetectorKind::Stide);
    for (std::size_t as : test::small_suite().anomaly_sizes()) {
        for (std::size_t dw : test::small_suite().window_lengths()) {
            const DetectionOutcome expected = dw >= as ? DetectionOutcome::Capable
                                                       : DetectionOutcome::Blind;
            EXPECT_EQ(map.at(as, dw).outcome, expected)
                << "stide AS=" << as << " DW=" << dw;
        }
    }
}

// Figure 4: the Markov detector covers the entire defined region.
TEST(Maps, MarkovDetectsEverywhere) {
    const PerformanceMap& map = map_for(DetectorKind::Markov);
    for (std::size_t as : test::small_suite().anomaly_sizes())
        for (std::size_t dw : test::small_suite().window_lengths())
            EXPECT_EQ(map.at(as, dw).outcome, DetectionOutcome::Capable)
                << "markov AS=" << as << " DW=" << dw;
}

// Figure 3: L&B never produces a maximal response — the entire space is
// unstarred ("blind region" in the paper's chart).
TEST(Maps, LaneBrodleyNeverCapable) {
    const PerformanceMap& map = map_for(DetectorKind::LaneBrodley);
    EXPECT_EQ(map.count(DetectionOutcome::Capable), 0u);
}

// The finer structure behind Figure 3: below the diagonal every window in
// the incident span exists in training, so L&B sees literally nothing; at
// and above the diagonal the foreign window produces only a weak "slight
// dip" response.
TEST(Maps, LaneBrodleyWeakExactlyWhereStideDetects) {
    const PerformanceMap& lb = map_for(DetectorKind::LaneBrodley);
    for (std::size_t as : test::small_suite().anomaly_sizes()) {
        for (std::size_t dw : test::small_suite().window_lengths()) {
            const DetectionOutcome expected =
                dw >= as ? DetectionOutcome::Weak : DetectionOutcome::Blind;
            EXPECT_EQ(lb.at(as, dw).outcome, expected)
                << "lane-brodley AS=" << as << " DW=" << dw;
        }
    }
}

// Section 7: an edge-element mismatch leaves L&B's similarity at DW(DW-1)/2,
// i.e. a response of 2/(DW+1) that shrinks as the window grows — the single
// mismatch is progressively diluted, so the detector drifts toward "normal"
// exactly when windows get longer.
TEST(Maps, LaneBrodleyEdgeMismatchResponseShrinksWithWindow) {
    double previous = 1.0;
    for (std::size_t dw = 2; dw <= 15; ++dw) {
        Sequence normal(dw), foreign(dw);
        for (std::size_t i = 0; i < dw; ++i) normal[i] = foreign[i] = Symbol(i % 7);
        foreign.back() = 7;  // single mismatch at the edge
        const double sim =
            static_cast<double>(lane_brodley_similarity(normal, foreign));
        const double response =
            1.0 - sim / static_cast<double>(lane_brodley_max_similarity(dw));
        EXPECT_NEAR(response, 2.0 / (static_cast<double>(dw) + 1.0), 1e-12);
        EXPECT_LT(response, previous);
        previous = response;
    }
}

// The span maximum itself is NOT monotone in DW (window alignment against
// the normal database shifts), but it must stay strictly weak — bounded away
// from both blind and maximal — wherever a foreign window is in view.
TEST(Maps, LaneBrodleyMaxResponseStaysStrictlyWeakAboveDiagonal) {
    const PerformanceMap& lb = map_for(DetectorKind::LaneBrodley);
    for (std::size_t as : test::small_suite().anomaly_sizes()) {
        for (std::size_t dw : test::small_suite().window_lengths()) {
            if (dw < as) continue;
            const double r = lb.at(as, dw).max_response;
            EXPECT_GT(r, 0.0) << "AS=" << as << " DW=" << dw;
            EXPECT_LT(r, 1.0) << "AS=" << as << " DW=" << dw;
        }
    }
}

// Figure 6: the neural network mimics the Markov detector.
TEST(Maps, NeuralNetMimicsMarkov) {
    const PerformanceMap& nn = map_for(DetectorKind::NeuralNet);
    const PerformanceMap& markov = map_for(DetectorKind::Markov);
    std::size_t agreements = 0, cells = 0;
    for (std::size_t as : test::small_suite().anomaly_sizes()) {
        for (std::size_t dw : test::small_suite().window_lengths()) {
            ++cells;
            if (nn.at(as, dw).outcome == markov.at(as, dw).outcome) ++agreements;
        }
    }
    // Well-tuned NN matches Markov on the whole grid.
    EXPECT_EQ(agreements, cells);
}

// Parameterized spot check: capable cells really contain a maximal response
// and blind cells contain none.
class MapCellTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MapCellTest, StideCellEvidenceIsConsistent) {
    const auto [as, dw] = GetParam();
    const PerformanceMap& map = map_for(DetectorKind::Stide);
    const SpanScore& score = map.at(as, dw);
    if (score.outcome == DetectionOutcome::Capable) {
        EXPECT_GE(score.max_response, 1.0 - 1e-9);
        const auto& entry = test::small_suite().entry(as, dw);
        EXPECT_TRUE(entry.stream.span.contains(score.argmax_window));
    } else {
        EXPECT_LT(score.max_response, 1.0 - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MapCellTest,
    ::testing::Combine(::testing::Values(2u, 4u, 6u, 8u, 9u),
                       ::testing::Values(2u, 5u, 8u, 10u)));

}  // namespace
}  // namespace adiv
