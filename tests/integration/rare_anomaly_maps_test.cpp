// Integration: rare-sequence anomaly coverage for every detector — the
// §5.1 dichotomy as a parameterized property.
//
// Expected: detectors whose normal model is a set of observed patterns
// (stide, lane-brodley, lookahead-pairs) are blind to an event that occurs
// in training, however rarely; frequency/probability-based detectors
// (markov, neural-net, t-stide, hmm, rule) detect it.
#include <gtest/gtest.h>

#include <map>

#include "anomaly/rare_anomaly.hpp"
#include "core/response.hpp"
#include "detect/registry.hpp"
#include "support/corpus_fixture.hpp"

namespace adiv {
namespace {

bool frequency_blind(DetectorKind kind) {
    return kind == DetectorKind::Stide || kind == DetectorKind::LaneBrodley ||
           kind == DetectorKind::LookaheadPairs;
}

struct RareGrid {
    std::map<std::pair<std::size_t, std::size_t>, InjectedStream> streams;
    std::vector<std::size_t> as_values{2, 3, 4, 5, 6};
    std::vector<std::size_t> dw_values{2, 4, 6};
};

const RareGrid& grid() {
    static const RareGrid g = [] {
        RareGrid out;
        const SubsequenceOracle oracle(test::small_corpus().training());
        const RareAnomalyBuilder builder(oracle);
        const RareInjector injector(test::small_corpus(), oracle);
        for (std::size_t as : out.as_values) {
            for (const Sequence& anomaly : builder.candidates(as, 32)) {
                std::map<std::pair<std::size_t, std::size_t>, InjectedStream>
                    cells;
                bool ok = true;
                for (std::size_t dw : out.dw_values) {
                    auto injected = injector.try_inject(anomaly, dw, 1024);
                    if (!injected) {
                        ok = false;
                        break;
                    }
                    cells[{as, dw}] = std::move(*injected);
                }
                if (!ok) continue;
                for (auto& [key, stream] : cells)
                    out.streams[key] = std::move(stream);
                break;
            }
        }
        return out;
    }();
    return g;
}

class RareAnomalyMaps : public ::testing::TestWithParam<DetectorKind> {};

TEST_P(RareAnomalyMaps, OutcomeMatchesDetectorFamily) {
    const DetectorKind kind = GetParam();
    DetectorSettings settings;
    settings.nn.epochs = 400;
    settings.hmm.iterations = 25;
    ASSERT_FALSE(grid().streams.empty());
    for (std::size_t dw : grid().dw_values) {
        auto detector = make_detector(kind, dw, settings);
        detector->train(test::small_corpus().training());
        for (std::size_t as : grid().as_values) {
            const auto it = grid().streams.find({as, dw});
            if (it == grid().streams.end()) continue;
            const SpanScore score =
                classify_span(detector->score(it->second.stream), it->second.span);
            if (frequency_blind(kind)) {
                EXPECT_EQ(score.outcome, DetectionOutcome::Blind)
                    << to_string(kind) << " AS=" << as << " DW=" << dw;
            } else {
                EXPECT_EQ(score.outcome, DetectionOutcome::Capable)
                    << to_string(kind) << " AS=" << as << " DW=" << dw;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RareAnomalyMaps,
                         ::testing::ValuesIn(all_detectors()),
                         [](const auto& info) {
                             std::string name = to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

}  // namespace
}  // namespace adiv
