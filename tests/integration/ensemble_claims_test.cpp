// Integration: the paper's ensemble claims (Sections 7-8).
//
//   1. Stide's detection coverage is a subset of the Markov detector's, so
//      "any alarm raised by Stide will also be raised by the Markov detector".
//   2. Combining Stide and L&B affords no detection advantage: both are
//      blind in the same region, and the union adds nothing over Stide.
//   3. Using Stide as a suppressor for the Markov detector removes false
//      alarms while keeping hits wherever Stide covers.
#include <gtest/gtest.h>

#include "core/diversity.hpp"
#include "core/ensemble.hpp"
#include "core/false_alarm.hpp"
#include "detect/registry.hpp"
#include "engine/plan.hpp"
#include "engine/scheduler.hpp"
#include "support/corpus_fixture.hpp"

namespace adiv {
namespace {

struct Maps {
    PerformanceMap stide;
    PerformanceMap markov;
    PerformanceMap lb;
};

const Maps& maps() {
    static const Maps m = [] {
        // One three-detector plan on a two-worker pool: the standard suite
        // exercises the parallel scheduler, whose maps are bit-identical to
        // the serial path.
        ExperimentPlan plan(test::small_suite());
        plan.add_detector(DetectorKind::Stide);
        plan.add_detector(DetectorKind::Markov);
        plan.add_detector(DetectorKind::LaneBrodley);
        EngineOptions options;
        options.jobs = 2;
        PlanRun run = run_plan(plan, options);
        return Maps{std::move(run.maps[0]), std::move(run.maps[1]),
                    std::move(run.maps[2])};
    }();
    return m;
}

TEST(EnsembleClaims, StideCoverageIsSubsetOfMarkov) {
    const CoverageSet stide = CoverageSet::capable_cells(maps().stide);
    const CoverageSet markov = CoverageSet::capable_cells(maps().markov);
    EXPECT_TRUE(stide.subset_of(markov));
    EXPECT_GT(markov.size(), stide.size());
}

TEST(EnsembleClaims, DiversityAnalysisReportsTheSubset) {
    const PairwiseDiversity d = analyze_pair(maps().stide, maps().markov);
    EXPECT_TRUE(d.a_subset_of_b);
    EXPECT_EQ(d.gain_a_adds_to_b, 0u);
    EXPECT_GT(d.gain_b_adds_to_a, 0u);
}

TEST(EnsembleClaims, StideUnionLaneBrodleyAddsNothing) {
    const CoverageSet stide = CoverageSet::capable_cells(maps().stide);
    const CoverageSet lb = CoverageSet::capable_cells(maps().lb);
    const CoverageSet combined = stide.unite(lb);
    EXPECT_EQ(combined.size(), stide.size());
    EXPECT_TRUE(lb.empty());  // L&B contributes no capable cell at all
}

TEST(EnsembleClaims, MarkovAndStideUnionEqualsMarkov) {
    // Because Stide c Markov, OR-combining them is just Markov.
    const CoverageSet stide = CoverageSet::capable_cells(maps().stide);
    const CoverageSet markov = CoverageSet::capable_cells(maps().markov);
    EXPECT_EQ(stide.unite(markov).size(), markov.size());
}

TEST(EnsembleClaims, SuppressionKeepsHitsWhereStideCovers) {
    // On a test stream with DW >= AS, both detectors alarm within the span:
    // the AND combination preserves the hit.
    const EvaluationSuite& suite = test::small_suite();
    const auto& entry = suite.entry(4, 8);
    auto stide = make_detector(DetectorKind::Stide, 8);
    auto markov = make_detector(DetectorKind::Markov, 8);
    stide->train(suite.corpus().training());
    markov->train(suite.corpus().training());

    const auto rs = stide->score(entry.stream.stream);
    const auto rm = markov->score(entry.stream.stream);
    const auto both = combine_alarms(rm, rs, CombineMode::And, kMaximalResponse);
    bool hit = false;
    for (std::size_t pos = entry.stream.span.first; pos <= entry.stream.span.last;
         ++pos)
        hit = hit || both[pos] >= 1.0;
    EXPECT_TRUE(hit);
}

TEST(EnsembleClaims, SuppressionRemovesFalseAlarmsOnNormalData) {
    const std::size_t dw = 6;
    auto stide = make_detector(DetectorKind::Stide, dw);
    auto markov = make_detector(DetectorKind::Markov, dw);
    stide->train(test::small_corpus().training());
    markov->train(test::small_corpus().training());
    const EventStream heldout = test::small_corpus().generate_heldout(40'000, 2024);
    const CombinedAlarmResult c = measure_combined_alarms(*markov, *stide, heldout);
    ASSERT_GT(c.alarms_a, 0u);  // Markov alone alarms on rare-but-normal events
    // Suppression removes the majority of Markov's false alarms.
    EXPECT_LT(static_cast<double>(c.alarms_and),
              0.5 * static_cast<double>(c.alarms_a));
}

TEST(EnsembleClaims, EveryStideAlarmIsAMarkovAlarm) {
    // "Any alarm raised by Stide will also be raised by the Markov detector":
    // an unseen window implies an unseen (context, next) continuation... at
    // the same window position the Markov response is maximal whenever the
    // window is foreign, because P(next|context) cannot exceed the rarity
    // floor for a continuation never observed after that context — verify
    // empirically over test streams and held-out data.
    const std::size_t dw = 5;
    auto stide = make_detector(DetectorKind::Stide, dw);
    auto markov = make_detector(DetectorKind::Markov, dw);
    stide->train(test::small_corpus().training());
    markov->train(test::small_corpus().training());

    std::vector<EventStream> streams;
    streams.push_back(test::small_corpus().generate_heldout(20'000, 5150));
    streams.push_back(test::small_suite().entry(5, dw).stream.stream);
    streams.push_back(test::small_suite().entry(3, dw).stream.stream);
    for (const EventStream& s : streams) {
        const auto rs = stide->score(s);
        const auto rm = markov->score(s);
        for (std::size_t i = 0; i < rs.size(); ++i)
            if (rs[i] >= kMaximalResponse)
                EXPECT_GE(rm[i], kMaximalResponse) << "window " << i;
    }
}

}  // namespace
}  // namespace adiv
