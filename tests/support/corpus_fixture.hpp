// Shared, lazily built experiment fixtures for the test suite.
//
// Building a corpus and an evaluation suite is the expensive part of most
// integration tests; these accessors build each exactly once per test binary
// run. The "small" variants use a 200k-element corpus and a reduced grid so
// the whole suite stays fast; the paper-scale corpus (1M elements) is
// available for the few tests that assert corpus-level properties.
#pragma once

#include "anomaly/suite.hpp"
#include "datagen/corpus.hpp"

namespace adiv::test {

/// 200k-element corpus, default spec otherwise. Built once.
const TrainingCorpus& small_corpus();

/// Suite over small_corpus(): AS 2..9, DW 2..10, background 1024. Built once.
const EvaluationSuite& small_suite();

/// The paper-scale corpus: 1,000,000 elements. Built once, on first use.
const TrainingCorpus& paper_corpus();

}  // namespace adiv::test
