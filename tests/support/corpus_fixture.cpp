#include "support/corpus_fixture.hpp"

namespace adiv::test {

const TrainingCorpus& small_corpus() {
    static const TrainingCorpus corpus = [] {
        CorpusSpec spec;
        spec.training_length = 200'000;
        return TrainingCorpus::generate(spec);
    }();
    return corpus;
}

const EvaluationSuite& small_suite() {
    static const EvaluationSuite suite = [] {
        SuiteConfig cfg;
        cfg.min_anomaly_size = 2;
        cfg.max_anomaly_size = 9;
        cfg.min_window = 2;
        cfg.max_window = 10;
        cfg.background_length = 1024;
        return EvaluationSuite::build(small_corpus(), cfg);
    }();
    return suite;
}

const TrainingCorpus& paper_corpus() {
    static const TrainingCorpus corpus =
        TrainingCorpus::generate(CorpusSpec{});
    return corpus;
}

}  // namespace adiv::test
