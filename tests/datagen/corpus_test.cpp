#include "datagen/corpus.hpp"

#include <gtest/gtest.h>

#include "seq/stats.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TEST(CycleMatrix, CycleTransitionDominates) {
    const TransitionMatrix m = make_cycle_matrix(CorpusSpec{});
    for (Symbol s = 0; s < 8; ++s)
        EXPECT_DOUBLE_EQ(m.probability(s, (s + 1) % 8), 1.0 - 0.0025);
}

TEST(CycleMatrix, DeviationTargetsShareRate) {
    CorpusSpec spec;
    const TransitionMatrix m = make_cycle_matrix(spec);
    for (Symbol s = 0; s < 8; ++s)
        for (std::size_t k = 1; k <= 3; ++k)
            EXPECT_DOUBLE_EQ(m.probability(s, (s + 2 * k) % 8), 0.0025 / 3.0);
}

TEST(CycleMatrix, SomeTransitionsAreForbidden) {
    const TransitionMatrix m = make_cycle_matrix(CorpusSpec{});
    for (Symbol s = 0; s < 8; ++s) {
        const auto forbidden = m.forbidden_successors(s);
        // Self, s+3, s+5, s+7 are never produced: 4 forbidden successors.
        EXPECT_EQ(forbidden.size(), 4u);
        EXPECT_DOUBLE_EQ(m.probability(s, s), 0.0);
    }
}

TEST(CycleMatrix, IsRowStochastic) {
    EXPECT_TRUE(make_cycle_matrix(CorpusSpec{}).row_stochastic());
}

TEST(CycleMatrix, AlphabetTooSmallThrows) {
    CorpusSpec spec;
    spec.alphabet_size = 6;  // needs 2*3+1 < 6 to fail
    spec.deviation_targets = 3;
    EXPECT_THROW((void)make_cycle_matrix(spec), InvalidArgument);
}

TEST(TrainingCorpus, HasRequestedLengthAndAlphabet) {
    const TrainingCorpus& c = test::small_corpus();
    EXPECT_EQ(c.training().size(), 200'000u);
    EXPECT_EQ(c.training().alphabet_size(), 8u);
    EXPECT_EQ(c.cycle(), (Sequence{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TrainingCorpus, IsDeterministicPerSeed) {
    CorpusSpec spec;
    spec.training_length = 5'000;
    const TrainingCorpus a = TrainingCorpus::generate(spec);
    const TrainingCorpus b = TrainingCorpus::generate(spec);
    EXPECT_EQ(a.training().events(), b.training().events());
}

TEST(TrainingCorpus, DifferentSeedsDiffer) {
    CorpusSpec spec;
    spec.training_length = 5'000;
    const TrainingCorpus a = TrainingCorpus::generate(spec);
    spec.seed = spec.seed + 1;
    const TrainingCorpus b = TrainingCorpus::generate(spec);
    EXPECT_NE(a.training().events(), b.training().events());
}

TEST(TrainingCorpus, RoughlyNinetyEightPercentCycle) {
    // Section 5.3: 98% of the stream is repetitions of the base cycle.
    const double cov =
        cycle_coverage(test::small_corpus().training(), test::small_corpus().cycle());
    EXPECT_GT(cov, 0.97);
    EXPECT_LT(cov, 0.99);
}

TEST(TrainingCorpus, ContainsRareSequencesOfEveryStudyLength) {
    // The remaining ~2% yields rare sequences for all lengths used to
    // compose anomalies (the MFS pieces are (AS-1)-grams for AS in 2..9).
    const TrainingCorpus& c = test::small_corpus();
    for (std::size_t len = 2; len <= 8; ++len) {
        const LengthCensus cen = census(c.training(), len, c.spec().rare_threshold);
        EXPECT_GT(cen.rare, 0u) << "no rare " << len << "-grams";
        EXPECT_GT(cen.common, 0u);
    }
}

TEST(TrainingCorpus, CycleSuccessorWraps) {
    const TrainingCorpus& c = test::small_corpus();
    EXPECT_EQ(c.cycle_successor(3), 4u);
    EXPECT_EQ(c.cycle_successor(7), 0u);
}

TEST(TrainingCorpus, DeviationSuccessorsMatchMatrix) {
    const TrainingCorpus& c = test::small_corpus();
    for (Symbol s = 0; s < 8; ++s) {
        for (Symbol t : c.deviation_successors(s)) {
            EXPECT_GT(c.matrix().probability(s, t), 0.0);
            EXPECT_NE(t, c.cycle_successor(s));
        }
    }
}

TEST(TrainingCorpus, BackgroundIsPureCycle) {
    const TrainingCorpus& c = test::small_corpus();
    const EventStream bg = c.background(100, 3);
    EXPECT_EQ(bg.size(), 100u);
    EXPECT_EQ(bg[0], 3u);
    for (std::size_t i = 1; i < bg.size(); ++i)
        ASSERT_EQ(bg[i], c.cycle_successor(bg[i - 1]));
    EXPECT_DOUBLE_EQ(cycle_coverage(bg, c.cycle()), 1.0);
}

TEST(TrainingCorpus, BackgroundPhaseOutOfRangeThrows) {
    EXPECT_THROW((void)test::small_corpus().background(10, 8), InvalidArgument);
}

TEST(TrainingCorpus, HeldoutSharesModelButNotData) {
    const TrainingCorpus& c = test::small_corpus();
    const EventStream heldout = c.generate_heldout(50'000, 999);
    EXPECT_EQ(heldout.size(), 50'000u);
    // Same statistical character: mostly cycle.
    EXPECT_GT(cycle_coverage(heldout, c.cycle()), 0.97);
    // Different realization than training.
    EXPECT_NE(heldout.events(),
              Sequence(c.training().events().begin(),
                       c.training().events().begin() + 50'000));
}

TEST(TrainingCorpus, PaperScaleCorpusMatchesSection53) {
    const TrainingCorpus& c = test::paper_corpus();
    EXPECT_EQ(c.training().size(), 1'000'000u);
    EXPECT_EQ(c.training().alphabet_size(), 8u);
    const double cov = cycle_coverage(c.training(), c.cycle());
    EXPECT_NEAR(cov, 0.98, 0.005);
}

}  // namespace
}  // namespace adiv
