#include "datagen/markov_chain.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adiv {
namespace {

TransitionMatrix coin() {
    TransitionMatrix m(2);
    m.set(0, 0, 0.5);
    m.set(0, 1, 0.5);
    m.set(1, 0, 1.0);
    return m;
}

TEST(TransitionMatrix, StoresProbabilities) {
    const TransitionMatrix m = coin();
    EXPECT_DOUBLE_EQ(m.probability(0, 1), 0.5);
    EXPECT_DOUBLE_EQ(m.probability(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.probability(1, 1), 0.0);
}

TEST(TransitionMatrix, RowStochasticCheck) {
    EXPECT_TRUE(coin().row_stochastic());
    TransitionMatrix bad(2);
    bad.set(0, 0, 0.3);
    bad.set(1, 1, 1.0);
    EXPECT_FALSE(bad.row_stochastic());
}

TEST(TransitionMatrix, NormalizeRowsScalesToOne) {
    TransitionMatrix m(2);
    m.set(0, 0, 2.0);
    m.set(0, 1, 6.0);
    m.set(1, 0, 5.0);
    m.normalize_rows();
    EXPECT_TRUE(m.row_stochastic());
    EXPECT_DOUBLE_EQ(m.probability(0, 1), 0.75);
}

TEST(TransitionMatrix, NormalizeZeroRowThrows) {
    TransitionMatrix m(2);
    m.set(0, 0, 1.0);
    EXPECT_THROW(m.normalize_rows(), DataError);
}

TEST(TransitionMatrix, NegativeProbabilityThrows) {
    TransitionMatrix m(2);
    EXPECT_THROW(m.set(0, 0, -0.1), InvalidArgument);
}

TEST(TransitionMatrix, OutOfRangeSymbolThrows) {
    TransitionMatrix m(2);
    EXPECT_THROW(m.set(2, 0, 0.5), InvalidArgument);
    EXPECT_THROW((void)m.probability(0, 2), InvalidArgument);
}

TEST(TransitionMatrix, GenerateProducesRequestedLength) {
    Rng rng(1);
    const EventStream s = coin().generate(1000, 0, rng);
    EXPECT_EQ(s.size(), 1000u);
    EXPECT_EQ(s[0], 0u);
}

TEST(TransitionMatrix, GenerateZeroLength) {
    Rng rng(1);
    EXPECT_TRUE(coin().generate(0, 0, rng).empty());
}

TEST(TransitionMatrix, GenerateRespectsZeroTransitions) {
    Rng rng(2);
    const EventStream s = coin().generate(5000, 1, rng);
    // From state 1 the chain always goes to 0: no (1,1) pair can occur.
    for (std::size_t i = 1; i < s.size(); ++i)
        ASSERT_FALSE(s[i - 1] == 1 && s[i] == 1) << "forbidden transition at " << i;
}

TEST(TransitionMatrix, GenerateIsDeterministicPerSeed) {
    Rng r1(33), r2(33);
    const EventStream a = coin().generate(500, 0, r1);
    const EventStream b = coin().generate(500, 0, r2);
    EXPECT_EQ(a.events(), b.events());
}

TEST(TransitionMatrix, GenerateMatchesProbabilitiesEmpirically) {
    Rng rng(5);
    const EventStream s = coin().generate(100'000, 0, rng);
    std::size_t zero_to_one = 0, zero_total = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
        if (s[i - 1] == 0) {
            ++zero_total;
            if (s[i] == 1) ++zero_to_one;
        }
    }
    EXPECT_NEAR(static_cast<double>(zero_to_one) / static_cast<double>(zero_total),
                0.5, 0.02);
}

TEST(TransitionMatrix, GenerateOnUnnormalizedThrows) {
    TransitionMatrix m(2);
    m.set(0, 0, 0.3);
    m.set(1, 0, 1.0);
    Rng rng(1);
    EXPECT_THROW((void)m.generate(10, 0, rng), DataError);
}

TEST(TransitionMatrix, ForbiddenSuccessorsListsZeroRows) {
    const TransitionMatrix m = coin();
    EXPECT_EQ(m.forbidden_successors(0), std::vector<Symbol>{});
    EXPECT_EQ(m.forbidden_successors(1), std::vector<Symbol>{1});
}

TEST(TransitionMatrix, SampleNextOnlyReturnsPositiveRows) {
    const TransitionMatrix m = coin();
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(m.sample_next(1, rng), 0u);
}

}  // namespace
}  // namespace adiv
