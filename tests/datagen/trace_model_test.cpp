#include "datagen/trace_model.hpp"

#include <gtest/gtest.h>

#include "seq/ngram_table.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TraceModel tiny_model() {
    TraceModel m(Alphabet({"a", "b", "c"}));
    m.add_routine("ab", {"a", "b"}, 3.0);
    m.add_routine("c", {"c"}, 1.0);
    return m;
}

TEST(TraceModel, GeneratesExactLength) {
    const TraceModel m = tiny_model();
    EXPECT_EQ(m.generate(100, 1).size(), 100u);
    EXPECT_EQ(m.generate(1, 1).size(), 1u);
}

TEST(TraceModel, DeterministicPerSeed) {
    const TraceModel m = tiny_model();
    EXPECT_EQ(m.generate(500, 7).events(), m.generate(500, 7).events());
    EXPECT_NE(m.generate(500, 7).events(), m.generate(500, 8).events());
}

TEST(TraceModel, RoutineLookup) {
    const TraceModel m = tiny_model();
    EXPECT_EQ(m.routine("ab"), (Sequence{0, 1}));
    EXPECT_THROW((void)m.routine("nope"), InvalidArgument);
}

TEST(TraceModel, UnknownSymbolInRoutineThrows) {
    TraceModel m(Alphabet({"a"}));
    EXPECT_THROW(m.add_routine("bad", {"zzz"}, 1.0), InvalidArgument);
}

TEST(TraceModel, NonPositiveWeightThrows) {
    TraceModel m(Alphabet({"a"}));
    EXPECT_THROW(m.add_routine("bad", {"a"}, 0.0), InvalidArgument);
}

TEST(TraceModel, EmptyRoutineThrows) {
    TraceModel m(Alphabet({"a"}));
    EXPECT_THROW(m.add_routine("bad", {}, 1.0), InvalidArgument);
}

TEST(TraceModel, GenerateWithoutRoutinesThrows) {
    TraceModel m(Alphabet({"a"}));
    EXPECT_THROW((void)m.generate(10, 1), InvalidArgument);
}

TEST(TraceModel, WeightsShapeTheMix) {
    const TraceModel m = tiny_model();
    const EventStream s = m.generate(30'000, 42);
    std::size_t c_count = 0;
    for (std::size_t i = 0; i < s.size(); ++i)
        if (s[i] == 2) ++c_count;
    // Routine "ab" (2 symbols, weight 3) vs "c" (1 symbol, weight 1):
    // expected fraction of 'c' symbols = 1 / (3*2 + 1) ~ 0.143.
    const double frac = static_cast<double>(c_count) / static_cast<double>(s.size());
    EXPECT_NEAR(frac, 1.0 / 7.0, 0.02);
}

TEST(SyscallModel, GeneratesValidTrace) {
    const TraceModel m = make_syscall_model();
    const EventStream s = m.generate(5'000, 1);
    EXPECT_EQ(s.alphabet_size(), m.alphabet().size());
    EXPECT_EQ(s.size(), 5'000u);
}

TEST(SyscallModel, DominantRoutineShapesNgrams) {
    const TraceModel m = make_syscall_model();
    const EventStream s = m.generate(50'000, 2);
    const NgramTable t = NgramTable::from_stream(s, 3);
    // The serve_request routine's interior trigram (recv, stat, open) should
    // be common.
    const Sequence trigram{m.alphabet().id("recv"), m.alphabet().id("stat"),
                           m.alphabet().id("open")};
    EXPECT_GT(t.relative_frequency(trigram), 0.01);
}

TEST(CommandModel, HasDistinctAlphabetAndRoutines) {
    const TraceModel m = make_command_model();
    EXPECT_GE(m.routine_count(), 5u);
    EXPECT_NO_THROW((void)m.alphabet().id("vi"));
    EXPECT_NO_THROW((void)m.alphabet().id("make"));
}

}  // namespace
}  // namespace adiv
