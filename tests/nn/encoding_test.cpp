#include "nn/encoding.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adiv {
namespace {

TEST(OneHot, EncodesEachPosition) {
    const auto v = one_hot_context(Sequence{2, 0}, 3);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_EQ(v, (std::vector<double>{0, 0, 1, 1, 0, 0}));
}

TEST(OneHot, EmptyContextIsEmptyVector) {
    EXPECT_TRUE(one_hot_context(Sequence{}, 5).empty());
}

TEST(OneHot, ExactlyOneHotPerSymbol) {
    const auto v = one_hot_context(Sequence{1, 3, 0, 2}, 4);
    for (std::size_t k = 0; k < 4; ++k) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 4; ++c) sum += v[k * 4 + c];
        EXPECT_DOUBLE_EQ(sum, 1.0);
    }
}

TEST(OneHot, SymbolOutsideAlphabetThrows) {
    EXPECT_THROW((void)one_hot_context(Sequence{3}, 3), InvalidArgument);
}

TEST(OneHot, SizeHelperMatches) {
    EXPECT_EQ(one_hot_size(4, 8), 32u);
    EXPECT_EQ(one_hot_context(Sequence{0, 0, 0, 0}, 8).size(), one_hot_size(4, 8));
}

}  // namespace
}  // namespace adiv
