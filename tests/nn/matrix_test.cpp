#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adiv {
namespace {

TEST(Matrix, ConstructsWithFill) {
    const Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
}

TEST(Matrix, ZeroDimensionsThrow) {
    EXPECT_THROW(Matrix(0, 3), InvalidArgument);
    EXPECT_THROW(Matrix(3, 0), InvalidArgument);
}

TEST(Matrix, AtReadsAndWrites) {
    Matrix m(2, 2);
    m.at(0, 1) = 7.0;
    EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(Matrix, RowSpansShareStorage) {
    Matrix m(2, 3);
    m.row(1)[2] = 9.0;
    EXPECT_DOUBLE_EQ(m.at(1, 2), 9.0);
}

TEST(Matrix, MultiplyComputesMatVec) {
    Matrix m(2, 3);
    // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
    for (std::size_t c = 0; c < 3; ++c) {
        m.at(0, c) = static_cast<double>(c + 1);
        m.at(1, c) = static_cast<double>(c + 4);
    }
    const std::vector<double> x{1.0, 1.0, 1.0};
    std::vector<double> y(2);
    m.multiply(x, y);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
    const Matrix m(2, 3);
    std::vector<double> x(2), y(2);
    EXPECT_THROW(m.multiply(x, y), InvalidArgument);
}

TEST(Matrix, MultiplyTransposedComputesVecMat) {
    Matrix m(2, 3);
    for (std::size_t c = 0; c < 3; ++c) {
        m.at(0, c) = static_cast<double>(c + 1);
        m.at(1, c) = static_cast<double>(c + 4);
    }
    // [1 2] * [1 2 3; 4 5 6] = [9 12 15]
    const std::vector<double> x{1.0, 2.0};
    std::vector<double> y(3);
    m.multiply_transposed(x, y);
    EXPECT_DOUBLE_EQ(y[0], 9.0);
    EXPECT_DOUBLE_EQ(y[1], 12.0);
    EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(Matrix, AddScaledAccumulates) {
    Matrix a(2, 2, 1.0);
    const Matrix b(2, 2, 3.0);
    a.add_scaled(b, 0.5);
    EXPECT_DOUBLE_EQ(a.at(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 2.5);
}

TEST(Matrix, AddScaledShapeMismatchThrows) {
    Matrix a(2, 2);
    const Matrix b(2, 3);
    EXPECT_THROW(a.add_scaled(b, 1.0), InvalidArgument);
}

TEST(Matrix, RandomizeStaysInRangeAndIsDeterministic) {
    Matrix a(4, 4), b(4, 4);
    Rng r1(5), r2(5);
    a.randomize(r1, 0.3);
    b.randomize(r2, 0.3);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_GE(a.at(r, c), -0.3);
            EXPECT_LE(a.at(r, c), 0.3);
            EXPECT_DOUBLE_EQ(a.at(r, c), b.at(r, c));
        }
    }
}

TEST(Matrix, FillOverwrites) {
    Matrix m(2, 2, 5.0);
    m.fill(0.0);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

}  // namespace
}  // namespace adiv
