#include "nn/hmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace adiv {
namespace {

Sequence alternating(std::size_t length) {
    Sequence s(length);
    for (std::size_t i = 0; i < length; ++i) s[i] = static_cast<Symbol>(i % 2);
    return s;
}

TEST(Hmm, ConstructionValidatesConfig) {
    EXPECT_THROW(Hmm(0), InvalidArgument);
    HmmConfig cfg;
    cfg.states = 0;
    EXPECT_THROW(Hmm(4, cfg), InvalidArgument);
    cfg = HmmConfig{};
    cfg.iterations = 0;
    EXPECT_THROW(Hmm(4, cfg), InvalidArgument);
}

TEST(Hmm, InitialParametersAreStochastic) {
    const Hmm model(4);
    double pi_sum = 0.0;
    for (double v : model.initial()) pi_sum += v;
    EXPECT_NEAR(pi_sum, 1.0, 1e-9);
    for (std::size_t i = 0; i < model.states(); ++i) {
        double a_sum = 0.0, b_sum = 0.0;
        for (std::size_t j = 0; j < model.states(); ++j)
            a_sum += model.transitions().at(i, j);
        for (std::size_t k = 0; k < 4; ++k) b_sum += model.emissions().at(i, k);
        EXPECT_NEAR(a_sum, 1.0, 1e-9);
        EXPECT_NEAR(b_sum, 1.0, 1e-9);
    }
}

TEST(Hmm, FitImprovesLikelihood) {
    HmmConfig cfg;
    cfg.states = 2;
    cfg.iterations = 30;
    Hmm model(2, cfg);
    const Sequence obs = alternating(400);
    const double before = model.log_likelihood(obs);
    const double after = model.fit(obs);
    EXPECT_GT(after, before);
}

TEST(Hmm, LearnsDeterministicAlternation) {
    HmmConfig cfg;
    cfg.states = 2;
    cfg.iterations = 60;
    Hmm model(2, cfg);
    model.fit(alternating(600));
    // After 0 the next symbol is always 1 and vice versa: predictive
    // probabilities (past the first symbol) approach 1.
    const auto probs = model.predictive_probabilities(alternating(50));
    for (std::size_t t = 5; t < probs.size(); ++t)
        EXPECT_GT(probs[t], 0.95) << "position " << t;
}

TEST(Hmm, PredictiveProbabilitiesAreProbabilities) {
    Hmm model(3);
    const Sequence obs{0, 1, 2, 0, 1, 2, 2, 1};
    for (double p : model.predictive_probabilities(obs)) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0 + 1e-12);
    }
}

TEST(Hmm, FilterMatchesBatchPredictions) {
    HmmConfig cfg;
    cfg.states = 3;
    Hmm model(3, cfg);
    model.fit(Sequence{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 1, 0});
    const Sequence obs{0, 1, 2, 0, 2, 1};
    const auto batch = model.predictive_probabilities(obs);
    Hmm::Filter filter(model);
    for (std::size_t t = 0; t < obs.size(); ++t)
        EXPECT_NEAR(filter.step(obs[t]), batch[t], 1e-12);
}

TEST(Hmm, FilterResetRestoresPrior) {
    Hmm model(2);
    Hmm::Filter filter(model);
    const double first = filter.step(0);
    filter.step(1);
    filter.reset();
    EXPECT_NEAR(filter.step(0), first, 1e-12);
}

TEST(Hmm, SetParametersRoundTrip) {
    Hmm model(2);
    HmmConfig cfg;
    cfg.states = 8;  // default
    std::vector<double> pi(8, 1.0 / 8);
    Matrix a(8, 8, 1.0 / 8);
    Matrix b(8, 2, 0.5);
    model.set_parameters(pi, a, b);
    EXPECT_NEAR(model.initial()[3], 1.0 / 8, 1e-12);
    EXPECT_NEAR(model.transitions().at(2, 5), 1.0 / 8, 1e-12);
    // Uniform model: every prediction is 0.5.
    const auto probs = model.predictive_probabilities(Sequence{0, 1, 1});
    for (double p : probs) EXPECT_NEAR(p, 0.5, 1e-12);
}

TEST(Hmm, SetParametersShapeMismatchThrows) {
    Hmm model(2);
    EXPECT_THROW(model.set_parameters(std::vector<double>(3, 0.33), Matrix(8, 8),
                                      Matrix(8, 2)),
                 InvalidArgument);
    EXPECT_THROW(model.set_parameters(std::vector<double>(8, 0.125), Matrix(7, 8),
                                      Matrix(8, 2)),
                 InvalidArgument);
}

TEST(Hmm, DeterministicPerSeed) {
    HmmConfig cfg;
    cfg.states = 3;
    Hmm a(4, cfg), b(4, cfg);
    const Sequence obs{0, 1, 2, 3, 0, 1, 2, 3, 1, 1};
    EXPECT_DOUBLE_EQ(a.fit(obs), b.fit(obs));
}

TEST(Hmm, RejectsBadObservations) {
    Hmm model(3);
    EXPECT_THROW((void)model.fit(Sequence{0}), InvalidArgument);
    EXPECT_THROW((void)model.fit(Sequence{0, 5}), InvalidArgument);
    EXPECT_THROW((void)model.log_likelihood(Sequence{}), InvalidArgument);
}

TEST(Hmm, LikelihoodOfImpossibleSymbolIsTiny) {
    // Train so hard on alternation that a repeated symbol is near-impossible.
    HmmConfig cfg;
    cfg.states = 2;
    cfg.iterations = 60;
    Hmm model(2, cfg);
    model.fit(alternating(600));
    const auto probs = model.predictive_probabilities(Sequence{0, 1, 0, 0});
    EXPECT_LT(probs.back(), 0.05);
}

}  // namespace
}  // namespace adiv
