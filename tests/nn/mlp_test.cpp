#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace adiv {
namespace {

MlpConfig xor_config() {
    MlpConfig cfg;
    cfg.layer_sizes = {2, 8, 2};
    cfg.learning_rate = 2.0;
    cfg.momentum = 0.9;
    cfg.seed = 3;
    return cfg;
}

std::vector<MlpSample> xor_batch() {
    auto sample = [](double a, double b, std::size_t cls) {
        MlpSample s;
        s.input = {a, b};
        s.target = {0.0, 0.0};
        s.target[cls] = 1.0;
        s.weight = 1.0;
        return s;
    };
    return {sample(0, 0, 0), sample(0, 1, 1), sample(1, 0, 1), sample(1, 1, 0)};
}

TEST(Softmax, NormalizesAndOrders) {
    std::vector<double> v{1.0, 2.0, 3.0};
    softmax_inplace(v);
    EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
    EXPECT_LT(v[0], v[1]);
    EXPECT_LT(v[1], v[2]);
}

TEST(Softmax, StableForLargeLogits) {
    std::vector<double> v{1000.0, 1000.0};
    softmax_inplace(v);
    EXPECT_NEAR(v[0], 0.5, 1e-12);
}

TEST(Mlp, ForwardIsDistribution) {
    const Mlp net(xor_config());
    const auto y = net.forward(std::vector<double>{0.5, 0.5});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_NEAR(y[0] + y[1], 1.0, 1e-12);
    EXPECT_GT(y[0], 0.0);
    EXPECT_GT(y[1], 0.0);
}

TEST(Mlp, RequiresAtLeastTwoLayers) {
    MlpConfig cfg;
    cfg.layer_sizes = {4};
    EXPECT_THROW(Mlp{cfg}, InvalidArgument);
}

TEST(Mlp, InvalidHyperparametersThrow) {
    MlpConfig cfg = xor_config();
    cfg.learning_rate = 0.0;
    EXPECT_THROW(Mlp{cfg}, InvalidArgument);
    cfg = xor_config();
    cfg.momentum = 1.0;
    EXPECT_THROW(Mlp{cfg}, InvalidArgument);
}

TEST(Mlp, WrongInputSizeThrows) {
    const Mlp net(xor_config());
    EXPECT_THROW((void)net.forward(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Mlp, TrainingReducesLoss) {
    Mlp net(xor_config());
    const auto batch = xor_batch();
    const double before = net.loss(batch);
    net.train(batch, 200);
    EXPECT_LT(net.loss(batch), before);
}

TEST(Mlp, LearnsXor) {
    Mlp net(xor_config());
    const auto batch = xor_batch();
    net.train(batch, 2000);
    for (const auto& s : batch) {
        const auto y = net.forward(s.input);
        const std::size_t predicted = y[0] > y[1] ? 0 : 1;
        const std::size_t expected = s.target[0] > s.target[1] ? 0 : 1;
        EXPECT_EQ(predicted, expected);
    }
}

TEST(Mlp, FitsSoftTargets) {
    // A single input with target (0.7, 0.3): trained long enough, the output
    // converges to the target distribution (the cross-entropy optimum).
    MlpConfig cfg;
    cfg.layer_sizes = {1, 4, 2};
    cfg.learning_rate = 1.0;
    cfg.seed = 11;
    Mlp net(cfg);
    std::vector<MlpSample> batch(1);
    batch[0].input = {1.0};
    batch[0].target = {0.7, 0.3};
    batch[0].weight = 1.0;
    net.train(batch, 3000);
    const auto y = net.forward(batch[0].input);
    EXPECT_NEAR(y[0], 0.7, 0.02);
    EXPECT_NEAR(y[1], 0.3, 0.02);
}

TEST(Mlp, WeightsScaleSampleInfluence) {
    // Two conflicting samples with the same input; the heavier one wins.
    MlpConfig cfg;
    cfg.layer_sizes = {1, 4, 2};
    cfg.learning_rate = 1.0;
    cfg.seed = 13;
    Mlp net(cfg);
    std::vector<MlpSample> batch(2);
    batch[0].input = {1.0};
    batch[0].target = {1.0, 0.0};
    batch[0].weight = 9.0;
    batch[1].input = {1.0};
    batch[1].target = {0.0, 1.0};
    batch[1].weight = 1.0;
    net.train(batch, 3000);
    const auto y = net.forward(std::vector<double>{1.0});
    EXPECT_NEAR(y[0], 0.9, 0.03);  // optimum = weighted mean of targets
}

TEST(Mlp, DeterministicForSeed) {
    Mlp a(xor_config()), b(xor_config());
    const auto batch = xor_batch();
    a.train(batch, 50);
    b.train(batch, 50);
    EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(Mlp, ParameterRoundTrip) {
    Mlp net(xor_config());
    const auto params = net.parameters();
    Mlp other(xor_config());
    other.train(xor_batch(), 10);
    other.set_parameters(params);
    EXPECT_EQ(other.parameters(), params);
    // Identical parameters produce identical outputs.
    const std::vector<double> x{0.3, 0.6};
    EXPECT_EQ(net.forward(x), other.forward(x));
}

TEST(Mlp, SetParametersWrongSizeThrows) {
    Mlp net(xor_config());
    std::vector<double> too_short(3, 0.0);
    EXPECT_THROW(net.set_parameters(too_short), InvalidArgument);
}

TEST(Mlp, GradientMatchesFiniteDifference) {
    // One plain SGD step (momentum 0, so step = -lr * grad) must agree with
    // the numerical gradient of the batch loss.
    MlpConfig cfg;
    cfg.layer_sizes = {2, 3, 2};
    cfg.learning_rate = 1.0;
    cfg.momentum = 0.0;
    cfg.seed = 17;

    const auto batch = xor_batch();
    Mlp net(cfg);
    const std::vector<double> params = net.parameters();

    // Analytic gradient from the parameter delta of one epoch.
    Mlp stepper(cfg);
    stepper.set_parameters(params);
    stepper.train_epoch(batch);
    const std::vector<double> stepped = stepper.parameters();

    const double eps = 1e-6;
    for (std::size_t i = 0; i < params.size(); i += 3) {  // sample every 3rd
        std::vector<double> plus = params, minus = params;
        plus[i] += eps;
        minus[i] -= eps;
        Mlp probe(cfg);
        probe.set_parameters(plus);
        const double lp = probe.loss(batch);
        probe.set_parameters(minus);
        const double lm = probe.loss(batch);
        const double numeric_grad = (lp - lm) / (2 * eps);
        const double analytic_grad = params[i] - stepped[i];  // lr = 1
        EXPECT_NEAR(analytic_grad, numeric_grad, 1e-5)
            << "gradient mismatch at parameter " << i;
    }
}

TEST(Mlp, EmptyBatchThrows) {
    Mlp net(xor_config());
    const std::vector<MlpSample> empty;
    EXPECT_THROW((void)net.train_epoch(empty), InvalidArgument);
    EXPECT_THROW((void)net.loss(empty), InvalidArgument);
}

TEST(Mlp, NonPositiveSampleWeightThrows) {
    Mlp net(xor_config());
    auto batch = xor_batch();
    batch[0].weight = 0.0;
    EXPECT_THROW((void)net.train_epoch(batch), InvalidArgument);
}

TEST(Mlp, DeepNetworkTrains) {
    MlpConfig cfg;
    cfg.layer_sizes = {2, 6, 6, 2};
    cfg.learning_rate = 1.0;
    cfg.seed = 19;
    Mlp net(cfg);
    const auto batch = xor_batch();
    const double before = net.loss(batch);
    net.train(batch, 500);
    EXPECT_LT(net.loss(batch), before);
}

}  // namespace
}  // namespace adiv
