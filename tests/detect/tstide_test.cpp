#include "detect/tstide.hpp"

#include <gtest/gtest.h>

#include "detect/stide.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

// 0 1 repeated 100 times, then a single 0 0: (0,0) is present but rare.
EventStream mostly_alternating() {
    Sequence events;
    for (int i = 0; i < 100; ++i) {
        events.push_back(0);
        events.push_back(1);
    }
    events.push_back(0);
    events.push_back(0);
    return EventStream(2, std::move(events));
}

TEST(Tstide, FlagsRarePresentWindows) {
    TstideDetector d(2);
    d.train(mostly_alternating());
    const EventStream test(2, {1, 0, 0});
    const auto r = d.score(test);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r[0], 0.0);  // (1,0) common
    EXPECT_DOUBLE_EQ(r[1], 1.0);  // (0,0) present but rare
}

TEST(Tstide, FlagsForeignWindows) {
    TstideDetector d(2);
    d.train(mostly_alternating());
    const auto r = d.score(EventStream(2, {1, 1}));
    EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Tstide, ThresholdControlsRarity) {
    // With a tiny threshold the rare (0,0) window becomes acceptable.
    TstideConfig cfg;
    cfg.rare_threshold = 1e-9;
    TstideDetector d(2, cfg);
    d.train(mostly_alternating());
    const auto r = d.score(EventStream(2, {0, 0}));
    EXPECT_DOUBLE_EQ(r[0], 0.0);
}

TEST(Tstide, CoverageIsSupersetOfStideOnSameData) {
    // Every window Stide flags (foreign) t-stide flags too.
    TstideDetector t(3);
    t.train(test::small_corpus().training());
    const EventStream heldout = test::small_corpus().generate_heldout(3000, 77);
    const auto rt = t.score(heldout);

    StideDetector s(3);
    s.train(test::small_corpus().training());
    const auto rs = s.score(heldout);

    ASSERT_EQ(rt.size(), rs.size());
    for (std::size_t i = 0; i < rt.size(); ++i)
        if (rs[i] == 1.0) EXPECT_DOUBLE_EQ(rt[i], 1.0);
}

TEST(Tstide, InvalidThresholdThrows) {
    TstideConfig cfg;
    cfg.rare_threshold = 0.0;
    EXPECT_THROW(TstideDetector(2, cfg), InvalidArgument);
    cfg.rare_threshold = 1.0;
    EXPECT_THROW(TstideDetector(2, cfg), InvalidArgument);
}

TEST(Tstide, ScoreBeforeTrainThrows) {
    const TstideDetector d(2);
    EXPECT_THROW((void)d.score(mostly_alternating()), InvalidArgument);
}

TEST(Tstide, NameAndWindow) {
    const TstideDetector d(4);
    EXPECT_EQ(d.name(), "t-stide");
    EXPECT_EQ(d.window_length(), 4u);
}

}  // namespace
}  // namespace adiv
