#include "detect/hmm_detector.hpp"

#include <gtest/gtest.h>

#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

HmmDetectorConfig fast_config() {
    HmmDetectorConfig cfg;
    cfg.states = 8;
    cfg.iterations = 10;
    cfg.max_training_observations = 10'000;
    return cfg;
}

TEST(HmmDetector, WindowOfOneThrows) {
    EXPECT_THROW(HmmDetector(1), InvalidArgument);
}

TEST(HmmDetector, ScoreBeforeTrainThrows) {
    const HmmDetector d(3, fast_config());
    EXPECT_THROW((void)d.score(EventStream(8, {0, 1, 2})), InvalidArgument);
}

TEST(HmmDetector, InvalidConfigThrows) {
    HmmDetectorConfig cfg = fast_config();
    cfg.states = 0;
    EXPECT_THROW(HmmDetector(3, cfg), InvalidArgument);
    cfg = fast_config();
    cfg.max_training_observations = 1;
    EXPECT_THROW(HmmDetector(3, cfg), InvalidArgument);
    cfg = fast_config();
    cfg.probability_floor = -0.1;
    EXPECT_THROW(HmmDetector(3, cfg), InvalidArgument);
}

TEST(HmmDetector, QuietOnCleanBackground) {
    HmmDetector d(4, fast_config());
    d.train(test::small_corpus().training());
    const EventStream bg = test::small_corpus().background(100, 0);
    const auto r = d.score(bg);
    ASSERT_EQ(r.size(), bg.window_count(4));
    // Skip the first few windows (the filter starts from the prior).
    for (std::size_t i = 8; i < r.size(); ++i)
        EXPECT_LT(r[i], 0.1) << "window " << i;
}

TEST(HmmDetector, FlagsDeviationTransitions) {
    HmmDetector d(2, fast_config());
    d.train(test::small_corpus().training());
    EventStream test = test::small_corpus().background(64, 0);
    test.push_back(1);  // deviation 7 -> 1, probability ~0.08% in the model
    const auto r = d.score(test);
    EXPECT_DOUBLE_EQ(r.back(), 1.0);
}

TEST(HmmDetector, WindowLengthOnlyShiftsAlignment) {
    // The HMM's conditioning is the hidden state, not the window: responses
    // at different DW are the same per-position predictions re-aligned.
    HmmDetector d2(2, fast_config()), d5(5, fast_config());
    d2.train(test::small_corpus().training());
    d5.train(test::small_corpus().training());
    EventStream test = test::small_corpus().background(64, 0);
    test.push_back(1);
    const auto r2 = d2.score(test);
    const auto r5 = d5.score(test);
    // The deviation is the last element in both cases.
    EXPECT_DOUBLE_EQ(r2.back(), r5.back());
}

TEST(HmmDetector, TrainingLikelihoodIsReasonable) {
    HmmDetector d(3, fast_config());
    d.train(test::small_corpus().training());
    // Near-deterministic cycle: per-observation log-likelihood close to 0.
    EXPECT_GT(d.training_log_likelihood(), -0.5);
    EXPECT_LE(d.training_log_likelihood(), 0.0);
    EXPECT_EQ(d.model().states(), 8u);
}

TEST(HmmDetector, DeterministicPerSeed) {
    HmmDetector a(3, fast_config()), b(3, fast_config());
    a.train(test::small_corpus().training());
    b.train(test::small_corpus().training());
    const EventStream test = test::small_corpus().background(48, 2);
    EXPECT_EQ(a.score(test), b.score(test));
}

TEST(HmmDetector, AlphabetMismatchThrows) {
    HmmDetector d(3, fast_config());
    d.train(test::small_corpus().training());
    EXPECT_THROW((void)d.score(EventStream(4, {0, 1, 2, 3})), InvalidArgument);
}

TEST(HmmDetector, NameAndWindow) {
    const HmmDetector d(6, fast_config());
    EXPECT_EQ(d.name(), "hmm");
    EXPECT_EQ(d.window_length(), 6u);
}

}  // namespace
}  // namespace adiv
