#include "detect/rule_detector.hpp"

#include <gtest/gtest.h>

#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TEST(SequenceRule, MatchesConjunction) {
    SequenceRule rule;
    rule.conditions = {{0, 3}, {2, 1}};
    EXPECT_TRUE(rule.matches(Sequence{3, 9, 1}));
    EXPECT_FALSE(rule.matches(Sequence{3, 9, 2}));
    EXPECT_FALSE(rule.matches(Sequence{0, 9, 1}));
}

TEST(SequenceRule, EmptyConditionsMatchEverything) {
    const SequenceRule rule;
    EXPECT_TRUE(rule.matches(Sequence{1, 2, 3}));
    EXPECT_TRUE(rule.matches(Sequence{}));
}

TEST(RuleDetector, WindowOfOneThrows) {
    EXPECT_THROW(RuleDetector(1), InvalidArgument);
}

TEST(RuleDetector, InvalidConfigThrows) {
    RuleDetectorConfig cfg;
    cfg.target_precision = 0.0;
    EXPECT_THROW(RuleDetector(3, cfg), InvalidArgument);
    cfg = RuleDetectorConfig{};
    cfg.max_conditions = 0;
    EXPECT_THROW(RuleDetector(3, cfg), InvalidArgument);
    cfg = RuleDetectorConfig{};
    cfg.max_rules = 0;
    EXPECT_THROW(RuleDetector(3, cfg), InvalidArgument);
}

TEST(RuleDetector, ScoreBeforeTrainThrows) {
    const RuleDetector d(3);
    EXPECT_THROW((void)d.score(EventStream(4, {0, 1, 2})), InvalidArgument);
}

TEST(RuleDetector, LearnsDeterministicCycleRules) {
    Sequence events;
    for (int i = 0; i < 50; ++i)
        for (Symbol s = 0; s < 4; ++s) events.push_back(s);
    RuleDetector d(2);
    d.train(EventStream(4, std::move(events)));
    // Rules: after s comes s+1, with full confidence.
    for (Symbol s = 0; s < 4; ++s) {
        const SequenceRule& rule = d.rule_for(Sequence{s});
        EXPECT_EQ(rule.prediction, (s + 1) % 4);
        EXPECT_GT(rule.confidence, 0.99);
    }
}

TEST(RuleDetector, RuleListEndsWithDefault) {
    RuleDetector d(3);
    d.train(test::small_corpus().training());
    ASSERT_FALSE(d.rules().empty());
    EXPECT_TRUE(d.rules().back().conditions.empty());
}

TEST(RuleDetector, PredictedContinuationScoresZero) {
    RuleDetector d(2);
    d.train(test::small_corpus().training());
    const auto r = d.score(test::small_corpus().background(50, 0));
    for (double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RuleDetector, ViolatedConfidentRuleIsMaximal) {
    RuleDetector d(2);
    d.train(test::small_corpus().training());
    EventStream test = test::small_corpus().background(64, 0);
    test.push_back(1);  // deviation from the near-certain cycle rule
    const auto r = d.score(test);
    // The violated rule has confidence ~0.9975, so 1 - confidence ~0.25% is
    // below the 0.5% floor: maximal response.
    EXPECT_DOUBLE_EQ(r.back(), 1.0);
}

TEST(RuleDetector, WeakRuleViolationGivesWeakResponse) {
    // Context 0 is followed by 1 (60%) and 2 (40%): the learned rule predicts
    // 1 with confidence 0.6; seeing 2 violates it but only weakly.
    Sequence events;
    for (int i = 0; i < 30; ++i) {
        events.push_back(0);
        events.push_back(i % 5 < 3 ? 1 : 2);
    }
    RuleDetectorConfig cfg;
    cfg.max_conditions = 1;
    RuleDetector d(2, cfg);
    d.train(EventStream(3, std::move(events)));
    const auto r = d.score(EventStream(3, {0, 2}));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_GT(r[0], 0.0);
    EXPECT_LT(r[0], 1.0);
    EXPECT_NEAR(r[0], 0.6, 0.05);  // response = rule confidence
}

TEST(RuleDetector, RespectsMaxRules) {
    RuleDetectorConfig cfg;
    cfg.max_rules = 3;
    RuleDetector d(4, cfg);
    d.train(test::small_corpus().training());
    EXPECT_LE(d.rules().size(), 3u);
}

TEST(RuleDetector, LongContextRulesStayCompact) {
    RuleDetectorConfig cfg;
    cfg.max_conditions = 2;
    RuleDetector d(8, cfg);
    d.train(test::small_corpus().training());
    for (const SequenceRule& rule : d.rules())
        EXPECT_LE(rule.conditions.size(), 2u);
}

TEST(RuleDetector, ContextLengthMismatchThrows) {
    RuleDetector d(3);
    d.train(test::small_corpus().training());
    EXPECT_THROW((void)d.rule_for(Sequence{0}), InvalidArgument);
}

TEST(RuleDetector, AlphabetMismatchThrows) {
    RuleDetector d(3);
    d.train(test::small_corpus().training());
    EXPECT_THROW((void)d.score(EventStream(4, {0, 1, 2})), InvalidArgument);
}

TEST(RuleDetector, DeterministicTraining) {
    RuleDetector a(3), b(3);
    a.train(test::small_corpus().training());
    b.train(test::small_corpus().training());
    ASSERT_EQ(a.rules().size(), b.rules().size());
    const EventStream test = test::small_corpus().generate_heldout(5'000, 3);
    EXPECT_EQ(a.score(test), b.score(test));
}

TEST(RuleDetector, NameAndWindow) {
    const RuleDetector d(5);
    EXPECT_EQ(d.name(), "rule");
    EXPECT_EQ(d.window_length(), 5u);
}

}  // namespace
}  // namespace adiv
