#include "detect/lookahead_pairs.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "detect/stide.hpp"
#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

EventStream cycle_train() {
    Sequence events;
    for (int i = 0; i < 30; ++i)
        for (Symbol s = 0; s < 4; ++s) events.push_back(s);
    return EventStream(4, std::move(events));
}

TEST(LookaheadPairs, WindowOfOneThrows) {
    EXPECT_THROW(LookaheadPairsDetector(1), InvalidArgument);
}

TEST(LookaheadPairs, ScoreBeforeTrainThrows) {
    const LookaheadPairsDetector d(3);
    EXPECT_THROW((void)d.score(cycle_train()), InvalidArgument);
}

TEST(LookaheadPairs, KnownPairsScoreZero) {
    LookaheadPairsDetector d(3);
    d.train(cycle_train());
    const auto r = d.score(EventStream(4, {0, 1, 2, 3, 0}));
    for (double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LookaheadPairs, UnseenPairScoresOne) {
    LookaheadPairsDetector d(3);
    d.train(cycle_train());
    // Window (0, 0, 1): pair (0,0) at offset 1 never occurs in the cycle.
    const auto r = d.score(EventStream(4, {0, 0, 1}));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(LookaheadPairs, GeneralizesAcrossTrainingWindows) {
    // Training contains (0,1,2) and (3,1,0): pairs (0,_,1@1) ... the window
    // (0,1,0) mixes pairs from both training windows — pair (0,1)@1 from the
    // first, pair (0,0)@2 from... (3,1,0) gives (3,1)@1,(3,0)@2. So (0,1,0)
    // needs (0,1)@1 (seen) and (0,0)@2 (unseen) -> still anomalous. Use
    // (0,1,2) and (0,3,2): window (0,1,2) and (0,3,2) seen; window (0,1,2)
    // with pairs... the mixed window (0,3,2)? seen directly. Construct the
    // true generalization: training (0,1,2) and (0,3,4): test (0,1,4) has
    // pairs (0,1)@1 and (0,4)@2 — both seen, though (0,1,4) never occurred.
    const EventStream train(5, {0, 1, 2, 0, 3, 4, 0, 1, 2});
    LookaheadPairsDetector d(3);
    d.train(train);
    const auto r = d.score(EventStream(5, {0, 1, 4}));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_DOUBLE_EQ(r[0], 0.0);  // foreign to Stide, normal to pairs

    StideDetector stide(3);
    stide.train(train);
    EXPECT_DOUBLE_EQ(stide.score(EventStream(5, {0, 1, 4}))[0], 1.0);
}

TEST(LookaheadPairs, CoverageIsSubsetOfStide) {
    // Pair-anomalous implies window-anomalous: whenever lookahead-pairs
    // alarms, Stide alarms too.
    LookaheadPairsDetector pairs(5);
    StideDetector stide(5);
    pairs.train(test::small_corpus().training());
    stide.train(test::small_corpus().training());
    const EventStream heldout = test::small_corpus().generate_heldout(20'000, 99);
    const auto rp = pairs.score(heldout);
    const auto rs = stide.score(heldout);
    ASSERT_EQ(rp.size(), rs.size());
    for (std::size_t i = 0; i < rp.size(); ++i)
        if (rp[i] == 1.0) EXPECT_DOUBLE_EQ(rs[i], 1.0) << "window " << i;
}

TEST(LookaheadPairs, PairCountOnPureCycle) {
    LookaheadPairsDetector d(3);
    d.train(cycle_train());
    // 4 first-symbols x 2 offsets, one follower each: 8 pairs.
    EXPECT_EQ(d.pair_count(), 8u);
}

TEST(LookaheadPairs, AlphabetMismatchThrows) {
    LookaheadPairsDetector d(3);
    d.train(cycle_train());
    EXPECT_THROW((void)d.score(EventStream(8, {0, 1, 2})), InvalidArgument);
}

TEST(LookaheadPairs, SaveLoadRoundTrip) {
    LookaheadPairsDetector d(4);
    d.train(test::small_corpus().training());
    std::stringstream buffer;
    d.save_model(buffer);
    const LookaheadPairsDetector restored =
        LookaheadPairsDetector::load_model(buffer);
    EXPECT_EQ(restored.pair_count(), d.pair_count());
    const EventStream heldout = test::small_corpus().generate_heldout(5'000, 7);
    EXPECT_EQ(restored.score(heldout), d.score(heldout));
}

TEST(LookaheadPairs, NameAndWindow) {
    const LookaheadPairsDetector d(6);
    EXPECT_EQ(d.name(), "lookahead-pairs");
    EXPECT_EQ(d.window_length(), 6u);
}

}  // namespace
}  // namespace adiv
