#include "detect/lfc.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adiv {
namespace {

TEST(LocalityFrame, AlarmsWhenDensityReached) {
    LocalityFrameConfig cfg;
    cfg.frame_size = 3;
    cfg.threshold = 2;
    const std::vector<double> responses{1, 0, 1, 0, 0, 0};
    const auto alarms = locality_frame_filter(responses, cfg);
    // Frames ending at each index: [1]=1, [1,0]=1, [1,0,1]=2 -> alarm,
    // [0,1,0]=1, [1,0,0]=1, [0,0,0]=0.
    EXPECT_EQ(alarms, (std::vector<double>{0, 0, 1, 0, 0, 0}));
}

TEST(LocalityFrame, ThresholdOneMirrorsBinarizedInputWindow) {
    LocalityFrameConfig cfg;
    cfg.frame_size = 1;
    cfg.threshold = 1;
    const std::vector<double> responses{1, 0, 1};
    EXPECT_EQ(locality_frame_filter(responses, cfg),
              (std::vector<double>{1, 0, 1}));
}

TEST(LocalityFrame, SuppressesIsolatedAnomalies) {
    LocalityFrameConfig cfg;
    cfg.frame_size = 10;
    cfg.threshold = 3;
    std::vector<double> responses(50, 0.0);
    responses[5] = 1.0;   // lone anomaly
    responses[30] = 1.0;  // another lone anomaly
    const auto alarms = locality_frame_filter(responses, cfg);
    for (double a : alarms) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(LocalityFrame, PassesDenseBursts) {
    LocalityFrameConfig cfg;
    cfg.frame_size = 10;
    cfg.threshold = 3;
    std::vector<double> responses(50, 0.0);
    responses[20] = responses[21] = responses[22] = 1.0;
    const auto alarms = locality_frame_filter(responses, cfg);
    EXPECT_DOUBLE_EQ(alarms[22], 1.0);
    EXPECT_DOUBLE_EQ(alarms[19], 0.0);
}

TEST(LocalityFrame, BinarizeThresholdFiltersWeakResponses) {
    LocalityFrameConfig cfg;
    cfg.frame_size = 2;
    cfg.threshold = 1;
    cfg.binarize_at = 0.9;
    const std::vector<double> responses{0.5, 0.95};
    EXPECT_EQ(locality_frame_filter(responses, cfg),
              (std::vector<double>{0, 1}));
}

TEST(LocalityFrame, WindowSlidesCorrectlyPastBurst) {
    LocalityFrameConfig cfg;
    cfg.frame_size = 2;
    cfg.threshold = 2;
    const std::vector<double> responses{1, 1, 1, 0, 1};
    EXPECT_EQ(locality_frame_filter(responses, cfg),
              (std::vector<double>{0, 1, 1, 0, 0}));
}

TEST(LocalityFrame, EmptyInputGivesEmptyOutput) {
    EXPECT_TRUE(locality_frame_filter({}, LocalityFrameConfig{}).empty());
}

TEST(LocalityFrame, InvalidConfigThrows) {
    const std::vector<double> r{1.0};
    LocalityFrameConfig cfg;
    cfg.frame_size = 0;
    EXPECT_THROW((void)locality_frame_filter(r, cfg), InvalidArgument);
    cfg = LocalityFrameConfig{};
    cfg.threshold = 0;
    EXPECT_THROW((void)locality_frame_filter(r, cfg), InvalidArgument);
    cfg = LocalityFrameConfig{};
    cfg.frame_size = 2;
    cfg.threshold = 3;
    EXPECT_THROW((void)locality_frame_filter(r, cfg), InvalidArgument);
}

}  // namespace
}  // namespace adiv
