#include "detect/stide.hpp"

#include <gtest/gtest.h>

#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

EventStream cycle_train() {
    Sequence events;
    for (int i = 0; i < 20; ++i)
        for (Symbol s = 0; s < 4; ++s) events.push_back(s);
    return EventStream(4, std::move(events));
}

TEST(Stide, ScoreBeforeTrainThrows) {
    const StideDetector d(3);
    EXPECT_THROW((void)d.score(cycle_train()), InvalidArgument);
}

TEST(Stide, KnownWindowsScoreZero) {
    StideDetector d(3);
    d.train(cycle_train());
    const EventStream test(4, {0, 1, 2, 3, 0, 1});
    for (double r : d.score(test)) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Stide, ForeignWindowScoresOne) {
    StideDetector d(3);
    d.train(cycle_train());
    // (1,1,2) never occurs in the cycle.
    const EventStream test(4, {0, 1, 1, 2, 3});
    const auto r = d.score(test);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);  // 0,1,1
    EXPECT_DOUBLE_EQ(r[1], 1.0);  // 1,1,2
    EXPECT_DOUBLE_EQ(r[2], 0.0);  // 1,2,3
}

TEST(Stide, ResponsesAreBinary) {
    StideDetector d(4);
    d.train(test::small_corpus().training());
    const EventStream heldout = test::small_corpus().generate_heldout(2000, 5);
    for (double r : d.score(heldout)) EXPECT_TRUE(r == 0.0 || r == 1.0);
}

TEST(Stide, ResponseCountMatchesWindowCount) {
    StideDetector d(5);
    d.train(cycle_train());
    const EventStream test(4, {0, 1, 2, 3, 0, 1, 2});
    EXPECT_EQ(d.score(test).size(), test.window_count(5));
}

TEST(Stide, ShortTestStreamGivesNoResponses) {
    StideDetector d(5);
    d.train(cycle_train());
    EXPECT_TRUE(d.score(EventStream(4, {0, 1})).empty());
}

TEST(Stide, AlphabetMismatchThrows) {
    StideDetector d(3);
    d.train(cycle_train());
    EXPECT_THROW((void)d.score(EventStream(8, {0, 1, 2, 3})), InvalidArgument);
}

TEST(Stide, NormalDatabaseSizeOnPureCycle) {
    StideDetector d(4);
    d.train(cycle_train());
    // Pure 4-cycle data has exactly 4 distinct windows of any length <= run.
    EXPECT_EQ(d.normal_database_size(), 4u);
}

TEST(Stide, WindowLengthOneAllowed) {
    StideDetector d(1);
    d.train(cycle_train());
    const auto r = d.score(EventStream(4, {0, 3}));
    EXPECT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r[0], 0.0);
}

TEST(Stide, RetrainReplacesModel) {
    StideDetector d(2);
    d.train(cycle_train());
    EXPECT_DOUBLE_EQ(d.score(EventStream(4, {0, 1}))[0], 0.0);
    d.train(EventStream(4, {2, 2, 2, 2}));
    EXPECT_DOUBLE_EQ(d.score(EventStream(4, {0, 1}))[0], 1.0);
}

TEST(Stide, NameAndWindow) {
    const StideDetector d(6);
    EXPECT_EQ(d.name(), "stide");
    EXPECT_EQ(d.window_length(), 6u);
}

// Stide's defining law on the study corpus: a foreign sequence is visible iff
// the window is at least as long as the sequence (Section 7, point 2).
TEST(Stide, CannotSeeForeignSequenceShorterWindows) {
    // Minimal check without the full suite: the pair (0,0) is foreign in the
    // corpus; Stide with DW=2 sees it, and every window inside a size-4
    // MFS at DW=3 is a proper sub-sequence, hence present.
    StideDetector d(2);
    d.train(test::small_corpus().training());
    EventStream test = test::small_corpus().background(64, 1);
    test.append(Sequence{0, 0});  // background ends at 0 (phase 1+63 = 0)
    const auto r = d.score(test);
    EXPECT_DOUBLE_EQ(r.back(), 1.0);
}

}  // namespace
}  // namespace adiv
