#include "detect/instrumented.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "detect/registry.hpp"
#include "obs/trace.hpp"
#include "support/corpus_fixture.hpp"

namespace adiv {
namespace {

TEST(InstrumentedDetector, ForwardsIdentityAndScores) {
    MetricsRegistry metrics;
    auto bare = make_detector(DetectorKind::Stide, 5);
    bare->train(test::small_corpus().training());
    const EventStream probe = test::small_corpus().background(256, 3);
    const auto expected = bare->score(probe);

    auto wrapped = instrument(make_detector(DetectorKind::Stide, 5), metrics);
    wrapped->train(test::small_corpus().training());
    EXPECT_EQ(wrapped->name(), "stide");
    EXPECT_EQ(wrapped->window_length(), 5u);
    EXPECT_EQ(wrapped->alphabet_size(), bare->alphabet_size());

    const auto actual = wrapped->score(probe);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_DOUBLE_EQ(actual[i], expected[i]) << "window " << i;
}

TEST(InstrumentedDetector, CountsTrainAndScoreTraffic) {
    MetricsRegistry metrics;
    auto d = instrument(make_detector(DetectorKind::Markov, 4), metrics);
    const EventStream& training = test::small_corpus().training();
    d->train(training);

    ASSERT_NE(metrics.find_counter("detect.train_calls"), nullptr);
    EXPECT_EQ(metrics.find_counter("detect.train_calls")->value(), 1u);
    EXPECT_EQ(metrics.find_counter("detect.train_events")->value(),
              training.size());
    EXPECT_EQ(metrics.find_histogram("detect.train_us")->count(), 1u);
    EXPECT_GT(metrics.find_histogram("detect.train_us")->summary().max, 0.0);

    const EventStream probe = test::small_corpus().background(128, 1);
    const auto r1 = d->score(probe);
    (void)d->score(probe);
    EXPECT_EQ(metrics.find_counter("detect.score_calls")->value(), 2u);
    EXPECT_EQ(metrics.find_counter("detect.score_windows")->value(),
              2 * r1.size());
    EXPECT_EQ(metrics.find_histogram("detect.score_us")->count(), 2u);
}

TEST(InstrumentedDetector, EmitsTrainAndScoreSpans) {
    std::ostringstream out;
    auto previous = set_global_trace_sink(std::make_shared<StreamTraceSink>(out));
    MetricsRegistry metrics;
    auto d = instrument(make_detector(DetectorKind::Stide, 4), metrics);
    d->train(test::small_corpus().training());
    (void)d->score(test::small_corpus().background(64, 2));
    set_global_trace_sink(std::move(previous));

    const std::string trace = out.str();
    EXPECT_NE(trace.find("\"name\":\"detect.train\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"detect.score\""), std::string::npos);
    EXPECT_NE(trace.find("\"detector\":\"stide\""), std::string::npos);
}

TEST(InstrumentedDetector, InnerAccessorExposesWrappedDetector) {
    MetricsRegistry metrics;
    auto d = std::make_unique<InstrumentedDetector>(
        make_detector(DetectorKind::Stide, 3), metrics);
    EXPECT_EQ(d->inner().name(), "stide");
    EXPECT_EQ(d->inner().window_length(), 3u);
}

TEST(InstrumentedDetector, RegistryFactoryProducesInstrumentedDetector) {
    auto d = instrumented_factory_for(DetectorKind::Stide)(/*window_length=*/4);
    ASSERT_NE(dynamic_cast<InstrumentedDetector*>(d.get()), nullptr);
    EXPECT_EQ(d->name(), "stide");
}

}  // namespace
}  // namespace adiv
