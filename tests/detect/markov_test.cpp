#include "detect/markov.hpp"

#include <gtest/gtest.h>

#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

// 0 -> 1 (three times), 0 -> 2 (once): P(1|0)=0.75, P(2|0)=0.25.
EventStream branching() {
    return EventStream(3, {0, 1, 0, 1, 0, 1, 0, 2, 0});
}

TEST(Markov, WindowOfOneThrows) {
    EXPECT_THROW(MarkovDetector(1), InvalidArgument);
}

TEST(Markov, ScoreBeforeTrainThrows) {
    const MarkovDetector d(2);
    EXPECT_THROW((void)d.score(branching()), InvalidArgument);
}

TEST(Markov, ProbableContinuationScoresLow) {
    MarkovDetector d(2);
    d.train(branching());
    const auto r = d.score(EventStream(3, {0, 1}));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r[0], 1.0 - 0.75, 1e-12);
}

TEST(Markov, ImprobableContinuationScoresHigher) {
    MarkovDetector d(2);
    d.train(branching());
    const auto r = d.score(EventStream(3, {0, 2}));
    EXPECT_NEAR(r[0], 1.0 - 0.25, 1e-12);
}

TEST(Markov, ImpossibleContinuationIsMaximal) {
    MarkovDetector d(2);
    d.train(branching());
    // 1 is always followed by 0 in training; (1,2) has P = 0.
    const auto r = d.score(EventStream(3, {1, 2}));
    EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Markov, UnseenContextIsMaximal) {
    MarkovDetector d(2);
    d.train(branching());
    const auto r = d.score(EventStream(3, {2, 0}));
    // Context {2} occurs once (followed by 0) -> actually seen. Use context
    // beyond: symbol 2 IS followed by 0 in training, so use window length 3.
    EXPECT_DOUBLE_EQ(r[0], 0.0);  // (2 -> 0) is certain in training
    MarkovDetector d3(3);
    d3.train(branching());
    // Context (2,2) never occurs.
    const auto r3 = d3.score(EventStream(3, {2, 2, 0}));
    EXPECT_DOUBLE_EQ(r3[0], 1.0);
}

TEST(Markov, FloorQuantizesRareContinuations) {
    MarkovConfig cfg;
    cfg.probability_floor = 0.3;  // exaggerated floor for the test
    MarkovDetector d(2, cfg);
    d.train(branching());
    // P(2|0) = 0.25 <= 0.3 -> maximal response.
    const auto r = d.score(EventStream(3, {0, 2}));
    EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Markov, ZeroFloorDisablesQuantization) {
    MarkovConfig cfg;
    cfg.probability_floor = 0.0;
    MarkovDetector d(2, cfg);
    d.train(branching());
    const auto r = d.score(EventStream(3, {0, 2}));
    EXPECT_NEAR(r[0], 0.75, 1e-12);
    // P = 0 still quantizes to 1 (p <= 0).
    const auto r2 = d.score(EventStream(3, {1, 2}));
    EXPECT_DOUBLE_EQ(r2[0], 1.0);
}

TEST(Markov, LaplaceSmoothingLiftsZeroProbabilities) {
    MarkovConfig cfg;
    cfg.laplace_alpha = 1.0;
    cfg.probability_floor = 0.0;
    MarkovDetector d(2, cfg);
    d.train(branching());
    // (1,2): raw P=0; smoothed (0+1)/(3+3) = 1/6 -> response 5/6, not maximal.
    const auto r = d.score(EventStream(3, {1, 2}));
    EXPECT_NEAR(r[0], 1.0 - 1.0 / 6.0, 1e-12);
}

TEST(Markov, ResponseAlignmentMatchesWindows) {
    MarkovDetector d(3);
    d.train(test::small_corpus().training());
    const EventStream test = test::small_corpus().background(50, 0);
    const auto r = d.score(test);
    EXPECT_EQ(r.size(), test.window_count(3));
    // Pure cycle continuations are near-certain: responses ~0.
    for (double v : r) EXPECT_LT(v, 0.01);
}

TEST(Markov, MinimumWindowIsTwo) {
    // Section 6: the Markov assumption makes DW = 2 the smallest window.
    MarkovDetector d(2);
    EXPECT_EQ(d.window_length(), 2u);
    EXPECT_EQ(d.name(), "markov");
}

TEST(Markov, ModelAccessorAfterTraining) {
    MarkovDetector d(2);
    EXPECT_THROW((void)d.model(), InvalidArgument);
    d.train(branching());
    EXPECT_EQ(d.model().context_length(), 1u);
}

TEST(Markov, InvalidConfigThrows) {
    MarkovConfig cfg;
    cfg.probability_floor = 1.0;
    EXPECT_THROW(MarkovDetector(2, cfg), InvalidArgument);
    cfg = MarkovConfig{};
    cfg.laplace_alpha = -1.0;
    EXPECT_THROW(MarkovDetector(2, cfg), InvalidArgument);
}

TEST(Markov, DetectsDeviationsOnCorpusAtAnyWindow) {
    // A deviation transition has conditional probability ~ deviation_rate/3
    // ~ 0.08% < floor -> maximal response, for any context length.
    const TrainingCorpus& corpus = test::small_corpus();
    for (std::size_t dw : {2u, 4u, 8u}) {
        MarkovDetector d(dw);
        d.train(corpus.training());
        EventStream test = corpus.background(64, 0);
        // Continue with a deviation: last symbol is (64-1)%8=7 -> deviation
        // target 7+2=1.
        test.push_back(1);
        const auto r = d.score(test);
        EXPECT_DOUBLE_EQ(r.back(), 1.0) << "DW=" << dw;
    }
}

}  // namespace
}  // namespace adiv
