#include "detect/nn_detector.hpp"

#include <gtest/gtest.h>

#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

NnDetectorConfig fast_config() {
    NnDetectorConfig cfg;
    cfg.hidden_units = 12;
    cfg.epochs = 250;
    return cfg;
}

TEST(NnDetector, WindowOfOneThrows) {
    EXPECT_THROW(NnDetector(1), InvalidArgument);
}

TEST(NnDetector, ScoreBeforeTrainThrows) {
    const NnDetector d(2, fast_config());
    EXPECT_THROW((void)d.score(EventStream(3, {0, 1, 2})), InvalidArgument);
}

TEST(NnDetector, InvalidConfigThrows) {
    NnDetectorConfig cfg = fast_config();
    cfg.hidden_units = 0;
    EXPECT_THROW(NnDetector(2, cfg), InvalidArgument);
    cfg = fast_config();
    cfg.epochs = 0;
    EXPECT_THROW(NnDetector(2, cfg), InvalidArgument);
    cfg = fast_config();
    cfg.probability_floor = 1.5;
    EXPECT_THROW(NnDetector(2, cfg), InvalidArgument);
}

TEST(NnDetector, LearnsDeterministicContinuations) {
    // Pure cycle: P(next|prev) = 1; responses should be near zero.
    Sequence events;
    for (int i = 0; i < 50; ++i)
        for (Symbol s = 0; s < 4; ++s) events.push_back(s);
    const EventStream train(4, std::move(events));
    NnDetector d(2, fast_config());
    d.train(train);
    const auto r = d.score(EventStream(4, {0, 1, 2, 3, 0}));
    for (double v : r) EXPECT_LT(v, 0.1);
}

TEST(NnDetector, FlagsDeviationsOnCorpus) {
    NnDetector d(2, fast_config());
    d.train(test::small_corpus().training());
    EventStream test = test::small_corpus().background(64, 0);
    test.push_back(1);  // deviation 7 -> 1 (probability ~0.08% in training)
    const auto r = d.score(test);
    EXPECT_DOUBLE_EQ(r.back(), 1.0);
    // Cycle windows stay quiet.
    for (std::size_t i = 0; i + 1 < r.size(); ++i) EXPECT_LT(r[i], 0.1);
}

TEST(NnDetector, PredictReturnsDistribution) {
    NnDetector d(3, fast_config());
    d.train(test::small_corpus().training());
    const auto probs = d.predict(Sequence{0, 1});
    ASSERT_EQ(probs.size(), 8u);
    double sum = 0.0;
    for (double p : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // The cycle continuation (2) dominates.
    EXPECT_GT(probs[2], 0.9);
}

TEST(NnDetector, TrainingLossIsFiniteAndSmall) {
    NnDetector d(2, fast_config());
    d.train(test::small_corpus().training());
    EXPECT_GT(d.training_loss(), 0.0);
    EXPECT_LT(d.training_loss(), 0.2);
}

TEST(NnDetector, DeterministicPerSeed) {
    NnDetector a(2, fast_config()), b(2, fast_config());
    a.train(test::small_corpus().training());
    b.train(test::small_corpus().training());
    const EventStream test = test::small_corpus().background(32, 0);
    EXPECT_EQ(a.score(test), b.score(test));
}

TEST(NnDetector, BadParametersWeakenTheSignal) {
    // Section 7: "some combinations of these values may result in weakened
    // anomaly signals". An undertrained single-hidden-unit network cannot
    // keep the deviation probability under the floor everywhere.
    NnDetectorConfig bad;
    bad.hidden_units = 1;
    bad.epochs = 5;
    bad.learning_rate = 0.01;
    NnDetector d(2, bad);
    d.train(test::small_corpus().training());
    EventStream test = test::small_corpus().background(64, 0);
    test.push_back(1);
    const auto r = d.score(test);
    EXPECT_LT(r.back(), 1.0);
}

TEST(NnDetector, ResponseCountMatchesWindows) {
    NnDetector d(4, fast_config());
    d.train(test::small_corpus().training());
    const EventStream test = test::small_corpus().background(40, 2);
    EXPECT_EQ(d.score(test).size(), test.window_count(4));
}

TEST(NnDetector, NameAndWindow) {
    const NnDetector d(5, fast_config());
    EXPECT_EQ(d.name(), "neural-net");
    EXPECT_EQ(d.window_length(), 5u);
}

}  // namespace
}  // namespace adiv
