#include "detect/lane_brodley.hpp"

#include <gtest/gtest.h>

#include "support/corpus_fixture.hpp"
#include "util/error.hpp"

namespace adiv {
namespace {

TEST(LbSimilarity, IdenticalWindowsScoreMax) {
    // Figure 7 (left): two identical size-5 sequences score 15.
    const Sequence a{0, 1, 2, 3, 4};
    EXPECT_EQ(lane_brodley_similarity(a, a), 15u);
    EXPECT_EQ(lane_brodley_max_similarity(5), 15u);
}

TEST(LbSimilarity, LastElementMismatchScoresTen) {
    // Figure 7 (right): "cd <1> ls laf tar" vs "cd <1> ls laf cd" -> 10.
    const Sequence normal{0, 1, 2, 3, 4};
    const Sequence foreign{0, 1, 2, 3, 0};
    EXPECT_EQ(lane_brodley_similarity(normal, foreign), 10u);
}

TEST(LbSimilarity, FirstElementMismatchScoresTen) {
    const Sequence a{9, 1, 2, 3, 4};
    const Sequence b{0, 1, 2, 3, 4};
    EXPECT_EQ(lane_brodley_similarity(a, b), 10u);
}

TEST(LbSimilarity, MiddleMismatchScoresLower) {
    // Run weights reset at the mismatch: 1+2 + 0 + 1+2 = 6.
    const Sequence a{0, 1, 9, 3, 4};
    const Sequence b{0, 1, 2, 3, 4};
    EXPECT_EQ(lane_brodley_similarity(a, b), 6u);
    // The edge-mismatch bias: a middle mismatch scores LOWER than an edge
    // mismatch, which is exactly why L&B is blind to edge-differing foreign
    // sequences (Section 7).
    EXPECT_LT(lane_brodley_similarity(a, b),
              lane_brodley_similarity(Sequence{0, 1, 2, 3, 9}, b));
}

TEST(LbSimilarity, TotalMismatchScoresZero) {
    EXPECT_EQ(lane_brodley_similarity(Sequence{1, 1}, Sequence{0, 0}), 0u);
}

TEST(LbSimilarity, LengthMismatchThrows) {
    EXPECT_THROW((void)lane_brodley_similarity(Sequence{1}, Sequence{1, 2}),
                 InvalidArgument);
}

TEST(LbSimilarity, MaxFormula) {
    for (std::size_t n = 1; n <= 15; ++n) {
        const Sequence w(n, 3);
        EXPECT_EQ(lane_brodley_similarity(w, w), n * (n + 1) / 2);
        EXPECT_EQ(lane_brodley_max_similarity(n), n * (n + 1) / 2);
    }
}

EventStream cycle_train() {
    Sequence events;
    for (int i = 0; i < 30; ++i)
        for (Symbol s = 0; s < 4; ++s) events.push_back(s);
    return EventStream(4, std::move(events));
}

TEST(LaneBrodley, NormalWindowScoresZero) {
    LaneBrodleyDetector d(4);
    d.train(cycle_train());
    const auto r = d.score(EventStream(4, {0, 1, 2, 3, 0}));
    for (double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LaneBrodley, ForeignWindowGetsWeakResponse) {
    LaneBrodleyDetector d(5);
    d.train(cycle_train());
    // Window (0,1,2,3,3): closest normal (0,1,2,3,0) gives sim 10 of 15.
    const auto r = d.score(EventStream(4, {0, 1, 2, 3, 3}));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r[0], 1.0 - 10.0 / 15.0, 1e-12);
    EXPECT_GT(r[0], 0.0);
    EXPECT_LT(r[0], 1.0);  // weak, never maximal: the paper's L&B blindness
}

TEST(LaneBrodley, MaxSimilarityToNormalAccessor) {
    LaneBrodleyDetector d(5);
    d.train(cycle_train());
    EXPECT_EQ(d.max_similarity_to_normal(Sequence{0, 1, 2, 3, 0}), 15u);
    EXPECT_EQ(d.max_similarity_to_normal(Sequence{0, 1, 2, 3, 3}), 10u);
}

TEST(LaneBrodley, TakesMaxOverDatabase) {
    // Train on two distinct patterns; similarity is to the closest one.
    LaneBrodleyDetector d(3);
    d.train(EventStream(4, {0, 1, 2, 0, 1, 2, 3, 3, 3, 3, 3}));
    EXPECT_EQ(d.max_similarity_to_normal(Sequence{3, 3, 3}), 6u);
    EXPECT_EQ(d.max_similarity_to_normal(Sequence{0, 1, 2}), 6u);
}

TEST(LaneBrodley, ScoreBeforeTrainThrows) {
    const LaneBrodleyDetector d(3);
    EXPECT_THROW((void)d.score(cycle_train()), InvalidArgument);
}

TEST(LaneBrodley, DatabaseSizeCountsDistinctWindows) {
    LaneBrodleyDetector d(4);
    d.train(cycle_train());
    EXPECT_EQ(d.normal_database_size(), 4u);
}

TEST(LaneBrodley, MemoDoesNotChangeResults) {
    LaneBrodleyDetector d(4);
    d.train(cycle_train());
    const EventStream test(4, {0, 1, 2, 3, 0, 1, 2, 3});
    const auto r1 = d.score(test);
    const auto r2 = d.score(test);  // second pass hits the memo
    EXPECT_EQ(r1, r2);
}

TEST(LaneBrodley, RetrainClearsMemo) {
    LaneBrodleyDetector d(2);
    d.train(cycle_train());
    const auto before = d.score(EventStream(4, {3, 3}));
    d.train(EventStream(4, {3, 3, 3}));
    const auto after = d.score(EventStream(4, {3, 3}));
    EXPECT_NE(before[0], after[0]);
    EXPECT_DOUBLE_EQ(after[0], 0.0);
}

TEST(LaneBrodley, NeverMaximalOnStudyCorpus) {
    // The defining result (Figure 3): on cycle-structured data the L&B
    // response never reaches 1 because some normal window always matches
    // part of any test window.
    LaneBrodleyDetector d(6);
    d.train(test::small_corpus().training());
    const EventStream heldout = test::small_corpus().generate_heldout(2000, 3);
    for (double r : d.score(heldout)) EXPECT_LT(r, 1.0);
}

TEST(LaneBrodley, NameAndWindow) {
    const LaneBrodleyDetector d(7);
    EXPECT_EQ(d.name(), "lane-brodley");
    EXPECT_EQ(d.window_length(), 7u);
}

}  // namespace
}  // namespace adiv
