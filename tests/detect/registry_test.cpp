#include "detect/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace adiv {
namespace {

TEST(Registry, PaperDetectorsAreTheFourOfTheStudy) {
    const auto kinds = paper_detectors();
    ASSERT_EQ(kinds.size(), 4u);
    EXPECT_EQ(kinds[0], DetectorKind::LaneBrodley);
    EXPECT_EQ(kinds[1], DetectorKind::Markov);
    EXPECT_EQ(kinds[2], DetectorKind::Stide);
    EXPECT_EQ(kinds[3], DetectorKind::NeuralNet);
}

TEST(Registry, ToStringRoundTrips) {
    for (DetectorKind kind : all_detectors())
        EXPECT_EQ(detector_kind_from_string(to_string(kind)), kind);
}

TEST(Registry, AllDetectorsCoversPaperDetectors) {
    const auto all = all_detectors();
    for (DetectorKind kind : paper_detectors())
        EXPECT_NE(std::find(all.begin(), all.end(), kind), all.end());
    EXPECT_EQ(all.size(), 8u);
}

TEST(Registry, UnknownNameThrows) {
    EXPECT_THROW((void)detector_kind_from_string("bogus"), InvalidArgument);
}

TEST(Registry, MakeDetectorProducesMatchingNameAndWindow) {
    for (DetectorKind kind : all_detectors()) {
        const auto d = make_detector(kind, 4);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->name(), to_string(kind));
        EXPECT_EQ(d->window_length(), 4u);
    }
}

TEST(Registry, SettingsReachDetectors) {
    DetectorSettings settings;
    settings.markov.probability_floor = 0.25;
    settings.nn.hidden_units = 3;
    const auto markov = make_detector(DetectorKind::Markov, 3, settings);
    const auto* m = dynamic_cast<const MarkovDetector*>(markov.get());
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->config().probability_floor, 0.25);

    const auto nn = make_detector(DetectorKind::NeuralNet, 3, settings);
    const auto* n = dynamic_cast<const NnDetector*>(nn.get());
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->config().hidden_units, 3u);
}

TEST(Registry, FactoryBuildsPerWindow) {
    const DetectorFactory factory = factory_for(DetectorKind::Stide);
    const auto d5 = factory(5);
    const auto d9 = factory(9);
    EXPECT_EQ(d5->window_length(), 5u);
    EXPECT_EQ(d9->window_length(), 9u);
}

TEST(Registry, MarkovWindowOneStillThrowsThroughFactory) {
    const DetectorFactory factory = factory_for(DetectorKind::Markov);
    EXPECT_THROW((void)factory(1), InvalidArgument);
}

}  // namespace
}  // namespace adiv
