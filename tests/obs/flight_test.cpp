// Flight recorder: token truncation, ring wraparound, the byte-exact DUMP
// rendering, and concurrent writers racing a snapshotting reader (the TSan
// target for the lock-free ring).
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace adiv {
namespace {

FlightRecord make_record(std::string_view verb, std::uint32_t events,
                         std::uint32_t scores) {
    FlightRecord record;
    record.set_verb(verb);
    record.set_outcome("ok");
    record.events = events;
    record.scores = scores;
    return record;
}

TEST(FlightRecord, TokensAreNulPaddedAndTruncated) {
    FlightRecord record;
    record.set_verb("PUSH");
    EXPECT_EQ(record.verb_view(), "PUSH");
    record.set_verb("METRICSVERYLONG");  // longer than the 8-byte field
    EXPECT_EQ(record.verb_view(), "METRICS");
    record.set_outcome("");
    EXPECT_EQ(record.outcome_view(), "");
}

TEST(FlightRecorder, KeepsAllRecordsUnderCapacity) {
    FlightRecorder ring(8);
    for (std::uint32_t i = 0; i < 5; ++i) ring.record(make_record("PUSH", i, i));
    const std::vector<FlightRecord> records = ring.snapshot();
    ASSERT_EQ(records.size(), 5u);
    for (std::uint64_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, i);
        EXPECT_EQ(records[i].events, i);
    }
    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(FlightRecorder, WraparoundKeepsTheMostRecentCapacityRecords) {
    FlightRecorder ring(4);
    for (std::uint32_t i = 0; i < 10; ++i) ring.record(make_record("PUSH", i, i));
    const std::vector<FlightRecord> records = ring.snapshot();
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, 6u + i);
        EXPECT_EQ(records[i].events, 6u + i);
    }
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.recorded(), 10u);
}

TEST(FlightRecorder, RejectsZeroCapacityAndWorksWithOneSlot) {
    EXPECT_THROW(FlightRecorder(0), InvalidArgument);
    FlightRecorder ring(1);
    EXPECT_EQ(ring.capacity(), 1u);
    ring.record(make_record("OPEN", 0, 0));
    ring.record(make_record("PUSH", 1, 1));
    const std::vector<FlightRecord> records = ring.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].verb_view(), "PUSH");
}

TEST(FlightRecorder, RenderIsByteExact) {
    // The pinned DUMP fixture: the exact body a DUMPED response carries for
    // these two records.
    FlightRecord first;
    first.set_verb("PUSH");
    first.set_outcome("ok");
    first.events = 64;
    first.scores = 59;
    first.recv_us = 1.0F;
    first.parse_us = 2.25F;
    first.queue_us = 3.5F;
    first.score_us = 100.125F;
    first.reply_us = 4.0F;
    first.total_us = 120.5F;
    FlightRecord second;
    second.set_verb("DRAIN");
    second.set_outcome("err");
    FlightRecorder ring(8);
    ring.record(first);
    ring.record(second);
    EXPECT_EQ(render_flight_records(ring.snapshot()),
              "seq=0 verb=PUSH outcome=ok events=64 scores=59 "
              "recv_us=1.000 parse_us=2.250 queue_us=3.500 "
              "score_us=100.125 reply_us=4.000 total_us=120.500\n"
              "seq=1 verb=DRAIN outcome=err events=0 scores=0 "
              "recv_us=0.000 parse_us=0.000 queue_us=0.000 "
              "score_us=0.000 reply_us=0.000 total_us=0.000\n");
    EXPECT_EQ(render_flight_records({}), "");
}

TEST(FlightRecorderStress, ConcurrentWritersNeverTearRecords) {
    // The TSan target: writers lap a small ring while a reader snapshots
    // continuously. Every surfaced record must be internally consistent
    // (scores == events + 1 is the writers' invariant) and seq-ascending.
    FlightRecorder ring(16);
    constexpr int kWriters = 4;
    constexpr std::uint32_t kPerWriter = 2000;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const std::vector<FlightRecord> records = ring.snapshot();
            std::uint64_t previous_seq = 0;
            bool have_previous = false;
            for (const FlightRecord& record : records) {
                if (record.scores != record.events + 1) torn.fetch_add(1);
                if (have_previous && record.seq <= previous_seq) torn.fetch_add(1);
                previous_seq = record.seq;
                have_previous = true;
            }
        }
    });
    {
        std::vector<std::thread> writers;
        writers.reserve(kWriters);
        for (int w = 0; w < kWriters; ++w)
            writers.emplace_back([&ring, w] {
                for (std::uint32_t i = 0; i < kPerWriter; ++i) {
                    FlightRecord record =
                        make_record(w % 2 == 0 ? "PUSH" : "STATS", i, i + 1);
                    ring.record(record);
                }
            });
        for (std::thread& writer : writers) writer.join();
    }
    done.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(ring.recorded(),
              static_cast<std::uint64_t>(kWriters) * kPerWriter);
    // Whatever survived the final laps is readable and consistent.
    const std::vector<FlightRecord> records = ring.snapshot();
    EXPECT_LE(records.size(), ring.capacity());
    for (const FlightRecord& record : records)
        EXPECT_EQ(record.scores, record.events + 1);
    EXPECT_LE(ring.dropped(), ring.recorded());
}

}  // namespace
}  // namespace adiv
