#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adiv {
namespace {

TEST(Counter, AddsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, HoldsLastValue) {
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
    EXPECT_THROW(Histogram(std::vector<double>{}), InvalidArgument);
    EXPECT_THROW(Histogram({3.0, 2.0, 1.0}), InvalidArgument);
    EXPECT_THROW(Histogram({1.0, 1.0, 2.0}), InvalidArgument);
}

TEST(Histogram, EmptyReportsZeros) {
    const Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    const HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Histogram, SingleSampleIsReportedExactly) {
    // The percentile estimate is clamped to the observed [min, max], so with
    // one sample every percentile IS that sample, despite bucketing.
    Histogram h;
    h.record(3.7);
    const HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.min, 3.7);
    EXPECT_DOUBLE_EQ(s.max, 3.7);
    EXPECT_DOUBLE_EQ(s.mean, 3.7);
    EXPECT_DOUBLE_EQ(s.p50, 3.7);
    EXPECT_DOUBLE_EQ(s.p95, 3.7);
    EXPECT_DOUBLE_EQ(s.p99, 3.7);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.7);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.7);
}

TEST(Histogram, TracksSumMinMax) {
    Histogram h({10.0, 100.0});
    h.record(5.0);
    h.record(50.0);
    h.record(500.0);  // overflow bucket
    const HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.sum, 555.0);
    EXPECT_DOUBLE_EQ(s.mean, 185.0);
    EXPECT_DOUBLE_EQ(s.min, 5.0);
    EXPECT_DOUBLE_EQ(s.max, 500.0);
}

TEST(Histogram, PercentilesLandInTheRightBucket) {
    // 100 samples in (0,10], 0 elsewhere below, 100 in (10,20].
    Histogram h({10.0, 20.0, 30.0});
    for (int i = 0; i < 100; ++i) h.record(5.0);
    for (int i = 0; i < 100; ++i) h.record(15.0);
    // Rank 100 lands exactly at the top of the first bucket.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    // Rank 198 interpolates into the second bucket (10 + 9.8) but the
    // estimate is clamped to the observed max of 15.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 15.0);
    // q=1 is the observed max.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 15.0);
}

TEST(Histogram, PercentileClampedToObservedRange) {
    // Every sample is 12, all in bucket (10,20]; interpolation would report
    // values spread over the bucket but the clamp pins them to 12.
    Histogram h({10.0, 20.0});
    for (int i = 0; i < 10; ++i) h.record(12.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 12.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 12.0);
}

TEST(Histogram, RejectsOutOfRangeRank) {
    Histogram h;
    h.record(1.0);
    EXPECT_THROW((void)h.percentile(-0.1), InvalidArgument);
    EXPECT_THROW((void)h.percentile(1.1), InvalidArgument);
}

TEST(Histogram, ResetClearsEverything) {
    Histogram h;
    h.record(4.0);
    h.record(8.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(2.0);  // still usable; min/max re-seed from the new sample
    EXPECT_DOUBLE_EQ(h.summary().min, 2.0);
    EXPECT_DOUBLE_EQ(h.summary().max, 2.0);
}

TEST(Histogram, DefaultLatencyBucketsAreAscending) {
    const auto bounds = Histogram::latency_buckets_us();
    ASSERT_FALSE(bounds.empty());
    EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
    EXPECT_DOUBLE_EQ(bounds.back(), 1e6);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(MetricsRegistry, LookupCreatesOnceAndStaysStable) {
    MetricsRegistry reg;
    Counter& a = reg.counter("events");
    Counter& b = reg.counter("events");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(reg.counter("events").value(), 7u);
    EXPECT_NE(&reg.counter("events"), &reg.counter("other"));
}

TEST(MetricsRegistry, FindDoesNotCreate) {
    MetricsRegistry reg;
    EXPECT_EQ(reg.find_counter("missing"), nullptr);
    EXPECT_EQ(reg.find_gauge("missing"), nullptr);
    EXPECT_EQ(reg.find_histogram("missing"), nullptr);
    reg.counter("present").add();
    ASSERT_NE(reg.find_counter("present"), nullptr);
    EXPECT_EQ(reg.find_counter("present")->value(), 1u);
    EXPECT_TRUE(reg.snapshot().gauges.empty());
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
    MetricsRegistry reg;
    reg.counter("zebra").add(1);
    reg.counter("apple").add(2);
    reg.gauge("rate").set(0.5);
    reg.histogram("lat").record(3.0);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "apple");
    EXPECT_EQ(snap.counters[1].first, "zebra");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].second.count, 1u);
    EXPECT_FALSE(snap.empty());
    EXPECT_TRUE(MetricsRegistry().snapshot().empty());
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandlesValid) {
    MetricsRegistry reg;
    Counter& c = reg.counter("n");
    Gauge& g = reg.gauge("x");
    Histogram& h = reg.histogram("lat");
    c.add(5);
    g.set(1.0);
    h.record(2.0);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    c.add(1);  // handle still live after reset
    EXPECT_EQ(reg.find_counter("n")->value(), 1u);
}

TEST(MetricsRendering, TableListsEveryInstrument) {
    MetricsRegistry reg;
    reg.counter("online.events_consumed").add(100);
    reg.gauge("online.alarm_rate").set(0.25);
    reg.histogram("online.push_latency_us").record(4.0);
    const std::string table = render_metrics_table(reg);
    EXPECT_NE(table.find("online.events_consumed"), std::string::npos);
    EXPECT_NE(table.find("100"), std::string::npos);
    EXPECT_NE(table.find("online.alarm_rate"), std::string::npos);
    EXPECT_NE(table.find("0.250000"), std::string::npos);
    EXPECT_NE(table.find("online.push_latency_us"), std::string::npos);
    EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST(MetricsRendering, EmptyRegistrySaysSo) {
    const MetricsRegistry reg;
    EXPECT_EQ(render_metrics_table(reg), "(no metrics recorded)\n");
}

TEST(MetricsRendering, JsonCarriesAllKinds) {
    MetricsRegistry reg;
    reg.counter("c").add(3);
    reg.gauge("g").set(1.5);
    reg.histogram("h").record(10.0);
    const std::string json = metrics_to_json(reg);
    EXPECT_NE(json.find("\"counters\":{\"c\":3}"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\":{\"g\":1.5}"), std::string::npos);
    EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":10"), std::string::npos);
}

TEST(GlobalMetrics, IsAStableSingleton) {
    EXPECT_EQ(&global_metrics(), &global_metrics());
}

}  // namespace
}  // namespace adiv
